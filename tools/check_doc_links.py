#!/usr/bin/env python3
"""Fail on broken intra-repo links in the documentation set.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and verifies
that every relative target resolves to an existing file (or directory)
inside the repository.  External links (``http(s)://``, ``mailto:``) and
pure in-page anchors are skipped; a ``#fragment`` on a relative link is
stripped before the existence check.

Run from anywhere::

    python tools/check_doc_links.py

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link, ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: ``[text](target)``.  Deliberately simple — the
#: docs use no reference-style links, no angle-bracket targets.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: Path) -> list[tuple[int, str]]:
    broken = []
    for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            relative = target.split("#", 1)[0]
            resolved = (path.parent / relative).resolve()
            if not str(resolved).startswith(str(REPO_ROOT)):
                broken.append((line_number, f"{target} (escapes the repo)"))
            elif not resolved.exists():
                broken.append((line_number, target))
    return broken


def main() -> int:
    files = doc_files()
    failures = 0
    for path in files:
        for line_number, target in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                  f"broken link -> {target}")
            failures += 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in files)
    if failures:
        print(f"{failures} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
