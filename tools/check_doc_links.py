#!/usr/bin/env python3
"""Fail on broken intra-repo links (and anchors) in the documentation set.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and verifies

* that every relative target resolves to an existing file (or directory)
  inside the repository, and
* that every ``#fragment`` — on an in-page anchor or on a relative link
  to another Markdown file — names a heading that actually renders in
  the target document (GitHub-style slugs, duplicate headings get
  ``-1``/``-2``… suffixes).

External links (``http(s)://``, ``mailto:``) are skipped.

Run from anywhere::

    python tools/check_doc_links.py

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link, ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: ``[text](target)``.  Deliberately simple — the
#: docs use no reference-style links, no angle-bracket targets.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings (the only style the docs use).
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_FENCE = re.compile(r"^(```|~~~)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def github_slug(heading: str) -> str:
    """The anchor id GitHub renders for a heading.

    Inline markup is stripped (``code``, *emphasis*, [text](url) keeps
    the text), then: lowercase, spaces → hyphens, everything that is not
    a word character or hyphen dropped.
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # link text
    text = re.sub(r"[`*_]", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    # One hyphen PER space: "a — b" renders as a-—-b minus the dash,
    # i.e. "a--b" — GitHub does not collapse the doubled hyphen.
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """Every anchor the rendered document exposes (fenced code excluded)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def broken_links(path: Path,
                 anchor_cache: dict[Path, set[str]]) -> list[tuple[int, str]]:
    def anchors_of(target: Path) -> set[str]:
        if target not in anchor_cache:
            anchor_cache[target] = heading_anchors(target)
        return anchor_cache[target]

    broken = []
    for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative, _, fragment = target.partition("#")
            if relative:
                resolved = (path.parent / relative).resolve()
                if not str(resolved).startswith(str(REPO_ROOT)):
                    broken.append(
                        (line_number, f"{target} (escapes the repo)"))
                    continue
                if not resolved.exists():
                    broken.append((line_number, target))
                    continue
            else:
                resolved = path  # pure in-page anchor
            if fragment and resolved.suffix == ".md" and resolved.is_file():
                if fragment.lower() not in anchors_of(resolved):
                    broken.append(
                        (line_number,
                         f"{target} (no heading renders anchor "
                         f"#{fragment} in {resolved.name})"))
    return broken


def main() -> int:
    files = doc_files()
    anchor_cache: dict[Path, set[str]] = {}
    failures = 0
    for path in files:
        for line_number, target in broken_links(path, anchor_cache):
            print(f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                  f"broken link -> {target}")
            failures += 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in files)
    if failures:
        print(f"{failures} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"all intra-repo links and anchors resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
