"""Sim-vs-live conformance: the simulator is the oracle, sockets must agree.

Every canned scenario in :data:`CONFORMANCE_CASES` replays twice — once on
the deterministic simulated network, once over real UDP loopback sockets
with the seeded impairment shim — and the delivery histories, view
sequences, final control views, and deployed configurations of every
stable node must match exactly.

These tests are marked ``live``: they open real sockets and run in scaled
wall-clock time (roughly 6–12 real seconds per scenario at the default
time scale), so the tier-1 gate excludes them.  Run with::

    python -m pytest -q -m live tests/livenet

On divergence the full diff payload is written as a JSON artifact to
``$REPRO_LIVE_TRACE_DIR`` (falling back to the pytest tmp dir) and the
assertion message names the file — CI uploads the directory so a flaky
divergence is debuggable after the run is gone.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.kernel.message import Message
from repro.kernel.packet import Packet
from repro.livenet import LiveNetwork, WallClock
from repro.livenet.conformance import (CONFORMANCE_CASES, run_conformance,
                                       write_divergence_trace)
from repro.protocols.events import ApplicationMessage

pytestmark = pytest.mark.live


# -- transport smoke ----------------------------------------------------------

class TestTransportSmoke:
    def test_packet_crosses_a_real_socket(self):
        """Two endpoints on loopback, one unimpaired datagram across."""
        async def scenario():
            clock = WallClock(time_scale=100.0)
            net = LiveNetwork(clock, seed=7, impaired=False)
            await net.open_endpoint("alpha")
            await net.open_endpoint("beta")
            alpha = net.add_fixed_node("alpha")
            beta = net.add_fixed_node("beta")
            received: list[Packet] = []
            beta.bind_port("data", received.append)
            alpha.send(Packet(src="alpha", dst="beta", port="data",
                              event_cls=ApplicationMessage,
                              message=Message(payload={"text": "over the "
                                                               "wire"})))
            deadline = asyncio.get_running_loop().time() + 5.0
            while not received:
                if asyncio.get_running_loop().time() > deadline:
                    break
                await asyncio.sleep(0.01)
            await net.close()
            return received, net.delivered_packets

        received, delivered = asyncio.run(scenario())
        assert delivered == 1
        assert len(received) == 1
        packet = received[0]
        assert packet.src == "alpha"
        assert packet.event_cls is ApplicationMessage
        assert packet.message.payload == {"text": "over the wire"}


# -- scenario conformance -----------------------------------------------------

@pytest.mark.parametrize("case", CONFORMANCE_CASES,
                         ids=[case.name for case in CONFORMANCE_CASES])
def test_live_replay_matches_simnet_oracle(case, tmp_path):
    report = run_conformance(case, seed=0)
    if not report.ok:
        trace_dir = os.environ.get("REPRO_LIVE_TRACE_DIR", str(tmp_path))
        trace = write_divergence_trace(report, trace_dir)
        detail = "\n  ".join(report.mismatches)
        pytest.fail(
            f"live replay of {case.name!r} diverged from the simnet "
            f"oracle (trace: {trace}):\n  {detail}")
