"""The wall-clock scheduler adapter, driven by a hand-cranked time source.

:class:`WallClock` must be behaviourally indistinguishable from
:class:`~repro.simnet.engine.SimEngine` for any schedule the kernel can
produce — same ``(when, seq)`` total order, same-instant FIFO, same lazy
cancellation, same rearm-on-fire semantics for periodic and backoff
timers.  The conformance suite leans on this: a live run whose timers
fire in a different order than the oracle's diverges for reasons that
have nothing to do with sockets.

The tests inject a fake monotonic source and drive :meth:`poll` by hand,
so everything here is deterministic and tier-1 fast.  One small asyncio
test at the end exercises the real event-loop arming path.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.kernel import Event, Kernel, Layer, Session, TimerEvent
from repro.livenet import WallClock
from repro.simnet.engine import SimEngine
from tests.kernel.helpers import build_channel


class FakeMonotonic:
    """A hand-cranked stand-in for ``time.monotonic``."""

    def __init__(self, start: float = 100.0) -> None:
        self._now = start

    def __call__(self) -> float:
        return self._now

    def advance(self, real_seconds: float) -> None:
        self._now += real_seconds


@pytest.fixture
def source():
    return FakeMonotonic()


@pytest.fixture
def wall(source):
    clock = WallClock(time_source=source, time_scale=1.0)
    clock.start()
    return clock


# -- lazy anchoring -----------------------------------------------------------

class TestLazyAnchor:
    def test_now_reads_zero_until_started(self, source):
        clock = WallClock(time_source=source)
        assert not clock.started
        source.advance(37.0)  # a slow synchronous boot
        assert clock.now() == 0.0
        clock.start()
        assert clock.started
        assert clock.now() == 0.0  # virtual 0 pinned *now*, not at ctor
        source.advance(2.0)
        assert clock.now() == pytest.approx(2.0)

    def test_start_is_idempotent(self, source):
        clock = WallClock(time_source=source)
        clock.start()
        source.advance(5.0)
        clock.start()
        assert clock.now() == pytest.approx(5.0)

    def test_real_time_before_start_makes_nothing_due(self, source):
        clock = WallClock(time_source=source)
        fired = []
        clock.call_later(0.5, lambda: fired.append("due"))
        source.advance(10.0)  # real time passes during setup...
        assert clock.poll() == 0  # ...but virtual time has not begun
        clock.start()
        assert clock.poll() == 0  # still not due: measured from virtual 0
        source.advance(0.6)
        assert clock.poll() == 1
        assert fired == ["due"]

    def test_setup_work_lands_at_virtual_zero(self, source):
        """The scenario-boot property: however long synchronous setup
        takes in real time, every timer it schedules is measured from
        virtual 0."""
        clock = WallClock(time_source=source, time_scale=10.0)
        clock.call_later(1.0, lambda: None)   # a heartbeat armed during boot
        source.advance(0.3)                    # 300 ms of real boot work
        clock.start()
        source.advance(0.09)                   # 0.9 virtual seconds
        assert clock.poll() == 0               # not due: boot time didn't count
        source.advance(0.02)
        assert clock.poll() == 1


# -- time scaling -------------------------------------------------------------

class TestTimeScale:
    def test_scale_compresses_real_time(self, source):
        clock = WallClock(time_source=source, time_scale=10.0)
        clock.start()
        source.advance(0.5)
        assert clock.now() == pytest.approx(5.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0.0)
        with pytest.raises(ValueError):
            WallClock(time_scale=-1.0)


# -- scheduling semantics -----------------------------------------------------

class TestScheduling:
    def test_negative_delay_rejected(self, wall):
        with pytest.raises(ValueError):
            wall.call_later(-0.1, lambda: None)

    def test_fires_in_when_order(self, wall, source):
        order = []
        wall.call_later(3.0, lambda: order.append("c"))
        wall.call_later(1.0, lambda: order.append("a"))
        wall.call_later(2.0, lambda: order.append("b"))
        source.advance(5.0)
        assert wall.poll() == 3
        assert order == ["a", "b", "c"]

    def test_same_instant_fifo_by_schedule_order(self, wall, source):
        order = []
        for tag in ("first", "second", "third"):
            wall.call_later(1.0, lambda tag=tag: order.append(tag))
        source.advance(1.0)
        wall.poll()
        assert order == ["first", "second", "third"]

    def test_cancel_before_fire(self, wall, source):
        fired = []
        handle = wall.call_later(1.0, lambda: fired.append("no"))
        handle.cancel()
        source.advance(2.0)
        assert wall.poll() == 0
        assert fired == []

    def test_cancelled_entries_leave_pending(self, wall):
        keep = wall.call_later(1.0, lambda: None)
        drop = wall.call_later(2.0, lambda: None)
        assert wall.pending == 2
        drop.cancel()
        assert wall.pending == 1
        keep.cancel()
        assert wall.pending == 0

    def test_callback_may_cancel_a_later_entry(self, wall, source):
        """Lazy cancellation: cancelling from inside a firing callback
        suppresses an already-due sibling (the simulated engine's
        contract for e.g. a heartbeat disarming a suspicion timer)."""
        fired = []
        victim = wall.call_later(2.0, lambda: fired.append("victim"))
        wall.call_later(1.0, lambda: victim.cancel())
        source.advance(3.0)
        wall.poll()
        assert fired == []

    def test_callback_may_schedule_more_work(self, wall, source):
        fired = []

        def rearm():
            fired.append("tick")
            if len(fired) < 3:
                wall.call_later(1.0, rearm)

        wall.call_later(1.0, rearm)
        for _ in range(8):
            source.advance(0.5)
            wall.poll()
        assert fired == ["tick", "tick", "tick"]

    def test_call_at_in_the_past_fires_asap(self, wall, source):
        source.advance(5.0)
        fired = []
        wall.call_at(1.0, lambda: fired.append("late"))
        assert wall.poll() == 1
        assert fired == ["late"]


# -- engine parity ------------------------------------------------------------

def _mixed_schedule(clock, order, label):
    """One schedule exercising interleaving, same-instant FIFO, nested
    scheduling and mid-flight cancellation; identical on both clocks."""
    clock.call_later(2.0, lambda: order.append((label, "b")))
    clock.call_later(1.0, lambda: order.append((label, "a1")))
    clock.call_later(1.0, lambda: order.append((label, "a2")))
    victim = clock.call_later(4.0, lambda: order.append((label, "victim")))

    def nested():
        order.append((label, "c"))
        victim.cancel()
        clock.call_later(0.5, lambda: order.append((label, "d")))

    clock.call_later(3.0, nested)
    clock.call_at(3.5, lambda: order.append((label, "at")))


class TestEngineParity:
    def test_firing_order_matches_sim_engine(self, source):
        sim_order, wall_order = [], []

        engine = SimEngine()
        _mixed_schedule(engine, sim_order, "x")
        engine.run_until(10.0)

        wall = WallClock(time_source=source)
        wall.start()
        _mixed_schedule(wall, wall_order, "x")
        for _ in range(100):  # fine-grained steps: order must be stable
            source.advance(0.1)
            wall.poll()

        assert wall_order == sim_order
        assert wall.fired_count == len(wall_order)

    def test_preexisting_due_entries_drain_in_when_seq_order(self, source):
        """Even a single late drain fires everything already on the heap
        in the same ``(when, seq)`` total order the engine would use —
        arrival lateness never reorders a backlog."""
        order = []
        wall = WallClock(time_source=source)
        wall.start()
        wall.call_later(3.0, lambda: order.append("c"))
        wall.call_later(1.0, lambda: order.append("a1"))
        wall.call_later(1.0, lambda: order.append("a2"))
        wall.call_at(2.0, lambda: order.append("b"))
        source.advance(10.0)
        assert wall.poll() == 4
        assert order == ["a1", "a2", "b", "c"]


# -- kernel timer integration -------------------------------------------------

class _TimerSession(Session):
    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.fired: list[TimerEvent] = []

    def handle(self, event: Event) -> None:
        if isinstance(event, TimerEvent):
            self.fired.append(event)
            return
        event.go()


class _TimerLayer(Layer):
    accepted_events = (TimerEvent,)
    session_class = _TimerSession


class TestKernelTimers:
    """The kernel's timer primitives behave on a WallClock exactly as they
    do on the manual clock in ``tests/kernel/test_timers.py``."""

    @pytest.fixture
    def kernel(self, wall):
        return Kernel(clock=wall, name="live-node")

    def _advance(self, source, wall, seconds, step=0.1):
        remaining = seconds
        while remaining > 1e-9:
            chunk = min(step, remaining)
            source.advance(chunk)
            wall.poll()
            remaining -= chunk

    def test_one_shot(self, kernel, wall, source):
        session = build_channel(kernel, [_TimerLayer()]).sessions[0]
        session.set_timer(5.0, tag="once")
        self._advance(source, wall, 4.9)
        assert session.fired == []
        self._advance(source, wall, 0.2)
        assert [event.tag for event in session.fired] == ["once"]

    def test_periodic_rearms_on_fire_until_cancelled(self, kernel, wall,
                                                     source):
        session = build_channel(kernel, [_TimerLayer()]).sessions[0]
        handle = session.set_periodic_timer(2.0, tag="tick")
        self._advance(source, wall, 7.0)  # fires at 2, 4, 6
        assert len(session.fired) == 3
        handle.cancel()
        self._advance(source, wall, 10.0)
        assert len(session.fired) == 3

    def test_backoff_doubles_to_the_cap(self, kernel, wall, source):
        session = build_channel(kernel, [_TimerLayer()]).sessions[0]
        handle = session.set_backoff_timer(1.0, tag="probe", max_interval=4.0)
        self._advance(source, wall, 3.5)  # fires at ~1.0 and ~3.0
        assert len(session.fired) == 2
        assert handle.event.attempt == 2
        assert handle.event.interval == 4.0

    def test_one_clock_entry_per_backoff_attempt(self, kernel, wall, source):
        session = build_channel(kernel, [_TimerLayer()]).sessions[0]
        session.set_backoff_timer(1.0, tag="probe", max_interval=16.0)
        self._advance(source, wall, 60.0, step=0.5)
        assert wall.pending == 1


# -- asyncio arming -----------------------------------------------------------

class TestAsyncioIntegration:
    def test_run_until_fires_from_loop_timers(self):
        """The real path: attach to a loop, arm wakeups, fire on time.
        time_scale=200 keeps the wall-clock cost of 10 virtual seconds
        at ~50 ms."""
        async def scenario():
            clock = WallClock(time_scale=200.0)
            clock.attach(asyncio.get_running_loop())
            order = []
            clock.call_later(2.0, lambda: order.append("a"))
            clock.call_later(2.0, lambda: order.append("b"))
            clock.call_later(6.0, lambda: order.append("c"))
            doomed = clock.call_later(9.0, lambda: order.append("doomed"))
            doomed.cancel()
            assert clock.now() == 0.0  # attach alone must not start time
            await clock.run_until(10.0)
            clock.shutdown()
            return order, clock.now()

        order, final_now = asyncio.run(scenario())
        assert order == ["a", "b", "c"]
        assert final_now >= 10.0

    def test_attaching_a_second_loop_is_an_error(self):
        clock = WallClock()

        async def bind():
            clock.attach(asyncio.get_running_loop())

        asyncio.run(bind())
        with pytest.raises(RuntimeError):
            asyncio.run(bind())
