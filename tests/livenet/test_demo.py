"""The multi-process live demo is part of the public surface: it must run.

``examples/adaptive_chat.py --live`` spawns one real OS process per
device; the processes talk only through localhost UDP datagrams and the
script asserts its own claims (every line delivered everywhere, FIFO per
sender, one shared view, group-wide reconfiguration to Mecho).  This test
just executes it and requires a clean exit — marked ``live`` since it
opens real sockets and takes wall-clock time.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.live

_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def test_live_demo_runs_four_processes():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_ROOT / "src")] +
        ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    result = subprocess.run(
        [sys.executable, str(_ROOT / "examples" / "adaptive_chat.py"),
         "--live", "--nodes", "4"],
        capture_output=True, text=True, timeout=180, env=env)
    assert result.returncode == 0, (
        f"--live demo failed:\n--- stdout ---\n{result.stdout[-3000:]}"
        f"\n--- stderr ---\n{result.stderr[-3000:]}")
    assert "entirely over localhost UDP" in result.stdout
