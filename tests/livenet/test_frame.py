"""The datagram frame: round-trips and the adversarial-input contract.

Two properties carry the live wire:

* **round-trip** — ``decode_frame(encode_frame(p))`` rebuilds a packet
  whose every meta field and carried message equal the original's, for
  arbitrary payloads, header stacks, and every stack-deployable event
  class;
* **total safety** — every malformed datagram (truncation, garbage,
  single-byte corruption, oversize, bad magic, unknown version, unknown
  event class) raises :class:`CodecError` and nothing else.  The receive
  loop counts and drops on that one exception; any other escape would
  crash a live node.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import codec
from repro.kernel.codec import (CodecError, decode_payload, encode_payload,
                                resolve_event_class, wire_key_table)
from repro.kernel.message import Message, estimate_size
from repro.kernel.packet import CONTROL, DATA, Packet
from repro.livenet.frame import (FRAME_MAGIC, FRAME_VERSION,
                                 MAX_DATAGRAM_BYTES, decode_frame,
                                 encode_frame)
from repro.protocols.events import (ApplicationMessage, CoreMessage,
                                    HeartbeatMessage, MembershipMessage,
                                    NackMessage, RetransmissionMessage)

# -- strategies ---------------------------------------------------------------

EVENT_CLASSES = (ApplicationMessage, HeartbeatMessage, MembershipMessage,
                 NackMessage, RetransmissionMessage, CoreMessage)

node_ids = st.sampled_from(
    ["fixed-0", "fixed-1", "mobile-0", "mobile-1", "commuter", "n/0"])
wire_text = st.one_of(st.text(max_size=12),
                      st.sampled_from(sorted(wire_key_table())))
scalars = st.one_of(st.none(), st.booleans(),
                    st.integers(-(2 ** 40), 2 ** 40),
                    st.floats(allow_nan=False), wire_text,
                    st.binary(max_size=24))
payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(wire_text, children, max_size=4),
    ),
    max_leaves=12,
)
header_stacks = st.lists(st.one_of(
    wire_text,
    st.tuples(wire_text, st.integers(0, 999)),
    st.dictionaries(wire_text, st.integers(), max_size=3),
), max_size=4)


@st.composite
def packets(draw):
    src = draw(node_ids)
    multicast = draw(st.booleans())
    dst = (tuple(draw(st.lists(node_ids, min_size=1, max_size=3,
                               unique=True)))
           if multicast else draw(node_ids))
    message = Message(payload=draw(payloads), headers=draw(header_stacks))
    return Packet(
        src=src, dst=dst, port=draw(wire_text.filter(bool)),
        event_cls=draw(st.sampled_from(EVENT_CLASSES)), message=message,
        logical_src=draw(st.one_of(st.none(), node_ids)),
        traffic_class=draw(st.sampled_from([DATA, CONTROL])))


def _reference_packet() -> Packet:
    """A fixed non-trivial frame for the deterministic corruption tests."""
    message = Message(payload={"seqno": 7, "text": "hello"},
                      headers=[("rel", 7), "membership"])
    return Packet(src="fixed-0", dst=("fixed-1", "mobile-0"), port="data#c1",
                  event_cls=ApplicationMessage, message=message,
                  logical_src="commuter", traffic_class=DATA)


# -- round-trips --------------------------------------------------------------

class TestRoundTrip:
    @given(packet=packets())
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_packets_round_trip(self, packet):
        back = decode_frame(encode_frame(packet))
        assert back.src == packet.src
        assert back.dst == packet.dst
        assert back.port == packet.port
        assert back.event_cls is packet.event_cls
        assert back.logical_src == packet.logical_src
        assert back.traffic_class == packet.traffic_class
        assert back.message == packet.message
        assert back.message.headers == packet.message.headers

    @given(packet=packets())
    @settings(max_examples=100, deadline=None)
    def test_byte_charges_travel_verbatim(self, packet):
        """Counters on the receiver reproduce the sender's accounting."""
        back = decode_frame(encode_frame(packet))
        assert back.size_bytes == packet.size_bytes
        assert back.wire_bytes == packet.wire_bytes

    def test_multicast_siblings_share_one_frame_shape(self):
        packet = _reference_packet()
        clone = packet.copy_for("fixed-1")
        back = decode_frame(encode_frame(clone))
        assert back.dst == "fixed-1"
        assert back.size_bytes == packet.size_bytes


# -- embedded class references (codec tag 0x10) -------------------------------

class TestClassReferences:
    def test_event_class_round_trips_to_identity(self):
        blob, charge = encode_payload(RetransmissionMessage)
        assert decode_payload(blob) is RetransmissionMessage
        assert charge == estimate_size(RetransmissionMessage)

    def test_class_inside_mapping_round_trips(self):
        """The retransmission-store shape that first hit the live wire."""
        snapshot = {"cls": ApplicationMessage, "seqno": 42}
        blob, _ = encode_payload(snapshot)
        back = decode_payload(blob)
        assert back["cls"] is ApplicationMessage
        assert back["seqno"] == 42

    def test_non_event_class_is_rejected(self):
        with pytest.raises(CodecError):
            encode_payload(dict)

    def test_unknown_class_name_is_rejected(self):
        with pytest.raises(CodecError):
            resolve_event_class("NoSuchEventClass")


# -- adversarial inputs -------------------------------------------------------

def _assert_only_codec_error(data: bytes) -> None:
    try:
        decode_frame(data)
    except CodecError:
        pass


class TestMalformedFrames:
    def test_every_truncation_raises_codec_error(self):
        frame = encode_frame(_reference_packet())
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                decode_frame(frame[:cut])

    def test_bad_magic(self):
        frame = bytearray(encode_frame(_reference_packet()))
        frame[0] ^= 0xFF
        with pytest.raises(CodecError):
            decode_frame(bytes(frame))

    def test_unknown_version(self):
        frame = bytearray(encode_frame(_reference_packet()))
        frame[1] = FRAME_VERSION + 1
        with pytest.raises(CodecError):
            decode_frame(bytes(frame))

    def test_oversized_datagram_rejected_on_decode(self):
        with pytest.raises(CodecError):
            decode_frame(bytes([FRAME_MAGIC, FRAME_VERSION]) +
                         b"\x00" * MAX_DATAGRAM_BYTES)

    def test_oversized_payload_rejected_on_encode(self):
        packet = Packet(src="a", dst="b", port="data",
                        event_cls=ApplicationMessage,
                        message=Message(payload=b"x" * (MAX_DATAGRAM_BYTES)))
        with pytest.raises(CodecError):
            encode_frame(packet)

    def test_unknown_event_class_name(self):
        """A structurally valid frame naming a class we never deployed."""
        packet = _reference_packet()
        meta = (packet.src, packet.logical_src, packet.port,
                "NoSuchEventClass", packet.dst, packet.traffic_class,
                packet.size_bytes, packet.wire_bytes)
        meta_blob, _ = encode_payload(meta)
        body_blob, _ = encode_payload(packet.message)
        out = bytearray((FRAME_MAGIC, FRAME_VERSION))
        codec._append_varint(out, len(meta_blob))
        out += meta_blob + body_blob
        with pytest.raises(CodecError):
            decode_frame(bytes(out))

    def test_wrong_meta_shape(self):
        meta_blob, _ = encode_payload(("just", "three", "fields"))
        body_blob, _ = encode_payload(Message(payload=b""))
        out = bytearray((FRAME_MAGIC, FRAME_VERSION))
        codec._append_varint(out, len(meta_blob))
        out += meta_blob + body_blob
        with pytest.raises(CodecError):
            decode_frame(bytes(out))

    def test_body_must_be_a_message(self):
        packet = _reference_packet()
        meta = (packet.src, packet.logical_src, packet.port,
                packet.event_cls.__name__, packet.dst, packet.traffic_class,
                packet.size_bytes, packet.wire_bytes)
        meta_blob, _ = encode_payload(meta)
        body_blob, _ = encode_payload({"not": "a message"})
        out = bytearray((FRAME_MAGIC, FRAME_VERSION))
        codec._append_varint(out, len(meta_blob))
        out += meta_blob + body_blob
        with pytest.raises(CodecError):
            decode_frame(bytes(out))

    @given(data=st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_garbage_never_raises_anything_but_codec_error(self, data):
        _assert_only_codec_error(data)

    @given(position=st.integers(min_value=0),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=300, deadline=None)
    def test_single_byte_corruption_is_contained(self, position, flip):
        """Flip one byte anywhere in a valid frame: decode either still
        succeeds (the flip hit redundant slack such as an unused varint
        range) or raises CodecError — never any other exception."""
        frame = bytearray(encode_frame(_reference_packet()))
        frame[position % len(frame)] ^= flip
        _assert_only_codec_error(bytes(frame))
