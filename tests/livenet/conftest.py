"""Fixtures and guards for the livenet suite.

Everything marked ``live`` opens real UDP loopback sockets and runs in
(scaled) wall-clock time.  Sandboxes without a bindable loopback socket
skip those tests at collection time instead of erroring inside asyncio;
the frame and clock tests are pure in-process code and always run as part
of the tier-1 gate.
"""

from __future__ import annotations

import socket

import pytest


def _loopback_udp_available() -> bool:
    """Can this environment bind a UDP socket on 127.0.0.1 at all?"""
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    except OSError:
        return False
    try:
        sock.bind(("127.0.0.1", 0))
    except OSError:
        return False
    finally:
        sock.close()
    return True


def pytest_collection_modifyitems(config, items):
    if _loopback_udp_available():
        return
    skip = pytest.mark.skip(
        reason="no bindable UDP loopback socket in this environment")
    for item in items:
        if "live" in item.keywords:
            item.add_marker(skip)
