"""The example scripts are part of the public API surface: they must run.

Each example asserts its own claims internally (delivery, adaptation,
ordering); these tests just execute them in a subprocess and require a
clean exit.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))

#: The examples import ``repro`` from the src layout; make sure the
#: subprocess finds it even when pytest itself was launched bare (the
#: runner's own path comes from pytest.ini's ``pythonpath = src``).
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(_ROOT / "src")] +
    ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else []))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=600,
                            env=_ENV)
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "adaptive_chat", "error_adaptive_fec",
            "energy_aware_relay", "multi_room_chat"} <= names
