"""Property-based tests for the GF(256) Reed–Solomon erasure code."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.rs_code import (cauchy_matrix, gf_div, gf_inv, gf_mul,
                                     rs_decode, rs_encode)

byte = st.integers(min_value=0, max_value=255)
nonzero_byte = st.integers(min_value=1, max_value=255)


class TestFieldArithmetic:
    @given(byte, byte, byte)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(byte, byte)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(byte)
    def test_one_is_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(byte)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero_byte)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(byte, nonzero_byte)
    def test_div_inverts_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(byte, byte, byte)
    def test_distributive_over_xor(self, a, b, c):
        """XOR is addition in GF(2^8); multiplication distributes over it."""
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestCauchyMatrix:
    def test_dimensions(self):
        matrix = cauchy_matrix(4, 3)
        assert len(matrix) == 4 and all(len(row) == 3 for row in matrix)

    def test_entries_nonzero(self):
        matrix = cauchy_matrix(8, 4)
        assert all(entry != 0 for row in matrix for entry in row)

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)  # k + m > 256
        with pytest.raises(ValueError):
            cauchy_matrix(0, 3)


class TestEncodeDecode:
    def test_no_erasures_round_trip(self):
        data = [b"alpha", b"bravo", b"charlie"]
        parities = rs_encode(data, 2)
        pieces = {i: block for i, block in enumerate(data)}
        assert rs_decode(pieces, 3, 2, [5, 5, 7]) == data

    def test_single_erasure_recovered(self):
        data = [b"one", b"two", b"three", b"four"]
        parities = rs_encode(data, 2)
        pieces = {0: data[0], 2: data[2], 3: data[3],
                  4: parities[0]}
        lengths = [len(block) for block in data]
        assert rs_decode(pieces, 4, 2, lengths) == data

    def test_max_erasures_recovered(self):
        data = [b"aaaa", b"bbbb", b"cccc"]
        parities = rs_encode(data, 3)
        pieces = {3: parities[0], 4: parities[1], 5: parities[2]}
        assert rs_decode(pieces, 3, 3, [4, 4, 4]) == data

    def test_too_many_erasures_rejected(self):
        data = [b"x", b"y", b"z"]
        parities = rs_encode(data, 1)
        pieces = {0: data[0], 3: parities[0]}  # two data blocks missing
        with pytest.raises(ValueError, match="unrecoverable"):
            rs_decode(pieces, 3, 1, [1, 1, 1])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            rs_decode({9: b"x"}, 3, 2)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(st.binary(min_size=0, max_size=40), min_size=1,
                      max_size=10),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_k_pieces_reconstruct(self, data, m, seed):
        """MDS property: any k of the k+m pieces reconstruct the data."""
        import random
        k = len(data)
        parities = rs_encode(data, m)
        all_pieces = {i: block for i, block in enumerate(data)}
        all_pieces.update({k + j: parity for j, parity in enumerate(parities)})
        rng = random.Random(seed)
        erased = rng.sample(range(k + m), k=min(m, k + m))
        surviving = {i: p for i, p in all_pieces.items() if i not in erased}
        lengths = [len(block) for block in data]
        assert rs_decode(surviving, k, m, lengths) == data

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.binary(min_size=1, max_size=20), min_size=2,
                         max_size=6))
    def test_parity_blocks_padded_to_widest(self, data):
        parities = rs_encode(data, 2)
        widest = max(len(block) for block in data)
        assert all(len(parity) == widest for parity in parities)
