"""The view-synchrony blocking layer in isolation and across swaps."""

from __future__ import annotations

import pytest

from repro.kernel import Direction
from repro.protocols import TriggerViewChangeEvent
from tests.protocols.helpers import build_world, collector_of


def viewsync_of(channel):
    return channel.session_named("view_sync")


class TestBlocking:
    def test_blocked_until_first_view(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        assert viewsync_of(channels["a"]).blocked
        engine.run_until(1.0)
        assert not viewsync_of(channels["a"]).blocked

    def test_sends_during_flush_are_held_not_transmitted(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        # Start a hold-flush so the channel stays blocked afterwards.
        channels["a"].insert(TriggerViewChangeEvent(hold=True),
                             Direction.DOWN)
        engine.run_until(5.0)
        network.reset_stats()
        collector_of(channels["a"]).send_text("held-message")
        engine.run_until(8.0)
        assert network.stats_of("a").sent_data == 0
        assert len(viewsync_of(channels["a"])._held) == 1

    def test_held_sends_released_on_view(self):
        """A send issued inside a (non-hold) flush window is delivered
        after the new view installs."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        # Inject the send while the flush is still in progress.
        collector_of(channels["a"]).send_text("deferred")
        assert viewsync_of(channels["a"]).blocked
        engine.run_until(15.0)
        assert "deferred" in collector_of(channels["b"]).payloads()
        view = collector_of(channels["b"]).view
        assert view.view_id == 1


class TestBlockWindowIntegrity:
    def test_no_data_transmitted_between_block_and_view(self):
        """Timeline invariant: zero data sends inside the flush window."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(0.5)
        sent_during_flush = []
        original_transmit = network.transmit

        def spy(sender, packet):
            viewsync = viewsync_of(channels[sender.node_id])
            if packet.traffic_class == "data" and viewsync.blocked:
                sent_during_flush.append(packet)
            original_transmit(sender, packet)

        network.transmit = spy
        for index in range(20):
            engine.call_at(0.6 + index * 0.05,
                           lambda i=index: collector_of(
                               channels["b"]).send_text(i))
        engine.call_at(0.8, lambda: channels["a"].insert(
            TriggerViewChangeEvent(), Direction.DOWN))
        engine.run_until(20.0)
        assert sent_during_flush == []
        for channel in channels.values():
            assert collector_of(channel).payloads() == list(range(20))
