"""Unit tests for membership view agreement and the flush protocol."""

from __future__ import annotations

import pytest

from repro.kernel import Direction
from repro.protocols import LeaveRequestEvent, TriggerViewChangeEvent
from tests.protocols.helpers import build_world, collector_of, membership_of


class TestLeave:
    def test_member_leave_installs_smaller_view(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(0.5)
        channels["c"].insert(LeaveRequestEvent(), Direction.DOWN)
        engine.run_until(10.0)
        for node_id in ("a", "b"):
            assert collector_of(channels[node_id]).view.members == ("a", "b")

    def test_coordinator_leave_hands_over(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(0.5)
        channels["a"].insert(LeaveRequestEvent(), Direction.DOWN)
        engine.run_until(10.0)
        for node_id in ("b", "c"):
            view = collector_of(channels[node_id]).view
            assert view.members == ("b", "c")
            assert view.coordinator == "b"
        # The group still functions under the new coordinator.
        collector_of(channels["b"]).send_text("handover-ok")
        engine.run_until(15.0)
        assert "handover-ok" in collector_of(channels["c"]).payloads()


class TestFlushUnderLoss:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_flush_completes_despite_wireless_loss(self, seed):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            wireless_loss=0.2, seed=seed, nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["b"]).send_text(index)
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        engine.run_until(60.0)
        for node_id, channel in channels.items():
            view = collector_of(channel).view
            assert view.view_id >= 1, node_id
            assert collector_of(channel).payloads() == list(range(10)), node_id

    def test_view_synchrony_same_delivery_set_before_view(self):
        """All members install the view with identical delivered sets."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            wireless_loss=0.15, seed=6, nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(15):
            collector_of(channels["c"]).send_text(index)
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        engine.run_until(60.0)

        def delivered_before_view_1(channel):
            timeline = collector_of(channel).timeline
            cutoff = timeline.index(("view", 1))
            return tuple(payload for kind, payload in timeline[:cutoff]
                         if kind == "msg")

        sets = [delivered_before_view_1(channel)
                for channel in channels.values()]
        assert sets[0] == sets[1] == sets[2]


class TestHold:
    def test_hold_keeps_stack_blocked(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        channels["a"].insert(TriggerViewChangeEvent(hold=True),
                             Direction.DOWN)
        engine.run_until(5.0)
        # Post-quiescence sends must not reach the network.
        network.reset_stats()
        collector_of(channels["a"]).send_text("held")
        engine.run_until(8.0)
        assert network.stats_of("a").sent_data == 0
        viewsync = channels["a"].session_named("view_sync")
        assert viewsync.blocked

    def test_quiescence_listener_hook_fires(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        held_views = []
        membership_of(channels["b"]).quiescence_listener = held_views.append
        channels["a"].insert(TriggerViewChangeEvent(hold=True),
                             Direction.DOWN)
        engine.run_until(5.0)
        assert len(held_views) == 1
        assert held_views[0].view_id == 1


class TestViewIdentifiers:
    def test_view_ids_strictly_increase(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        for round_index in range(3):
            channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
            engine.run_until(5.0 * (round_index + 1) + 5.0)
        views = collector_of(channels["b"]).views
        ids = [view.view_id for view in views]
        assert ids == sorted(set(ids))
        assert ids[-1] == 3

    def test_exclusion_via_trigger(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(0.5)
        channels["a"].insert(TriggerViewChangeEvent(exclude=("c",)),
                             Direction.DOWN)
        engine.run_until(10.0)
        assert collector_of(channels["a"]).view.members == ("a", "b")
