"""Whole-suite integration: stacks on simulated nodes exchanging traffic."""

from __future__ import annotations

import pytest

from repro.protocols import TriggerViewChangeEvent
from repro.kernel import Direction
from tests.protocols.helpers import (build_world, collector_of,
                                     membership_of)


class TestBootstrap:
    def test_initial_view_installs_everywhere(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile"})
        engine.run_until(1.0)
        for channel in channels.values():
            view = collector_of(channel).view
            assert view is not None
            assert view.members == ("a", "b", "c")
            assert view.view_id == 0
            assert view.coordinator == "a"

    def test_sends_before_view_are_queued_not_lost(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"})
        # Send immediately, before the initial view has installed.
        collector_of(channels["a"]).send_text("early")
        engine.run_until(2.0)
        assert "early" in collector_of(channels["b"]).payloads()


class TestDataExchange:
    def test_all_members_deliver_all_messages(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"})
        engine.run_until(0.5)
        for index in range(20):
            collector_of(channels["b"]).send_text(f"msg-{index}")
        engine.run_until(5.0)
        for node_id, channel in channels.items():
            payloads = collector_of(channel).payloads()
            assert payloads == [f"msg-{i}" for i in range(20)], node_id

    def test_sender_delivers_own_messages(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        collector_of(channels["a"]).send_text("self-delivery")
        engine.run_until(2.0)
        assert collector_of(channels["a"]).payloads() == ["self-delivery"]

    def test_interleaved_senders_fifo_per_sender(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["a"]).send_text(("a", index))
            collector_of(channels["b"]).send_text(("b", index))
        engine.run_until(5.0)
        for channel in channels.values():
            payloads = collector_of(channel).payloads()
            for sender in ("a", "b"):
                own = [i for s, i in payloads if s == sender]
                assert own == list(range(10))

    def test_delivery_under_wireless_loss(self):
        """NACK recovery: every message eventually delivered despite loss."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            wireless_loss=0.15, seed=11)
        engine.run_until(0.5)
        for index in range(30):
            collector_of(channels["b"]).send_text(index)
        engine.run_until(30.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).payloads() == list(range(30)), node_id


class TestViewChange:
    def test_trigger_refresh_view(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile"})
        engine.run_until(0.5)
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        engine.run_until(5.0)
        for channel in channels.values():
            view = collector_of(channel).view
            assert view.view_id == 1
            assert view.members == ("a", "b", "c")

    def test_messages_in_flight_survive_view_change(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile"})
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["c"]).send_text(index)
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        for index in range(10, 15):
            collector_of(channels["c"]).send_text(index)
        engine.run_until(10.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).payloads() == list(range(15)), node_id

    def test_crash_detected_and_excluded(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile"},
            heartbeat_interval=0.2)
        engine.run_until(0.5)
        network.crash_node("c")
        engine.run_until(15.0)
        for node_id in ("a", "b"):
            view = collector_of(channels[node_id]).view
            assert view.members == ("a", "b"), node_id

    def test_coordinator_crash_reelects(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            heartbeat_interval=0.2)
        engine.run_until(0.5)
        network.crash_node("a")  # the coordinator
        engine.run_until(15.0)
        for node_id in ("b", "c"):
            view = collector_of(channels[node_id]).view
            assert view.members == ("b", "c"), node_id
            assert view.coordinator == "b"
        # The group still works.
        collector_of(channels["b"]).send_text("after-reelection")
        engine.run_until(20.0)
        assert "after-reelection" in collector_of(channels["c"]).payloads()

    def test_hold_flush_reaches_quiescence(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile"})
        engine.run_until(0.5)
        channels["a"].insert(TriggerViewChangeEvent(hold=True),
                             Direction.DOWN)
        engine.run_until(5.0)
        for node_id, channel in channels.items():
            collector = collector_of(channel)
            assert len(collector.quiescent) == 1, node_id
            assert collector.quiescent[0].view_id == 1
            membership = membership_of(channel)
            assert membership.phase.value == "held"


class TestOrdering:
    def test_total_order_agreement(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            ordering=("total",))
        engine.run_until(0.5)
        # Two concurrent senders: total order must be identical everywhere.
        for index in range(15):
            collector_of(channels["b"]).send_text(("b", index))
            collector_of(channels["c"]).send_text(("c", index))
        engine.run_until(10.0)
        sequences = [collector_of(channel).payloads()
                     for channel in channels.values()]
        assert len(sequences[0]) == 30
        assert sequences[0] == sequences[1] == sequences[2]

    def test_causal_order_respected(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            ordering=("causal",))
        engine.run_until(0.5)
        collector_of(channels["a"]).send_text("question")
        engine.run_until(2.0)
        # b replies only after delivering the question.
        assert "question" in collector_of(channels["b"]).payloads()
        collector_of(channels["b"]).send_text("answer")
        engine.run_until(5.0)
        for channel in channels.values():
            payloads = collector_of(channel).payloads()
            assert payloads.index("question") < payloads.index("answer")
