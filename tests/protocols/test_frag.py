"""Fragmentation/reassembly of oversized messages."""

from __future__ import annotations

import pytest

from repro.experiments.ministacks import build_ministack
from repro.protocols import BestEffortMulticastLayer, FragmentationLayer
from repro.simnet import Network, SimEngine


def frag_world(mtu=256, members=("a", "b")):
    engine = SimEngine()
    network = Network(engine, seed=9)
    for node_id in members:
        network.add_fixed_node(node_id)
    members_csv = ",".join(members)
    probes = {}
    for node_id in members:
        probes[node_id] = build_ministack(
            network, node_id, members,
            [FragmentationLayer(mtu=mtu),
             BestEffortMulticastLayer(members=members_csv)])
    return engine, network, probes


def frag_of(network, node_id):
    return network.node(node_id).kernel.find_channel("data") \
        .session_named("frag")


class TestFragmentation:
    def test_small_messages_pass_untouched(self):
        engine, network, probes = frag_world(mtu=1000)
        probes["a"].send("tiny")
        engine.run_until(1.0)
        assert probes["b"].payloads() == ["tiny"]
        assert frag_of(network, "a").fragmented_count == 0

    def test_large_message_fragmented_and_reassembled(self):
        engine, network, probes = frag_world(mtu=128)
        big = "x" * 1000
        probes["a"].send(big)
        engine.run_until(1.0)
        assert probes["b"].payloads() == [big]
        assert frag_of(network, "a").fragmented_count == 1
        assert frag_of(network, "b").reassembled_count == 1

    def test_fragment_count_matches_size(self):
        engine, network, probes = frag_world(mtu=128)
        network.reset_stats()
        probes["a"].send("y" * 1000)  # chunk = 64 bytes → ~16 fragments
        engine.run_until(1.0)
        fragments = network.stats_of("a").sent_by_event["FragmentEvent"]
        assert 12 <= fragments <= 20

    def test_source_attribution_preserved(self):
        engine, network, probes = frag_world(mtu=128)
        probes["a"].send("z" * 500)
        engine.run_until(1.0)
        assert probes["b"].deliveries[0].source == "a"

    def test_interleaved_large_messages_reassemble_independently(self):
        engine, network, probes = frag_world(mtu=128,
                                             members=("a", "b", "c"))
        probes["a"].send("A" * 600)
        probes["c"].send("C" * 600)
        engine.run_until(2.0)
        assert sorted(probes["b"].payloads()) == ["A" * 600, "C" * 600]

    def test_mtu_validation(self):
        with pytest.raises(ValueError, match="mtu too small"):
            FragmentationLayer(mtu=10).create_session()

    def test_incomplete_reassembly_expires(self):
        engine, network, probes = frag_world(mtu=128)
        frag_b = frag_of(network, "b")
        # Fake a lone fragment arriving (rest lost): inject directly.
        from repro.protocols.frag import FragmentEvent
        from repro.kernel import Message, Direction
        channel = network.node("b").kernel.find_channel("data")
        lone = FragmentEvent(message=Message(payload={
            "origin": "ghost", "frag_id": 1, "index": 0, "total": 5,
            "chunk": b"part"}), source="ghost", dest="b")
        frag_b.reassembly_timeout = 1.0
        channel.insert(lone, Direction.UP)
        engine.run_until(5.0)
        assert frag_b.expired_count == 1
        assert frag_b._buffers == {}
