"""Unit tests for the reliable FIFO multicast layer."""

from __future__ import annotations

import pytest

from repro.kernel import Direction
from repro.protocols import FlushCutEvent, FlushQueryEvent
from tests.protocols.helpers import build_world, collector_of


def reliable_of(channel):
    return channel.session_named("reliable")


class TestSequencing:
    def test_fifo_per_sender_under_loss(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            wireless_loss=0.25, seed=5, nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(25):
            collector_of(channels["b"]).send_text(index)
        engine.run_until(40.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).payloads() == list(range(25)), node_id

    def test_duplicates_are_dropped(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile"}, wireless_loss=0.3, seed=8,
            nack_interval=0.05)
        engine.run_until(0.5)
        for index in range(20):
            collector_of(channels["b"]).send_text(index)
        engine.run_until(30.0)
        # Aggressive NACKing under heavy loss produces duplicate
        # retransmissions; delivery must stay exactly-once.
        payloads = collector_of(channels["a"]).payloads()
        assert payloads == list(range(20))
        assert reliable_of(channels["a"]).duplicates_dropped >= 0

    def test_retransmissions_are_served_from_the_store(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile"}, wireless_loss=0.3, seed=2,
            nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(30):
            collector_of(channels["b"]).send_text(index)
        engine.run_until(40.0)
        total_served = sum(
            reliable_of(channel).retransmissions_served
            for channel in channels.values())
        total_nacks = sum(
            reliable_of(channel).nacks_sent for channel in channels.values())
        assert total_nacks > 0
        assert total_served > 0
        assert collector_of(channels["a"]).payloads() == list(range(30))


class TestFlushSupport:
    def test_flush_query_reports_traffic_vector(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        for index in range(5):
            collector_of(channels["a"]).send_text(index)
        engine.run_until(2.0)
        recorded = []
        membership = channels["b"].session_named("membership")
        original = membership.on_event

        def spy(event):
            from repro.protocols.events import FlushStatusEvent
            if isinstance(event, FlushStatusEvent):
                recorded.append((event.sent, dict(event.delivered)))
            original(event)

        membership.on_event = spy
        # Drive the query through the proper path: down from membership.
        membership.send_down(FlushQueryEvent(), channel=channels["b"])
        engine.run_until(2.1)
        assert recorded, "reliable layer did not answer the flush query"
        sent, delivered = recorded[0]
        assert sent == 0              # b sent nothing
        assert delivered["a"] == 5    # b delivered a's five messages

    def test_cut_reached_after_recovery(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile"}, wireless_loss=0.2, seed=4,
            nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["b"]).send_text(index)
        engine.run_until(20.0)  # settle: everything delivered
        recorded = []
        membership = channels["a"].session_named("membership")
        original = membership.on_event

        def spy(event):
            from repro.protocols.events import CutReachedEvent
            if isinstance(event, CutReachedEvent):
                recorded.append(dict(event.cut))
            original(event)

        membership.on_event = spy
        membership.send_down(
            FlushCutEvent({"a": 0, "b": 10}, coordinator="a"),
            channel=channels["a"])
        engine.run_until(25.0)
        assert recorded and recorded[0] == {"a": 0, "b": 10}


class TestViewReset:
    def test_sequence_numbers_restart_in_new_view(self):
        from repro.protocols import TriggerViewChangeEvent
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        for index in range(4):
            collector_of(channels["a"]).send_text(index)
        engine.run_until(2.0)
        assert reliable_of(channels["a"]).next_seqno == 5
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        engine.run_until(8.0)
        assert reliable_of(channels["a"]).next_seqno == 1
        assert reliable_of(channels["a"]).store == {}
