"""Causal and total order under loss, churn and concurrency."""

from __future__ import annotations

import pytest

from repro.kernel import Direction
from repro.protocols import TriggerViewChangeEvent
from tests.protocols.helpers import build_world, collector_of


class TestTotalOrder:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_agreement_under_wireless_loss(self, seed):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            wireless_loss=0.12, seed=seed, ordering=("total",),
            nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(12):
            collector_of(channels["b"]).send_text(("b", index))
            collector_of(channels["c"]).send_text(("c", index))
        engine.run_until(40.0)
        sequences = [collector_of(channel).payloads()
                     for channel in channels.values()]
        assert len(sequences[0]) == 24
        assert sequences[0] == sequences[1] == sequences[2]

    def test_total_order_across_view_change(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            ordering=("total",))
        engine.run_until(0.5)
        for index in range(8):
            collector_of(channels["b"]).send_text(("b", index))
            collector_of(channels["c"]).send_text(("c", index))
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        for index in range(8, 12):
            collector_of(channels["b"]).send_text(("b", index))
        engine.run_until(30.0)
        sequences = [collector_of(channel).payloads()
                     for channel in channels.values()]
        assert len(sequences[0]) == 20
        assert sequences[0] == sequences[1] == sequences[2]

    def test_sequencer_is_view_coordinator(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"}, ordering=("total",))
        engine.run_until(1.0)
        total_a = channels["a"].session_named("total")
        total_b = channels["b"].session_named("total")
        assert total_a.is_sequencer
        assert not total_b.is_sequencer

    def test_fifo_preserved_within_sender(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            ordering=("total",))
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["c"]).send_text(("c", index))
        engine.run_until(10.0)
        for channel in channels.values():
            payloads = [i for s, i in collector_of(channel).payloads()
                        if s == "c"]
            assert payloads == list(range(10))


class TestCausalOrder:
    def test_transitive_chain_respected(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed", "d": "fixed"},
            ordering=("causal",))
        engine.run_until(0.5)
        collector_of(channels["a"]).send_text("m1")
        engine.run_until(2.0)
        collector_of(channels["b"]).send_text("m2-after-m1")
        engine.run_until(4.0)
        collector_of(channels["c"]).send_text("m3-after-m2")
        engine.run_until(8.0)
        for node_id, channel in channels.items():
            payloads = collector_of(channel).payloads()
            assert payloads.index("m1") < payloads.index("m2-after-m1") < \
                payloads.index("m3-after-m2"), node_id

    def test_causal_buffering_counter(self):
        """Under loss, some messages must wait for their causal past."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile", "c": "mobile"},
            ordering=("causal",), wireless_loss=0.2, seed=12,
            nack_interval=0.1)
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["b"]).send_text(("b", index))
            collector_of(channels["c"]).send_text(("c", index))
        engine.run_until(40.0)
        for channel in channels.values():
            assert len(collector_of(channel).payloads()) == 20

    def test_own_messages_delivered_immediately(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"}, ordering=("causal",))
        engine.run_until(0.5)
        collector = collector_of(channels["a"])
        collector.send_text("own")
        engine.run_until(1.0)
        assert "own" in collector.payloads()

    def test_vector_clock_resets_on_view_change(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed"}, ordering=("causal",))
        engine.run_until(0.5)
        for index in range(5):
            collector_of(channels["a"]).send_text(index)
        engine.run_until(2.0)
        causal = channels["a"].session_named("causal")
        assert causal.clock["a"] == 5
        channels["a"].insert(TriggerViewChangeEvent(), Direction.DOWN)
        engine.run_until(8.0)
        assert causal.clock == {"a": 0, "b": 0}


class TestCombinedOrdering:
    def test_causal_and_total_stack_together(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            ordering=("causal", "total"))
        engine.run_until(0.5)
        for index in range(10):
            collector_of(channels["b"]).send_text(("b", index))
            collector_of(channels["c"]).send_text(("c", index))
        engine.run_until(15.0)
        sequences = [collector_of(channel).payloads()
                     for channel in channels.values()]
        assert len(sequences[0]) == 20
        assert sequences[0] == sequences[1] == sequences[2]
