"""Shared scaffolding for protocol-suite tests: full stacks on simnet."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.kernel import (Direction, Event, Layer, Message, QoS,
                          SendableEvent, Session)
from repro.protocols import (GROUP_DEST, ApplicationMessage,
                             BestEffortMulticastLayer, BlockEvent,
                             CausalOrderLayer, HeartbeatLayer, MechoLayer,
                             MembershipLayer, QuiescentEvent,
                             ReliableMulticastLayer, SuspectEvent,
                             TotalOrderLayer, View, ViewEvent, ViewSyncLayer)
from repro.simnet import (BernoulliLoss, LinkParams, Network, SimEngine,
                          SimTransportLayer, SimTransportSession)


class CollectorSession(Session):
    """Top-of-stack test application: records deliveries and view changes."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.delivered: list[ApplicationMessage] = []
        self.views: list[View] = []
        self.blocks = 0
        self.quiescent: list[View] = []
        #: Interleaved record of deliveries and view installations, used by
        #: view-synchrony tests ("what was delivered before view k?").
        self.timeline: list[tuple[str, object]] = []

    def handle(self, event: Event) -> None:
        if isinstance(event, ApplicationMessage) and \
                event.direction is Direction.UP:
            self.delivered.append(event)
            self.timeline.append(("msg", event.message.payload))
            return
        if isinstance(event, ViewEvent):
            self.views.append(event.view)
            self.timeline.append(("view", event.view.view_id))
            return
        if isinstance(event, BlockEvent):
            self.blocks += 1
            event.go()
            return
        if isinstance(event, QuiescentEvent):
            self.quiescent.append(event.view)
            event.go()
            return
        event.go()

    # -- conveniences ------------------------------------------------------

    def payloads(self) -> list:
        return [event.message.payload for event in self.delivered]

    def sources(self) -> list[str]:
        return [event.source for event in self.delivered]

    def send_text(self, payload) -> None:
        event = ApplicationMessage(message=Message(payload=payload),
                                   dest=GROUP_DEST)
        self.send_down(event)

    @property
    def view(self) -> Optional[View]:
        return self.views[-1] if self.views else None


class CollectorLayer(Layer):
    accepted_events = (ApplicationMessage, ViewEvent, BlockEvent,
                       QuiescentEvent, SuspectEvent)
    provided_events = (ApplicationMessage,)
    session_class = CollectorSession


def build_group_stack(network: Network, node_id: str,
                      members: Sequence[str],
                      dissemination: Optional[Layer] = None,
                      heartbeat_interval: float = 0.5,
                      nack_interval: float = 0.1,
                      ordering: Sequence[str] = (),
                      channel_name: str = "data",
                      join: bool = False):
    """Compose the full suite on one node; returns the channel.

    ``ordering`` may contain ``"causal"`` and/or ``"total"``.  With
    ``join=True`` the node solicits admission from ``members`` instead of
    self-installing a bootstrap view.
    """
    node = network.node(node_id)
    members_csv = ",".join(sorted(members))
    transport_layer = SimTransportLayer()
    transport_session = SimTransportSession(transport_layer, node=node)
    if dissemination is None:
        dissemination = BestEffortMulticastLayer(members=members_csv)
    layers: list[Layer] = [
        transport_layer,
        dissemination,
        ReliableMulticastLayer(members=members_csv,
                               nack_interval=nack_interval),
        HeartbeatLayer(members=members_csv, interval=heartbeat_interval),
        MembershipLayer(members=members_csv, retry_interval=0.3, join=join),
        ViewSyncLayer(),
    ]
    if "causal" in ordering:
        layers.append(CausalOrderLayer())
    if "total" in ordering:
        layers.append(TotalOrderLayer())
    layers.append(CollectorLayer())
    qos = QoS(f"suite-{node_id}", layers)
    channel = qos.create_channel(channel_name, node.kernel,
                                 preset_sessions={0: transport_session})
    channel.start()
    return channel


def collector_of(channel) -> CollectorSession:
    return channel.sessions[-1]


def membership_of(channel):
    return channel.session_named("membership")


def build_world(member_specs: dict[str, str], seed: int = 3,
                wireless_loss: float = 0.0,
                dissemination_factory=None,
                **stack_kwargs):
    """Create engine+network+stacks.

    ``member_specs`` maps node id → ``"fixed"`` | ``"mobile"``.
    ``dissemination_factory(node_id)`` may supply a per-node dissemination
    layer (e.g. Mecho in the right mode).
    Returns ``(engine, network, {node_id: channel})``.
    """
    engine = SimEngine()
    loss = BernoulliLoss(wireless_loss, random.Random(seed)) \
        if wireless_loss else None
    wireless = LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                          loss=loss) if loss else None
    network = Network(engine, seed=seed, wireless=wireless)
    for node_id, kind in member_specs.items():
        if kind == "fixed":
            network.add_fixed_node(node_id)
        else:
            network.add_mobile_node(node_id)
    channels = {}
    members = sorted(member_specs)
    for node_id in members:
        dissemination = dissemination_factory(node_id) \
            if dissemination_factory is not None else None
        channels[node_id] = build_group_stack(network, node_id, members,
                                              dissemination=dissemination,
                                              **stack_kwargs)
    return engine, network, channels
