"""Unit tests for the FEC layer and the epidemic gossip layer."""

from __future__ import annotations

import random

import pytest

from repro.apps.workload import ProbeSession
from repro.experiments.ministacks import (build_ministack, fec_stack,
                                          flood_stack, gossip_stack)
from repro.protocols.fec import FecLayer
from repro.simnet import BernoulliLoss, LinkParams, Network, SimEngine


def loss_world(member_ids, loss=0.0, seed=5, mobile=()):
    engine = SimEngine()
    wireless = LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                          loss=BernoulliLoss(loss, random.Random(seed)))
    network = Network(engine, seed=seed, wireless=wireless)
    for node_id in member_ids:
        if node_id in mobile:
            network.add_mobile_node(node_id)
        else:
            network.add_fixed_node(node_id)
    return engine, network


class TestFec:
    def test_lossless_block_needs_no_recovery(self):
        members = ["s", "r0", "r1"]
        engine, network = loss_world(members)
        probes = {node_id: build_ministack(
            network, node_id, members, fec_stack(",".join(members), k=4, m=1))
            for node_id in members}
        for index in range(8):  # exactly two blocks
            probes["s"].send(index)
        engine.run_until(10.0)
        for node_id in ("r0", "r1"):
            assert probes[node_id].payloads() == list(range(8))
            fec = network.node(node_id).kernel.find_channel("data") \
                .session_named("fec")
            assert fec.recovered_count == 0

    def test_parity_messages_emitted_per_block(self):
        members = ["s", "r0"]
        engine, network = loss_world(members)
        probes = {node_id: build_ministack(
            network, node_id, members, fec_stack(",".join(members), k=4, m=2))
            for node_id in members}
        network.reset_stats()
        for index in range(8):
            probes["s"].send(index)
        engine.run_until(5.0)
        parity_sent = network.stats_of("s").sent_by_event["ParityMessage"]
        assert parity_sent == 4  # 2 blocks × m=2 (one receiver)

    def test_losses_recovered_from_parity(self):
        members = ["s", "r0"]
        engine, network = loss_world(members, loss=0.2, seed=9,
                                     mobile=("s",))
        probes = {node_id: build_ministack(
            network, node_id, members, fec_stack(",".join(members), k=4, m=2))
            for node_id in members}
        for index in range(40):
            probes["s"].send(index)
        engine.run_until(30.0)
        assert sorted(probes["r0"].payloads()) == list(range(40))
        fec = network.node("r0").kernel.find_channel("data") \
            .session_named("fec")
        assert fec.recovered_count > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="invalid FEC parameters"):
            FecLayer(k=0, m=2).create_session()
        with pytest.raises(ValueError, match="invalid FEC parameters"):
            FecLayer(k=200, m=100).create_session()

    def test_incomplete_block_given_up_after_timeout(self):
        members = ["s", "r0"]
        engine, network = loss_world(members)
        fec_layers = fec_stack(",".join(members), k=8, m=1,
                               giveup_timeout=1.0)
        probes = {node_id: build_ministack(
            network, node_id, members,
            fec_stack(",".join(members), k=8, m=1, giveup_timeout=1.0)
            if node_id == "r0" else fec_layers)
            for node_id in members}
        # Send only 3 of a k=8 block: the block never completes.
        for index in range(3):
            probes["s"].send(index)
        engine.run_until(10.0)
        fec = network.node("r0").kernel.find_channel("data") \
            .session_named("fec")
        assert fec._blocks == {}  # swept away
        assert probes["r0"].payloads() == [0, 1, 2]  # data still delivered


class TestGossip:
    def build(self, num_nodes, fanout=3, rounds=4, seed=1):
        members = [f"n{i}" for i in range(num_nodes)]
        engine, network = loss_world(members, seed=seed)
        probes = {node_id: build_ministack(
            network, node_id, members,
            gossip_stack(",".join(members), fanout=fanout, rounds=rounds,
                         seed=seed))
            for node_id in members}
        return engine, network, probes, members

    def test_rumor_reaches_most_members(self):
        engine, network, probes, members = self.build(16)
        probes["n0"].send("rumor")
        engine.run_until(5.0)
        delivered = sum(1 for node_id in members[1:]
                        if "rumor" in probes[node_id].payloads())
        assert delivered >= 13  # probabilistic, but high for fanout 3 / 4 rounds

    def test_exactly_once_delivery_per_member(self):
        engine, network, probes, members = self.build(12)
        for index in range(5):
            probes["n0"].send(index)
        engine.run_until(10.0)
        for node_id in members:
            payloads = probes[node_id].payloads()
            assert len(payloads) == len(set(payloads))

    def test_origin_load_bounded_by_fanout(self):
        engine, network, probes, members = self.build(32, fanout=3)
        network.reset_stats()
        probes["n0"].send("load-test")
        engine.run_until(5.0)
        assert network.stats_of("n0").sent_total <= 3

    def test_deterministic_given_seed(self):
        def run():
            engine, network, probes, members = self.build(10, seed=77)
            probes["n0"].send("det")
            engine.run_until(5.0)
            return sorted(node_id for node_id in members
                          if "det" in probes[node_id].payloads())

        assert run() == run()

    def test_source_attribution_preserved(self):
        engine, network, probes, members = self.build(8)
        probes["n3"].send("from-n3")
        engine.run_until(5.0)
        for node_id in members:
            for delivery in probes[node_id].deliveries:
                assert delivery.source == "n3"
