"""Unit tests for the heartbeat failure detector.

These tests run the detector *without* a membership layer above it, so
suspicion state is observable directly (with membership present, a
suspicion immediately triggers a view change that clears it — that path is
covered by the integration tests).
"""

from __future__ import annotations

from repro.kernel import QoS
from repro.protocols import (BestEffortMulticastLayer, HeartbeatLayer,
                             MechoLayer)
from repro.protocols.events import PathChangedEvent
from repro.simnet import (Network, SimEngine, SimTransportLayer,
                          SimTransportSession)
from tests.protocols.helpers import CollectorLayer


def build_fd_stack(network, node_id, members, interval=0.5,
                   dissemination=None):
    node = network.node(node_id)
    members_csv = ",".join(sorted(members))
    transport_layer = SimTransportLayer()
    transport_session = SimTransportSession(transport_layer, node=node)
    if dissemination is None:
        dissemination = BestEffortMulticastLayer(members=members_csv)
    qos = QoS(f"fd-{node_id}", [
        transport_layer, dissemination,
        HeartbeatLayer(members=members_csv, interval=interval),
        CollectorLayer(),
    ])
    channel = qos.create_channel("data", node.kernel,
                                 preset_sessions={0: transport_session})
    channel.start()
    return channel


def build_fd_world(members=("a", "b", "c"), interval=0.5,
                   dissemination_factory=None):
    engine = SimEngine()
    network = Network(engine, seed=3)
    for node_id in members:
        network.add_fixed_node(node_id)
    channels = {}
    for node_id in members:
        dissemination = dissemination_factory(node_id) \
            if dissemination_factory else None
        channels[node_id] = build_fd_stack(network, node_id, members,
                                           interval=interval,
                                           dissemination=dissemination)
    return engine, network, channels


def heartbeat_of(channel):
    return channel.session_named("heartbeat")


class TestSuspicion:
    def test_crashed_member_suspected_within_timeout(self):
        engine, network, channels = build_fd_world()
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(6.0)  # interval 0.5 → timeout 3.0s
        assert "c" in heartbeat_of(channels["a"]).suspected
        assert "c" in heartbeat_of(channels["b"]).suspected

    def test_live_members_never_suspected(self):
        engine, network, channels = build_fd_world()
        engine.run_until(30.0)
        for channel in channels.values():
            assert heartbeat_of(channel).suspected == set()

    def test_recovered_member_unsuspected(self):
        engine, network, channels = build_fd_world()
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(5.0)
        assert "c" in heartbeat_of(channels["a"]).suspected
        network.recover_node("c")
        engine.run_until(10.0)
        assert "c" not in heartbeat_of(channels["a"]).suspected

    def test_custom_timeout_respected(self):
        engine, network, channels = build_fd_world(interval=1.0)
        # Default timeout = 6 × interval = 6s.
        engine.run_until(1.0)
        network.crash_node("b")
        engine.run_until(5.0)  # only ~4s of silence: not yet
        assert "b" not in heartbeat_of(channels["a"]).suspected
        engine.run_until(10.0)
        assert "b" in heartbeat_of(channels["a"]).suspected


class TestMechoFallback:
    def test_suspicion_reaches_mecho_below(self):
        """Suspicions travel down so Mecho can abandon a dead relay."""
        def factory(node_id):
            mode = "wired" if node_id == "a" else "wireless"
            return MechoLayer(mode=mode, relay="a", members="a,b,c")

        engine, network, channels = build_fd_world(
            dissemination_factory=factory)
        engine.run_until(1.0)
        network.crash_node("a")  # the relay
        engine.run_until(5.0)
        mecho_b = channels["b"].session_named("mecho")
        assert "a" in mecho_b.suspected
        # b's group sends now fan out directly instead of dying at a:
        # two transmissions (towards a and c) instead of one to the relay.
        network.reset_stats()
        channels["b"].sessions[-1].send_text("direct")
        engine.run_until(6.0)
        assert network.stats_of("b").sent_data == 2

    def test_unsuspect_restores_relaying(self):
        def factory(node_id):
            mode = "wired" if node_id == "a" else "wireless"
            return MechoLayer(mode=mode, relay="a", members="a,b,c")

        engine, network, channels = build_fd_world(
            dissemination_factory=factory)
        engine.run_until(1.0)
        network.crash_node("a")
        engine.run_until(5.0)
        assert "a" in channels["b"].session_named("mecho").suspected
        network.recover_node("a")
        engine.run_until(10.0)
        assert "a" not in channels["b"].session_named("mecho").suspected
        network.reset_stats()
        channels["b"].sessions[-1].send_text("relayed-again")
        engine.run_until(11.0)
        assert network.stats_of("b").sent_data == 1  # back to single uplink


class TestPathChangeDamping:
    """Path-change window resets are budgeted (suspicion starvation fix)."""

    @staticmethod
    def inject_path_changed(channel):
        event = PathChangedEvent()
        event.channel = channel
        channel.session_named("heartbeat").on_event(event)

    def test_single_reset_postpones_suspicion(self):
        engine, network, channels = build_fd_world(interval=0.5)
        engine.run_until(1.0)
        network.crash_node("c")
        # One genuine path change just before the 3 s timeout would fire:
        # the observation window restarts and suspicion moves out.
        engine.call_at(3.8, lambda: self.inject_path_changed(channels["a"]))
        engine.run_until(4.5)
        hb = heartbeat_of(channels["a"])
        assert "c" not in hb.suspected
        assert hb.path_reset_budget.refused == 0
        engine.run_until(8.0)  # 3 s after the reset: silence wins
        assert "c" in hb.suspected

    def test_path_change_flood_cannot_starve_suspicion(self):
        engine, network, channels = build_fd_world(interval=0.5)
        engine.run_until(1.0)
        network.crash_node("c")
        # A flapping path resets faster than the 3 s timeout, forever.
        # Unbudgeted, c would never be suspected.
        for tick in range(30):
            engine.call_at(1.5 + tick,
                           lambda: self.inject_path_changed(channels["a"]))
        engine.run_until(31.0)
        hb = heartbeat_of(channels["a"])
        assert "c" in hb.suspected
        assert hb.path_reset_budget.refused > 0

    def test_suspected_members_not_revived_by_reset(self):
        engine, network, channels = build_fd_world(interval=0.5)
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(6.0)
        hb = heartbeat_of(channels["a"])
        assert "c" in hb.suspected
        self.inject_path_changed(channels["a"])
        # The reset touches only unsuspected members; a declared suspect
        # needs an actual heartbeat to come back.
        assert "c" in hb.suspected


class TestBeaconCost:
    def test_one_beacon_per_interval_per_member(self):
        engine, network, channels = build_fd_world(interval=1.0)
        engine.run_until(0.5)
        network.reset_stats()
        engine.run_until(10.5)
        beats = network.stats_of("a").sent_by_event["HeartbeatMessage"]
        # ~10 intervals, 2 unicasts each (fan-out to b and c).
        assert 16 <= beats <= 24
