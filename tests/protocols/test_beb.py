"""Unit tests for the non-adaptive best-effort multicast baseline."""

from __future__ import annotations

import pytest

from repro.protocols import BestEffortMulticastLayer
from repro.simnet import Network, SimEngine
from tests.protocols.helpers import build_world, collector_of


class TestFanOut:
    def test_one_unicast_per_other_member(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed", "d": "fixed"})
        engine.run_until(0.5)
        network.reset_stats()
        collector_of(channels["a"]).send_text("x")
        engine.run_until(1.0)
        assert network.stats_of("a").sent_data == 3

    def test_loopback_delivers_to_sender_without_nic(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(0.5)
        network.reset_stats()
        collector_of(channels["a"]).send_text("self")
        engine.run_until(1.0)
        assert "self" in collector_of(channels["a"]).payloads()
        # Exactly one transmission (to b), none to self.
        assert network.stats_of("a").sent_data == 1

    def test_point_to_point_events_pass_through(self):
        """Unicast control traffic must not be fanned out."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(3.0)
        # NACK-free steady state: heartbeats are the only control traffic;
        # each heartbeat from a is exactly 2 transmissions (b, c).
        heartbeats = network.stats_of("a").sent_by_event["HeartbeatMessage"]
        assert heartbeats % 2 == 0

    def test_self_addressed_unicast_short_circuits(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(5.0)
        # The membership coordinator 'a' acks itself during the initial
        # flushless boot and any flush; none of that reaches the NIC as a
        # self-addressed packet.
        for packet_count in (network.stats_of("a").sent_by_event.items()):
            pass  # counters exist; the invariant below is the real check
        assert network.delivered_packets == network.stats_of("a").recv_total \
            + network.stats_of("b").recv_total


class TestNativeMode:
    def test_native_multicast_single_transmission(self):
        def factory(node_id):
            return BestEffortMulticastLayer(members="a,b,c", native=True)

        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            dissemination_factory=factory)
        # Enable wired native multicast on the segment.
        network.native_multicast_wired = True
        engine.run_until(0.5)
        network.reset_stats()
        collector_of(channels["a"]).send_text("native")
        engine.run_until(1.0)
        assert network.stats_of("a").sent_data == 1
        for node_id in ("b", "c"):
            assert "native" in collector_of(channels[node_id]).payloads()

    def test_native_mode_off_segment_raises(self):
        def factory(node_id):
            return BestEffortMulticastLayer(members="a,b", native=True)

        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile"}, dissemination_factory=factory)
        engine.run_until(0.2)
        with pytest.raises(ValueError, match="native multicast"):
            collector_of(channels["a"]).send_text("boom")
            engine.run_until(1.0)


class TestMembershipTracking:
    def test_fanout_follows_view_changes(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"},
            heartbeat_interval=0.2)
        engine.run_until(0.5)
        network.crash_node("c")
        engine.run_until(15.0)  # c excluded from the view
        network.reset_stats()
        collector_of(channels["a"]).send_text("post-exclusion")
        engine.run_until(16.0)
        assert network.stats_of("a").sent_data == 1  # only b remains
