"""Dynamic membership growth: joins, re-admission, merges and bans."""

from __future__ import annotations

from repro.kernel import Direction
from repro.protocols import LeaveRequestEvent, TriggerViewChangeEvent
from tests.protocols.helpers import (build_group_stack, build_world,
                                     collector_of, membership_of)


class TestJoin:
    def test_joiner_admitted_into_running_group(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(2.0)
        network.add_fixed_node("c")
        channels["c"] = build_group_stack(network, "c", ("a", "b", "c"),
                                          join=True)
        engine.run_until(10.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == ("a", "b", "c"), \
                node_id

    def test_joiner_talks_both_ways_after_admission(self):
        engine, network, channels = build_world({"a": "fixed", "b": "fixed"})
        engine.run_until(2.0)
        network.add_fixed_node("c")
        channels["c"] = build_group_stack(network, "c", ("a", "b", "c"),
                                          join=True)
        engine.run_until(10.0)
        collector_of(channels["c"]).send_text("from-joiner")
        collector_of(channels["a"]).send_text("to-joiner")
        engine.run_until(15.0)
        assert "from-joiner" in collector_of(channels["a"]).payloads()
        assert "to-joiner" in collector_of(channels["c"]).payloads()

    def test_join_under_wireless_loss(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "mobile"}, wireless_loss=0.15, seed=9)
        engine.run_until(2.0)
        network.add_mobile_node("c")
        channels["c"] = build_group_stack(network, "c", ("a", "b", "c"),
                                          join=True)
        engine.run_until(30.0)
        assert collector_of(channels["c"]).view is not None
        assert collector_of(channels["c"]).view.members == ("a", "b", "c")


class TestReadmission:
    def test_recovered_member_rejoins(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(10.0)
        assert collector_of(channels["a"]).view.members == ("a", "b")
        network.recover_node("c")
        engine.run_until(25.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == ("a", "b", "c"), \
                node_id
        collector_of(channels["a"]).send_text("welcome-back")
        engine.run_until(30.0)
        assert "welcome-back" in collector_of(channels["c"]).payloads()

    def test_double_crash_does_not_wedge_the_flush(self):
        engine, network, channels = build_world(
            {name: "fixed" for name in "abcd"})
        engine.run_until(1.0)
        network.crash_node("c")
        network.crash_node("d")
        engine.run_until(15.0)
        assert collector_of(channels["a"]).view.members == ("a", "b")
        collector_of(channels["a"]).send_text("still-alive")
        engine.run_until(20.0)
        assert "still-alive" in collector_of(channels["b"]).payloads()

    def test_merge_keeps_the_lower_coordinator_side(self):
        """A recovered singleton's privately-advanced view numbering must
        not absorb the healthy group — the side whose coordinator has the
        lowest id drives the merge."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(12.0)  # c churns through view ids on its own
        network.recover_node("c")
        engine.run_until(30.0)
        view = collector_of(channels["a"]).view
        assert view.members == ("a", "b", "c")
        assert view.coordinator == "a"


class TestPartitionMerge:
    def test_sides_probe_and_merge_after_heal(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile", "d": "mobile"})
        engine.run_until(1.0)
        network.partition({"a", "b"}, {"c", "d"})
        engine.run_until(15.0)
        assert collector_of(channels["a"]).view.members == ("a", "b")
        assert collector_of(channels["c"]).view.members == ("c", "d")
        network.heal_partition()
        engine.run_until(40.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == \
                ("a", "b", "c", "d"), node_id
        collector_of(channels["a"]).send_text("merged")
        engine.run_until(45.0)
        assert "merged" in collector_of(channels["d"]).payloads()

    def test_late_heal_still_merges_after_old_probe_budget(self):
        """Probing backs off exponentially but never gives up: a partition
        healed long after the historical ~48 s probe budget (40 probes,
        every 4th 0.3 s retry tick) would have stayed split forever under
        the budgeted scheme; with capped back-off the sides still merge."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "mobile", "d": "mobile"})
        engine.run_until(1.0)
        network.partition({"a", "b"}, {"c", "d"})
        engine.run_until(65.0)  # well past the old cutoff, still split
        assert collector_of(channels["a"]).view.members == ("a", "b")
        assert collector_of(channels["c"]).view.members == ("c", "d")
        # Both sides are still tracking (and probing) their lost peers.
        assert set(membership_of(channels["a"])._lost_peers) == {"c", "d"}
        assert set(membership_of(channels["c"])._lost_peers) == {"a", "b"}
        network.heal_partition()
        engine.run_until(110.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == \
                ("a", "b", "c", "d"), node_id
        collector_of(channels["a"]).send_text("late-merge")
        engine.run_until(115.0)
        assert "late-merge" in collector_of(channels["d"]).payloads()

    def test_probe_interval_is_capped(self):
        """Steady-state probing of a long-dead peer settles at the cap —
        bounded background cost, not unbounded growth or zero."""
        from repro.protocols.membership import _PROBE_MAX_TICKS
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(120.0)
        membership = membership_of(channels["a"])
        probes = membership._lost_peers
        assert set(probes) == {"c"}
        # The per-peer backoff one-shot carries the live interval; at
        # steady state it has saturated at the cap.
        timer = probes["c"].event
        assert timer.interval == _PROBE_MAX_TICKS * membership.retry_interval
        assert not probes["c"].cancelled


class TestDeliberateDepartures:
    def test_leaver_is_banned_from_stranger_readmission(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        channels["c"].insert(LeaveRequestEvent(), Direction.DOWN)
        engine.run_until(20.0)  # c's stack keeps beaconing the whole time
        assert collector_of(channels["a"]).view.members == ("a", "b")
        assert "c" in membership_of(channels["a"]).banned

    def test_explicit_exclusion_is_not_readmitted(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        channels["a"].insert(TriggerViewChangeEvent(exclude=("c",)),
                             Direction.DOWN)
        engine.run_until(20.0)
        assert collector_of(channels["a"]).view.members == ("a", "b")

    def test_explicit_join_request_lifts_the_ban(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        channels["c"].insert(LeaveRequestEvent(), Direction.DOWN)
        engine.run_until(10.0)
        assert "c" in membership_of(channels["a"]).banned
        # A deliberate re-join: c comes back with a fresh joiner stack.
        channels["c"].close()
        channels["c"] = build_group_stack(network, "c", ("a", "b", "c"),
                                          join=True)
        engine.run_until(25.0)
        assert collector_of(channels["a"]).view.members == ("a", "b", "c")
        assert "c" not in membership_of(channels["a"]).banned
