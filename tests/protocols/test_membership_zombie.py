"""Zombie acting-coordinator hardening: incarnation-numbered views.

A crashed node's state machine keeps running blind (timers fire, loopback
completes singleton flushes), so a recovered "zombie" returns with a
privately advanced view lineage.  When it is the **lowest id** of its
stale view it believes itself the acting coordinator, answers the live
group's lost-peer probes with admission flushes it completes alone, and —
pre-fix — absorbed live members one at a time into its stale lineage,
stranding everyone it never knew about (a joiner admitted during its
death, a member it had already excluded).  These tests script that
scenario directly at the protocol level and assert the incarnation
numbering closes the window:

* peers reject installs whose incarnation is not newer than their history
  for the announcing coordinator, so the zombie's stale lineage cannot
  take over a multi-member view;
* re-admission instead runs through the live side's flush, on the correct
  (advanced) incarnation, and converges with *everyone* aboard;
* re-used view ids across divergent lineages no longer collide in the
  reliable layer (the epoch folds in the installation stamp), so a
  readmitted node's traffic is not re-delivered.
"""

from __future__ import annotations

from tests.protocols.helpers import (build_group_stack, build_world,
                                     collector_of, membership_of)


def _views_of(channel):
    return [view.members for view in collector_of(channel).views]


class TestZombieLowestId:
    def test_zombie_cannot_absorb_live_group(self):
        """'a' (the lowest id) crashes, churns alone past the group's view
        numbering, recovers — and must NOT pull live members into its
        stale lineage."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed", "d": "fixed"})
        engine.run_until(1.0)
        network.crash_node("a")
        # Long enough for the survivors to exclude 'a' AND for zombie 'a'
        # to suspect everyone and churn to a high-id singleton view.
        engine.run_until(20.0)
        assert collector_of(channels["b"]).view.members == ("b", "c", "d")
        zombie = membership_of(channels["a"])
        assert zombie.view.members == ("a",), "zombie churned to singleton"
        assert zombie.view.view_id >= collector_of(channels["b"]).view.view_id
        network.recover_node("a")
        engine.run_until(60.0)
        # Convergence through the LIVE lineage: everyone ends together...
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == \
                ("a", "b", "c", "d"), node_id
        # ...and no live member was ever dragged through a zombie view: a
        # hijack shows up as an intermediate view that contains 'a' but
        # misses a live member.
        for node_id in ("b", "c", "d"):
            for members in _views_of(channels[node_id]):
                if "a" in members:
                    assert {"b", "c", "d"} <= set(members), (
                        f"{node_id} installed zombie-lineage view "
                        f"{members}")

    def test_zombie_cannot_advance_its_incarnation_alone(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        before = membership_of(channels["a"]).incarnation
        network.crash_node("a")
        engine.run_until(25.0)  # zombie churns several singleton flushes
        zombie = membership_of(channels["a"])
        assert zombie.flushes_completed > 1
        assert zombie.incarnation == before, (
            "a flush no other member acked must not advance the "
            "coordinatorship incarnation")
        # The survivors floored their history for 'a' on exclusion, so
        # nothing the zombie can stamp is 'newer'.
        assert membership_of(channels["b"])._coord_history["a"] >= before

    def test_member_joined_during_crash_is_not_stranded(self):
        """The fuzzer's original catch (seed 7, run 34): 'e' joins while
        the lowest id 'a' is dead; recovered 'a' must not reform the
        group from its stale knowledge and strand 'e'."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed", "d": "fixed"})
        engine.run_until(1.0)
        network.crash_node("a")
        engine.run_until(10.0)
        network.add_fixed_node("e")
        channels["e"] = build_group_stack(network, "e",
                                          ("a", "b", "c", "d", "e"),
                                          join=True)
        engine.run_until(20.0)
        assert collector_of(channels["e"]).view is not None
        assert "e" in collector_of(channels["b"]).view.members
        network.recover_node("a")
        engine.run_until(70.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).view.members == \
                ("a", "b", "c", "d", "e"), node_id

    def test_readmission_restarts_a_fresh_delivery_epoch(self):
        """Divergent lineages can re-use a view id; the stamped epoch
        must keep the readmitted member from re-delivering old traffic
        (the delivery-dup the fuzzer caught on seed 7, run 20)."""
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        collector_of(channels["a"]).send_text("before-crash")
        engine.run_until(2.0)
        network.crash_node("a")
        engine.run_until(15.0)
        network.recover_node("a")
        engine.run_until(45.0)
        for channel in channels.values():
            assert collector_of(channel).view.members == ("a", "b", "c")
        collector_of(channels["b"]).send_text("after-merge")
        engine.run_until(50.0)
        for node_id, channel in channels.items():
            payloads = collector_of(channel).payloads()
            assert payloads.count("after-merge") == 1, node_id
            assert payloads.count("before-crash") <= 1, node_id

    def test_incarnation_advances_with_acked_flushes(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        coordinator = membership_of(channels["a"])
        start = coordinator.incarnation
        network.crash_node("c")
        engine.run_until(10.0)  # exclusion flush, acked by 'b'
        assert coordinator.incarnation > start
        assert membership_of(channels["b"])._coord_history["a"] == \
            coordinator.incarnation


class TestInstallLog:
    def test_install_log_records_timeline(self):
        engine, network, channels = build_world(
            {"a": "fixed", "b": "fixed", "c": "fixed"})
        engine.run_until(1.0)
        network.crash_node("c")
        engine.run_until(10.0)
        log = membership_of(channels["a"]).install_log
        assert [entry[2] for entry in log] == \
            [("a", "b", "c"), ("a", "b")]
        assert log[0][0] <= log[1][0]
