"""Mecho: the adaptive multicast that powers Figure 3.

The key claims from the paper (§3.4, §4):

* in hybrid scenarios a mobile node transmits **one** message per group
  send (to the relay) instead of ``n-1``;
* the relay forwards to the remaining participants, so everyone still
  delivers everything — *"at the expense of an increase in the number of
  messages of the fixed node"*;
* with two nodes the adaptive and non-adaptive protocols coincide (*"all
  interactions are point-to-point"*).
"""

from __future__ import annotations

import pytest

from repro.protocols import MechoLayer
from repro.simnet import DATA
from tests.protocols.helpers import build_world, collector_of


def build_hybrid(num_mobile: int, seed: int = 5, **kwargs):
    """1 fixed + ``num_mobile`` mobile nodes, all running Mecho."""
    specs = {"fixed-0": "fixed"}
    for index in range(num_mobile):
        specs[f"mobile-{index}"] = "mobile"
    members_csv = ",".join(sorted(specs))

    def dissemination_for(node_id: str) -> MechoLayer:
        mode = "wired" if specs[node_id] == "fixed" else "wireless"
        return MechoLayer(mode=mode, relay="fixed-0", members=members_csv)

    # build_world builds one stack per node; we need per-node dissemination,
    # so replicate its logic through the dissemination_factory hook.
    return build_world(specs, seed=seed,
                       dissemination_factory=dissemination_for, **kwargs)


class TestRelaying:
    def test_everyone_delivers_despite_single_uplink_send(self):
        engine, network, channels = build_hybrid(num_mobile=3)
        engine.run_until(0.5)
        collector_of(channels["mobile-0"]).send_text("via-relay")
        engine.run_until(3.0)
        for node_id, channel in channels.items():
            assert collector_of(channel).payloads() == ["via-relay"], node_id

    def test_source_attribution_preserved_through_relay(self):
        engine, network, channels = build_hybrid(num_mobile=2)
        engine.run_until(0.5)
        collector_of(channels["mobile-1"]).send_text("attributed")
        engine.run_until(3.0)
        delivered = collector_of(channels["mobile-0"]).delivered
        assert delivered[0].source == "mobile-1"

    def test_mobile_sends_one_data_message_per_group_send(self):
        engine, network, channels = build_hybrid(num_mobile=3)
        engine.run_until(0.5)
        network.reset_stats()
        for index in range(10):
            collector_of(channels["mobile-0"]).send_text(index)
        engine.run_until(5.0)
        stats = network.stats_of("mobile-0")
        assert stats.sent_data == 10  # ONE transmission per send; n-1 would be 30

    def test_relay_bears_the_fanout_cost(self):
        engine, network, channels = build_hybrid(num_mobile=3)
        engine.run_until(0.5)
        network.reset_stats()
        for index in range(10):
            collector_of(channels["mobile-0"]).send_text(index)
        engine.run_until(5.0)
        # Relay forwards each message to the 2 other mobiles.
        assert network.stats_of("fixed-0").sent_data == 20

    def test_fixed_node_sends_fan_out_directly(self):
        engine, network, channels = build_hybrid(num_mobile=3)
        engine.run_until(0.5)
        network.reset_stats()
        collector_of(channels["fixed-0"]).send_text("from-fixed")
        engine.run_until(3.0)
        assert network.stats_of("fixed-0").sent_data == 3  # one per mobile
        for channel in channels.values():
            assert collector_of(channel).payloads() == ["from-fixed"]

    def test_two_nodes_equivalent_to_point_to_point(self):
        """Paper: with 2 nodes both versions send the same message count."""
        engine, network, channels = build_hybrid(num_mobile=1)
        engine.run_until(0.5)
        network.reset_stats()
        for index in range(10):
            collector_of(channels["mobile-0"]).send_text(index)
        engine.run_until(5.0)
        assert network.stats_of("mobile-0").sent_data == 10
        # The relay has nobody to forward to.
        assert network.stats_of("fixed-0").sent_data == 0


class TestMechoVersusBaseline:
    @pytest.mark.parametrize("num_mobile", [2, 4])
    def test_mobile_transmission_reduction_factor(self, num_mobile):
        sends = 20
        total_nodes = num_mobile + 1

        engine, network, channels = build_hybrid(num_mobile=num_mobile)
        engine.run_until(0.5)
        network.reset_stats()
        for index in range(sends):
            collector_of(channels["mobile-0"]).send_text(index)
        engine.run_until(5.0)
        mecho_count = network.stats_of("mobile-0").sent_data

        specs = {"fixed-0": "fixed"}
        for index in range(num_mobile):
            specs[f"mobile-{index}"] = "mobile"
        engine2, network2, channels2 = build_world(specs, seed=5)
        engine2.run_until(0.5)
        network2.reset_stats()
        for index in range(sends):
            collector_of(channels2["mobile-0"]).send_text(index)
        engine2.run_until(5.0)
        beb_count = network2.stats_of("mobile-0").sent_data

        assert mecho_count == sends
        assert beb_count == sends * (total_nodes - 1)

    def test_heartbeats_also_ride_the_relay(self):
        """Control traffic benefits too: one heartbeat transmission each."""
        engine, network, channels = build_hybrid(num_mobile=3,
                                                 heartbeat_interval=0.5)
        engine.run_until(0.5)
        network.reset_stats()
        engine.run_until(5.5)  # ~10 heartbeat periods, no data
        hb_sent = network.stats_of("mobile-0").sent_by_event[
            "HeartbeatMessage"]
        assert 8 <= hb_sent <= 12  # ~1 per period, not n-1 per period


class TestInvariants:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="invalid mecho mode"):
            MechoLayer(mode="satellite").create_session()

    def test_no_duplicate_deliveries(self):
        engine, network, channels = build_hybrid(num_mobile=2)
        engine.run_until(0.5)
        for index in range(15):
            collector_of(channels["mobile-0"]).send_text(index)
            collector_of(channels["fixed-0"]).send_text((0, index))
        engine.run_until(5.0)
        for node_id, channel in channels.items():
            payloads = collector_of(channel).payloads()
            assert len(payloads) == len(set(map(str, payloads))) == 30, node_id
