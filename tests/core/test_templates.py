"""Stack templates: Figure 2 configurations as data."""

from __future__ import annotations

import pytest

from repro.core import (control_template, fec_data_template,
                        mecho_data_template, patch_for_view,
                        plain_data_template)
from repro.kernel import parse_config, dump_config

MEMBERS = ("a", "b", "c")


class TestPlainTemplate:
    def test_layer_order_top_first(self):
        template = plain_data_template(MEMBERS)
        assert [spec.name for spec in template.specs] == [
            "chat_app", "view_sync", "membership", "heartbeat", "reliable",
            "beb", "sim_transport"]

    def test_session_labels(self):
        template = plain_data_template(MEMBERS)
        labels = {spec.name: spec.session_label for spec in template.specs}
        assert labels["chat_app"] == "app"
        assert labels["view_sync"] == "viewsync"
        assert labels["sim_transport"] == "transport"
        assert labels["membership"] is None

    def test_members_csv_sorted(self):
        template = plain_data_template(("c", "a", "b"))
        membership = next(s for s in template.specs
                          if s.name == "membership")
        assert membership.params["members"] == "a,b,c"

    def test_ordering_layers_optional(self):
        template = plain_data_template(MEMBERS, ordering=("causal", "total"))
        names = [spec.name for spec in template.specs]
        assert names.index("total") < names.index("causal")
        assert names.index("causal") < names.index("view_sync")

    def test_xml_round_trip(self):
        template = plain_data_template(MEMBERS, heartbeat_interval=2.5)
        from repro.kernel import ChannelTemplate
        assert ChannelTemplate.from_xml(template.to_xml()) == template


class TestMechoTemplate:
    def test_mecho_replaces_beb(self):
        template = mecho_data_template(MEMBERS, mode="wireless", relay="a")
        names = [spec.name for spec in template.specs]
        assert "mecho" in names and "beb" not in names

    def test_mode_and_relay_parameters(self):
        template = mecho_data_template(MEMBERS, mode="wired", relay="a")
        mecho = next(s for s in template.specs if s.name == "mecho")
        assert mecho.params["mode"] == "wired"
        assert mecho.params["relay"] == "a"


class TestFecTemplate:
    def test_fec_sits_between_reliable_and_beb(self):
        template = fec_data_template(MEMBERS, k=4, m=1)
        names = [spec.name for spec in template.specs]
        assert names.index("reliable") < names.index("fec") < \
            names.index("beb")

    def test_code_parameters(self):
        template = fec_data_template(MEMBERS, k=4, m=1)
        fec = next(s for s in template.specs if s.name == "fec")
        assert fec.params["k"] == 4 and fec.params["m"] == 1


class TestControlTemplate:
    def test_core_and_cocaditem_on_top(self):
        template = control_template(MEMBERS)
        assert [spec.name for spec in template.specs][:2] == [
            "core", "cocaditem"]

    def test_viewsync_not_labelled(self):
        """The control channel must not share the data channel's viewsync."""
        template = control_template(MEMBERS)
        viewsync = next(s for s in template.specs if s.name == "view_sync")
        assert viewsync.session_label is None

    def test_intervals_forwarded(self):
        template = control_template(MEMBERS, publish_interval=3.0,
                                    evaluate_interval=4.0)
        core = next(s for s in template.specs if s.name == "core")
        cocaditem = next(s for s in template.specs if s.name == "cocaditem")
        assert core.params["evaluate_interval"] == 4.0
        assert cocaditem.params["publish_interval"] == 3.0


class TestPatchForView:
    def test_membership_continues_view_numbering(self):
        template = plain_data_template(MEMBERS)
        patched = patch_for_view(template, ("a", "b"), view_id=5)
        membership = next(s for s in patched.specs
                          if s.name == "membership")
        assert membership.params["view_id"] == 5
        assert membership.params["members"] == "a,b"

    def test_all_group_layers_repatched(self):
        template = mecho_data_template(MEMBERS, mode="wired", relay="a")
        patched = patch_for_view(template, ("a", "b"), view_id=2)
        for spec in patched.specs:
            if "members" in spec.params:
                assert spec.params["members"] == "a,b", spec.name

    def test_non_group_parameters_preserved(self):
        template = mecho_data_template(MEMBERS, mode="wireless", relay="a",
                                       heartbeat_interval=1.5)
        patched = patch_for_view(template, ("a", "b"), view_id=2)
        mecho = next(s for s in patched.specs if s.name == "mecho")
        heartbeat = next(s for s in patched.specs if s.name == "heartbeat")
        assert mecho.params["mode"] == "wireless"
        assert mecho.params["relay"] == "a"
        assert heartbeat.params["interval"] == 1.5

    def test_original_template_untouched(self):
        template = plain_data_template(MEMBERS)
        patch_for_view(template, ("a",), view_id=9)
        membership = next(s for s in template.specs
                          if s.name == "membership")
        assert membership.params["view_id"] == 0


class TestConfigDocuments:
    def test_templates_compose_into_a_document(self):
        templates = {
            "plain": plain_data_template(MEMBERS, name="plain"),
            "ctrl": control_template(MEMBERS, name="ctrl"),
        }
        document = dump_config(templates)
        assert parse_config(document) == templates
