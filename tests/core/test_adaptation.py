"""End-to-end Morpheus adaptation: the paper's §4 scenario in miniature.

Hybrid group starts on the plain stack; Cocaditem disseminates device
types; Core's coordinator detects the hybrid scenario and reconfigures the
data channels to Mecho — transparently to the chat application.
"""

from __future__ import annotations

import pytest

from repro.core import build_morpheus_group, build_plain_group
from repro.simnet import Network, SimEngine

FAST = dict(publish_interval=1.0, evaluate_interval=1.0,
            heartbeat_interval=2.0)


def hybrid_network(num_mobile: int = 2, seed: int = 9):
    engine = SimEngine()
    network = Network(engine, seed=seed)
    network.add_fixed_node("fixed-0")
    for index in range(num_mobile):
        network.add_mobile_node(f"mobile-{index}")
    return engine, network


class TestAutomaticAdaptation:
    def test_reconfigures_to_mecho_in_hybrid_scenario(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(20.0)
        for node_id, morpheus in nodes.items():
            assert morpheus.deployed_configuration() == "data"  # template name
            stack = morpheus.current_stack()
            assert "mecho" in stack, (node_id, stack)
            assert "beb" not in stack

    def test_mecho_modes_match_device_kinds(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(20.0)
        fixed_mecho = nodes["fixed-0"].local_module.data_channel \
            .session_named("mecho")
        mobile_mecho = nodes["mobile-0"].local_module.data_channel \
            .session_named("mecho")
        assert fixed_mecho.mode == "wired"
        assert mobile_mecho.mode == "wireless"
        assert mobile_mecho.relay == "fixed-0"

    def test_coordinator_reports_deployment_complete(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        deployed = []
        nodes["fixed-0"].core.on_reconfigured = deployed.append
        engine.run_until(20.0)
        assert deployed == ["hybrid:relay=fixed-0"]
        assert nodes["fixed-0"].core.reconfigurations_completed == 1

    def test_homogeneous_group_stays_plain(self):
        engine = SimEngine()
        network = Network(engine, seed=9)
        for index in range(3):
            network.add_fixed_node(f"fixed-{index}")
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(20.0)
        for morpheus in nodes.values():
            assert "beb" in morpheus.current_stack()
            assert morpheus.core.reconfigurations_completed == 0

    def test_no_spurious_repeat_reconfiguration(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(40.0)
        for morpheus in nodes.values():
            # Initial deploy + exactly one adaptation.
            assert morpheus.local_module.deploy_count == 2


class TestRelayFailure:
    def test_relay_crash_heals_and_reverts_to_plain(self):
        """Adapt → relay dies → FD fallback → exclusion → re-adapt to plain.

        Regression test for two real bugs: (a) a dead relay silencing the
        very flush that would remove it (fixed by suspect-triggered direct
        fan-out in Mecho) and (b) a successor Core coordinator reusing
        config ids its members had already applied.
        """
        engine, network = hybrid_network(num_mobile=3)
        nodes = build_morpheus_group(network, **dict(FAST, heartbeat_interval=1.0))
        engine.run_until(15.0)  # adapted to Mecho
        assert "mecho" in nodes["mobile-0"].current_stack()
        network.crash_node("fixed-0")
        for index in range(8):
            engine.call_at(16.0 + index,
                           lambda i=index: nodes["mobile-1"].send(f"pc-{i}"))
        engine.run_until(70.0)
        survivors = [nodes[f"mobile-{i}"] for i in range(3)]
        for morpheus in survivors:
            assert "beb" in morpheus.current_stack(), morpheus.node_id
            texts = [t for t in morpheus.chat.texts() if t.startswith("pc-")]
            assert texts == [f"pc-{i}" for i in range(8)], morpheus.node_id
            membership = morpheus.local_module.data_channel \
                .session_named("membership")
            assert membership.view.members == (
                "mobile-0", "mobile-1", "mobile-2")

    def test_mecho_falls_back_when_relay_suspected(self):
        engine, network = hybrid_network(num_mobile=2)
        nodes = build_morpheus_group(network, **dict(FAST, heartbeat_interval=0.5))
        engine.run_until(15.0)
        network.crash_node("fixed-0")
        engine.run_until(20.0)  # suspicion propagates
        mecho = nodes["mobile-0"].local_module.data_channel \
            .session_named("mecho")
        if mecho is not None:  # may already have re-adapted to plain
            assert "fixed-0" in mecho.suspected or mecho is None


class TestTransparencyToApplication:
    def test_messages_sent_before_during_after_all_delivered(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        sender = nodes["mobile-0"]
        expected = []
        # Before the adaptation (plain stack).
        engine.run_until(0.5)
        for index in range(5):
            sender.send(f"before-{index}")
            expected.append(f"before-{index}")
        # Ride through the adaptation window.
        for step in range(30):
            engine.run_until(0.5 + (step + 1) * 0.5)
            sender.send(f"during-{step}")
            expected.append(f"during-{step}")
        engine.run_until(30.0)
        for index in range(5):
            sender.send(f"after-{index}")
            expected.append(f"after-{index}")
        engine.run_until(40.0)
        for node_id, morpheus in nodes.items():
            assert morpheus.chat.texts() == expected, node_id

    def test_chat_sender_attribution_survives_relay(self):
        engine, network = hybrid_network()
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(20.0)  # adapted to Mecho
        nodes["mobile-1"].send("hello-via-relay")
        engine.run_until(25.0)
        delivery = nodes["mobile-0"].chat.history[-1]
        assert delivery.text == "hello-via-relay"
        assert delivery.source == "mobile-1"


class TestAdaptationPayoff:
    def test_mobile_sends_collapse_after_adaptation(self):
        """The Figure 3 effect, in miniature."""
        num_mobile, sends = 3, 20

        engine, network = hybrid_network(num_mobile=num_mobile)
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(20.0)  # adapted
        network.reset_stats()
        for index in range(sends):
            nodes["mobile-0"].send(f"m-{index}")
        engine.run_until(25.0)
        adaptive_data = network.stats_of("mobile-0").sent_data

        engine2 = SimEngine()
        network2 = Network(engine2, seed=9)
        network2.add_fixed_node("fixed-0")
        for index in range(num_mobile):
            network2.add_mobile_node(f"mobile-{index}")
        baseline = build_plain_group(network2)
        engine2.run_until(1.0)
        network2.reset_stats()
        for index in range(sends):
            baseline["mobile-0"].send(f"m-{index}")
        engine2.run_until(6.0)
        baseline_data = network2.stats_of("mobile-0").sent_data

        assert adaptive_data == sends
        assert baseline_data == sends * num_mobile  # n-1 unicasts each
