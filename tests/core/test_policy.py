"""Reconfiguration policies: context in, plans out."""

from __future__ import annotations

import pytest

from repro.context import (BATTERY, DEVICE_TYPE, LINK_QUALITY, ContextSample,
                           TopicBus)
from repro.core import (CompositePolicy, ContextDirectory, HybridMechoPolicy,
                        LossAdaptivePolicy, ReconfigurationPlan, StaticPolicy,
                        ThresholdBatteryRotationPolicy, best_battery_relay,
                        lowest_id_relay)


def directory_with(samples: dict[tuple[str, str], object]) -> ContextDirectory:
    bus = TopicBus()
    directory = ContextDirectory(bus)
    for (node_id, attribute), value in samples.items():
        bus.publish(f"context.{attribute}",
                    ContextSample(node_id, attribute, value, 0.0))
    return directory


def hybrid_directory():
    return directory_with({
        ("f0", DEVICE_TYPE): "fixed",
        ("f1", DEVICE_TYPE): "fixed",
        ("m0", DEVICE_TYPE): "mobile",
        ("f0", BATTERY): 1.0,
        ("f1", BATTERY): 0.7,
        ("m0", BATTERY): 0.5,
    })


class TestHybridMechoPolicy:
    def test_undecidable_without_full_coverage(self):
        directory = directory_with({("a", DEVICE_TYPE): "fixed"})
        policy = HybridMechoPolicy()
        assert policy.decide(directory, ["a", "b"]) is None

    def test_hybrid_produces_mecho_plan(self):
        policy = HybridMechoPolicy()
        plan = policy.decide(hybrid_directory(), ["f0", "f1", "m0"])
        assert plan.name == "hybrid:relay=f0"
        modes = {node: next(s for s in plan.templates[node].specs
                            if s.name == "mecho").params["mode"]
                 for node in ("f0", "f1", "m0")}
        assert modes == {"f0": "wired", "f1": "wired", "m0": "wireless"}

    def test_homogeneous_produces_plain_plan(self):
        directory = directory_with({
            ("a", DEVICE_TYPE): "fixed", ("b", DEVICE_TYPE): "fixed"})
        plan = HybridMechoPolicy().decide(directory, ["a", "b"])
        assert plan.name == "plain"
        assert all("beb" in [s.name for s in template.specs]
                   for template in plan.templates.values())

    def test_battery_aware_relay_selection(self):
        policy = HybridMechoPolicy(relay_selector=best_battery_relay)
        plan = policy.decide(hybrid_directory(), ["f0", "f1", "m0"])
        assert plan.name == "hybrid:relay=f0"  # f0 has the fullest battery

    def test_relay_selection_deterministic_tie_break(self):
        directory = directory_with({
            ("x", DEVICE_TYPE): "fixed", ("y", DEVICE_TYPE): "fixed",
            ("m", DEVICE_TYPE): "mobile",
            ("x", BATTERY): 0.8, ("y", BATTERY): 0.8,
        })
        assert best_battery_relay(directory, ["y", "x"]) == "x"
        assert lowest_id_relay(directory, ["y", "x"]) == "x"


class TestRotationPolicy:
    def test_relay_moves_to_fullest_battery(self):
        directory = directory_with({
            ("a", BATTERY): 0.2, ("b", BATTERY): 0.9, ("c", BATTERY): 0.5})
        policy = ThresholdBatteryRotationPolicy(hysteresis=0.05)
        plan = policy.decide(directory, ["a", "b", "c"])
        assert plan.name == "rotating:relay=b"

    def test_hysteresis_prevents_thrash(self):
        policy = ThresholdBatteryRotationPolicy(hysteresis=0.2)
        first = policy.decide(directory_with({
            ("a", BATTERY): 0.9, ("b", BATTERY): 0.8}), ["a", "b"])
        assert first.name == "rotating:relay=a"
        # b is now marginally better; within hysteresis → stay on a.
        second = policy.decide(directory_with({
            ("a", BATTERY): 0.7, ("b", BATTERY): 0.8}), ["a", "b"])
        assert second.name == "rotating:relay=a"
        # b is decisively better → rotate.
        third = policy.decide(directory_with({
            ("a", BATTERY): 0.3, ("b", BATTERY): 0.8}), ["a", "b"])
        assert third.name == "rotating:relay=b"

    def test_waits_for_battery_coverage(self):
        directory = directory_with({("a", BATTERY): 0.5})
        policy = ThresholdBatteryRotationPolicy()
        assert policy.decide(directory, ["a", "b"]) is None


class TestLossAdaptivePolicy:
    def test_low_loss_prescribes_arq(self):
        directory = directory_with({
            ("a", LINK_QUALITY): 0.01, ("b", LINK_QUALITY): 0.0})
        plan = LossAdaptivePolicy(threshold=0.08).decide(directory, ["a", "b"])
        assert plan.name == "plain"

    def test_high_loss_prescribes_fec(self):
        directory = directory_with({
            ("a", LINK_QUALITY): 0.2, ("b", LINK_QUALITY): 0.0})
        plan = LossAdaptivePolicy(threshold=0.08, k=4, m=2) \
            .decide(directory, ["a", "b"])
        assert plan.name == "fec(k=4,m=2)"
        for template in plan.templates.values():
            assert "fec" in [s.name for s in template.specs]

    def test_hysteresis_band(self):
        policy = LossAdaptivePolicy(threshold=0.10, hysteresis=0.03)
        in_band = directory_with({("a", LINK_QUALITY): 0.11})
        # From ARQ: entering needs >= 0.13 → stays plain at 0.11.
        assert policy.decide(in_band, ["a"]).name == "plain"
        high = directory_with({("a", LINK_QUALITY): 0.2})
        assert "fec" in policy.decide(high, ["a"]).name
        # From FEC: leaving needs < 0.07 → stays FEC at 0.11.
        assert "fec" in policy.decide(in_band, ["a"]).name


class TestComposition:
    def test_composite_first_match_wins(self):
        static = StaticPolicy(ReconfigurationPlan(name="forced"))
        composite = CompositePolicy(HybridMechoPolicy(), static)
        empty = directory_with({})
        # Hybrid policy abstains (no coverage) → falls through to static.
        assert composite.decide(empty, ["a"]).name == "forced"

    def test_composite_returns_none_when_all_abstain(self):
        composite = CompositePolicy(HybridMechoPolicy(),
                                    ThresholdBatteryRotationPolicy())
        assert composite.decide(directory_with({}), ["a"]) is None

    def test_static_policy_always_prescribes(self):
        plan = ReconfigurationPlan(name="pinned")
        assert StaticPolicy(plan).decide(directory_with({}), []) is plan
