"""Core coordination under adverse conditions (loss, repeated change)."""

from __future__ import annotations

import pytest

from repro.core import build_morpheus_group
from repro.simnet import Network, SimEngine

FAST = dict(publish_interval=1.0, evaluate_interval=1.0,
            heartbeat_interval=2.0)


class TestAdaptationUnderLoss:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_reconfiguration_completes_despite_wireless_loss(self, seed):
        """Every Core message can be lost; retries must converge anyway."""
        import random
        from repro.simnet import BernoulliLoss, LinkParams
        engine = SimEngine()
        wireless = LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                              loss=BernoulliLoss(0.15, random.Random(seed)))
        network = Network(engine, seed=seed, wireless=wireless)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0")
        network.add_mobile_node("mobile-1")
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(60.0)
        for node_id, morpheus in nodes.items():
            assert "mecho" in morpheus.current_stack(), node_id
        # And the adapted group still delivers chat reliably.
        nodes["mobile-0"].send("through-loss")
        engine.run_until(90.0)
        for morpheus in nodes.values():
            assert "through-loss" in morpheus.chat.texts()


class TestRepeatedAdaptation:
    def test_many_swaps_never_lose_messages(self):
        """Alternate the context repeatedly; the app never notices."""
        import random
        from repro.simnet import BernoulliLoss, LinkParams
        engine = SimEngine()
        loss = BernoulliLoss(0.0, random.Random(2))
        network = Network(engine, seed=2, wireless=LinkParams(
            latency_s=0.002, bandwidth_bps=11e6, loss=loss))
        network.add_mobile_node("mobile-0")
        for index in range(2):
            network.add_fixed_node(f"fixed-{index}")
        from repro.core import LossAdaptivePolicy
        policy = LossAdaptivePolicy(threshold=0.08)
        nodes = build_morpheus_group(network, policy=policy, **FAST)
        sender = nodes["mobile-0"]
        expected = []
        # Flip the link quality several times while chatting.
        for flip in range(4):
            engine.call_at(10.0 + flip * 20.0,
                           lambda f=flip: setattr(
                               loss, "probability", 0.2 if f % 2 == 0 else 0.0))
        for index in range(150):
            engine.call_at(1.0 + index * 0.5,
                           lambda i=index: sender.send(f"flip-{i}"))
            expected.append(f"flip-{index}")
        engine.run_until(150.0)
        for node_id, morpheus in nodes.items():
            assert morpheus.chat.texts() == expected, node_id
        # At least two swaps happened (plain -> fec -> plain ...).
        coordinator = nodes["fixed-0"]
        assert coordinator.core.reconfigurations_completed >= 2

    def test_deploy_count_matches_completed_reconfigs(self):
        engine = SimEngine()
        network = Network(engine, seed=3)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0")
        nodes = build_morpheus_group(network, **FAST)
        engine.run_until(30.0)
        for morpheus in nodes.values():
            # initial + one hybrid adaptation
            assert morpheus.local_module.deploy_count == \
                1 + morpheus.core.reconfigurations_completed \
                or morpheus.local_module.deploy_count == 2


class TestFacade:
    def test_morpheus_node_surface(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0")
        nodes = build_morpheus_group(network, **FAST)
        morpheus = nodes["mobile-0"]
        assert morpheus.node_id == "mobile-0"
        assert morpheus.stats is network.stats_of("mobile-0")
        assert morpheus.current_stack()[0] == "sim_transport"
        assert morpheus.deployed_configuration() == "data"
        assert morpheus.control_channel.name == "ctrl"

    def test_shared_transport_session_across_channels(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_fixed_node("fixed-1")
        nodes = build_morpheus_group(network, **FAST)
        morpheus = nodes["fixed-0"]
        data_transport = morpheus.local_module.data_channel.sessions[0]
        ctrl_transport = morpheus.control_channel.sessions[0]
        assert data_transport is ctrl_transport

    def test_app_session_survives_adaptation(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0")
        nodes = build_morpheus_group(network, **FAST)
        chat_before = nodes["mobile-0"].chat
        engine.run_until(20.0)  # adaptation happened
        assert "mecho" in nodes["mobile-0"].current_stack()
        assert nodes["mobile-0"].chat is chat_before
        assert nodes["mobile-0"].local_module.data_channel.sessions[-1] \
            is chat_before
