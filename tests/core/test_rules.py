"""The declarative policy engine: registry, config loading, governance."""

from __future__ import annotations

import pytest

from repro.context import (BATTERY, DEVICE_TYPE, LINK_QUALITY, ContextSample,
                           TopicBus)
from repro.core.rules import (DEFAULT_RULE_SPECS, AdaptationGovernor,
                              ContextDirectory, GovernorConfig,
                              LossAdaptiveRule, PolicyEngine,
                              ReconfigurationPlan, RuleContext,
                              build_rule, compose_with_defaults,
                              engine_from_spec, governor_from_params,
                              load_policy, register_rule, resolve_rule,
                              rule_names)
from repro.core.rules.base import _RULE_REGISTRY
from repro.kernel.errors import ConfigurationError
from repro.kernel.xml_config import (PolicySpec, RuleSpec, dump_config,
                                     parse_config, parse_policy_config)


def directory_with(samples: dict[tuple[str, str], object]) -> ContextDirectory:
    bus = TopicBus()
    directory = ContextDirectory(bus)
    for (node_id, attribute), value in samples.items():
        bus.publish(f"context.{attribute}",
                    ContextSample(node_id, attribute, value, 0.0))
    return directory


def loss_directory(worst: float) -> ContextDirectory:
    return directory_with({("a", LINK_QUALITY): worst,
                           ("b", LINK_QUALITY): 0.0})


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"hybrid_mecho", "battery_rotation", "loss_adaptive",
                "plain"} <= set(rule_names())

    def test_resolve_known_rule(self):
        assert resolve_rule("loss_adaptive") is LossAdaptiveRule

    def test_unknown_rule_names_the_inventory(self):
        with pytest.raises(ConfigurationError, match="hybrid_mecho"):
            resolve_rule("no_such_rule")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            @register_rule
            class Clash:  # noqa: F811 - intentionally clashing
                rule_name = "loss_adaptive"
        assert resolve_rule("loss_adaptive") is LossAdaptiveRule

    def test_registration_requires_a_name(self):
        with pytest.raises(ConfigurationError, match="rule_name"):
            register_rule(type("Anonymous", (), {}))

    def test_build_rule_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="rejected parameters"):
            build_rule("loss_adaptive", {"no_such_param": 1})


class TestXmlConfig:
    DOC = """
    <morpheus>
      <policy name="adaptive">
        <governor budget="4" flap_limit="3" window="30.0" cooldown="60.0"/>
        <rule name="loss_adaptive" threshold="0.08" hysteresis="0.02"/>
        <rule name="hybrid_mecho"/>
      </policy>
    </morpheus>
    """

    def test_parse_policy_config(self):
        policies = parse_policy_config(self.DOC)
        spec = policies["adaptive"]
        assert [rule.name for rule in spec.rules] == \
            ["loss_adaptive", "hybrid_mecho"]
        assert spec.rules[0].params == {"threshold": 0.08, "hysteresis": 0.02}
        assert spec.governor == {"budget": 4, "flap_limit": 3,
                                 "window": 30.0, "cooldown": 60.0}

    def test_round_trip_through_dump_config(self):
        original = parse_policy_config(self.DOC)
        document = dump_config({}, policies=original)
        assert parse_policy_config(document) == original
        # Policy elements are legal siblings of templates.
        assert parse_config(document) == {}

    def test_policy_spec_fragment_round_trip(self):
        spec = PolicySpec("p", (RuleSpec("plain"),), {"budget": 2})
        assert PolicySpec.from_xml(spec.to_xml()) == spec

    def test_unknown_rule_rejected_at_load_time(self):
        doc = ('<morpheus><policy name="p">'
               '<rule name="no_such_rule"/></policy></morpheus>')
        with pytest.raises(ConfigurationError, match="unknown rule"):
            load_policy(doc, "p")

    def test_missing_policy_name_rejected(self):
        with pytest.raises(ConfigurationError, match="defines no policy"):
            load_policy(self.DOC, "absent")

    def test_unknown_governor_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown governor"):
            governor_from_params({"budge": 1})

    def test_loaded_engine_decides(self):
        engine = load_policy(self.DOC, "adaptive")
        plan = engine.decide(loss_directory(0.2), ["a", "b"], now=0.0)
        assert plan.name == "fec(k=8,m=2)"


class TestHysteresisEdges:
    def test_enter_edge_is_inclusive(self):
        rule = build_rule("loss_adaptive",
                          {"threshold": 0.10, "hysteresis": 0.03})
        engine = PolicyEngine((rule,))
        # From ARQ the enter threshold is threshold + hysteresis = 0.13:
        # exactly on it switches to FEC, just below stays plain.
        assert engine.decide(loss_directory(0.1299), ["a", "b"],
                             now=0.0).name == "plain"
        assert "fec" in engine.decide(loss_directory(0.13), ["a", "b"],
                                      now=1.0).name

    def test_leave_edge_is_exclusive(self):
        rule = build_rule("loss_adaptive",
                          {"threshold": 0.10, "hysteresis": 0.03})
        engine = PolicyEngine((rule,))
        assert "fec" in engine.decide(loss_directory(0.2), ["a", "b"],
                                      now=0.0).name
        # From FEC the leave threshold is threshold - hysteresis = 0.07:
        # exactly on it stays FEC, just below drops back to ARQ.
        assert "fec" in engine.decide(loss_directory(0.07), ["a", "b"],
                                      now=1.0).name
        assert engine.decide(loss_directory(0.0699), ["a", "b"],
                             now=2.0).name == "plain"

    def test_state_is_per_group(self):
        rule = build_rule("loss_adaptive",
                          {"threshold": 0.10, "hysteresis": 0.03})
        engine = PolicyEngine((rule,))
        assert "fec" in engine.decide(loss_directory(0.2), ["a", "b"],
                                      now=0.0, group="g1").name
        # Same engine instance, other group: no FEC memory leaks over —
        # 0.11 is inside the band, so a fresh group stays plain.
        assert engine.decide(loss_directory(0.11), ["a", "b"],
                             now=0.0, group="g2").name == "plain"
        # g1 still remembers FEC at the very same reading.
        assert "fec" in engine.decide(loss_directory(0.11), ["a", "b"],
                                      now=1.0, group="g1").name


class _TogglePlan:
    """Test rule: prescribes the plan name it is told to."""

    rule_name = "_test_toggle"

    def __init__(self, holder: dict) -> None:
        self.holder = holder

    def evaluate(self, ctx: RuleContext):
        return ReconfigurationPlan(name=self.holder["name"])


class TestGovernor:
    def make_engine(self, holder, **config):
        governor = AdaptationGovernor(GovernorConfig(**config))
        return PolicyEngine((_TogglePlan(holder),), governor=governor)

    def test_budget_exhaustion_freezes_changes(self):
        holder = {"name": "p0"}
        engine = self.make_engine(holder, budget=2, window=100.0,
                                  cooldown=50.0)
        empty = directory_with({})
        assert engine.decide(empty, [], now=0.0).name == "p0"
        holder["name"] = "p1"
        assert engine.decide(empty, [], now=1.0).name == "p1"
        holder["name"] = "p2"  # third change in the window: over budget
        assert engine.decide(empty, [], now=2.0) is None
        assert engine.governor.rejected == 1
        # The unchanged current plan is always admissible.
        holder["name"] = "p1"
        assert engine.decide(empty, [], now=3.0).name == "p1"

    def test_budget_cooldown_expiry_readmits(self):
        holder = {"name": "p0"}
        engine = self.make_engine(holder, budget=1, window=10.0,
                                  cooldown=20.0)
        empty = directory_with({})
        assert engine.decide(empty, [], now=0.0).name == "p0"
        holder["name"] = "p1"
        assert engine.decide(empty, [], now=1.0) is None  # frozen until 21
        assert engine.decide(empty, [], now=20.9) is None
        assert engine.decide(empty, [], now=21.1).name == "p1"

    def test_flap_damping_freezes_oscillation(self):
        holder = {"name": "p0"}
        engine = self.make_engine(holder, flap_limit=2, window=100.0,
                                  cooldown=50.0)
        empty = directory_with({})
        names = []
        for tick, name in enumerate(("p0", "p1", "p0", "p1", "p1")):
            holder["name"] = name
            plan = engine.decide(empty, [], now=float(tick))
            names.append(plan.name if plan else None)
        # Two flips tolerated, the third freezes the decision.
        assert names == ["p0", "p1", "p0", None, None]

    def test_governor_state_is_per_group(self):
        holder = {"name": "p0"}
        engine = self.make_engine(holder, budget=1, window=100.0,
                                  cooldown=100.0)
        empty = directory_with({})
        assert engine.decide(empty, [], now=0.0, group="g1").name == "p0"
        holder["name"] = "p1"
        assert engine.decide(empty, [], now=1.0, group="g1") is None
        # A different group has its own untouched budget.
        assert engine.decide(empty, [], now=1.0, group="g2").name == "p1"


class TestComposition:
    def test_user_rules_precede_defaults(self):
        engine = compose_with_defaults(
            [RuleSpec("loss_adaptive", {"threshold": 0.05})])
        assert [type(rule).rule_name for rule in engine.rules] == \
            ["loss_adaptive", "hybrid_mecho"]

    def test_defaults_are_the_paper_policy(self):
        assert [spec.name for spec in DEFAULT_RULE_SPECS] == ["hybrid_mecho"]
        engine = compose_with_defaults([])
        directory = directory_with({
            ("f", DEVICE_TYPE): "fixed", ("m", DEVICE_TYPE): "mobile",
            ("f", BATTERY): 1.0, ("m", BATTERY): 0.5})
        plan = engine.decide(directory, ["f", "m"], now=0.0)
        assert plan.name == "hybrid:relay=f"

    def test_ready_rule_objects_mix_with_specs(self):
        holder = {"name": "forced"}
        engine = compose_with_defaults([_TogglePlan(holder)])
        assert engine.decide(directory_with({}), [], now=0.0).name == "forced"

    def test_engine_from_spec_resolves_eagerly(self):
        spec = PolicySpec("p", (RuleSpec("typo_rule"),), {})
        with pytest.raises(ConfigurationError, match="unknown rule"):
            engine_from_spec(spec)


@pytest.fixture(autouse=True)
def _registry_guard():
    """No test may leave a stray registration behind."""
    before = dict(_RULE_REGISTRY)
    yield
    _RULE_REGISTRY.clear()
    _RULE_REGISTRY.update(before)
