"""Core local modules: deployment mechanics and race handling."""

from __future__ import annotations

import pytest

from repro.core import LocalModule, plain_data_template, mecho_data_template
from repro.core.templates import TRANSPORT_LABEL
from repro.simnet import (Network, SimEngine, SimTransportLayer,
                          SimTransportSession)

MEMBERS = ("n0", "n1")


def build_module(network, node_id):
    node = network.node(node_id)
    transport_layer = SimTransportLayer()
    transport_session = SimTransportSession(transport_layer, node=node)
    bindings = {TRANSPORT_LABEL: transport_session}
    return LocalModule(node, "data", bindings)


@pytest.fixture
def world():
    engine = SimEngine()
    network = Network(engine, seed=2)
    for node_id in MEMBERS:
        network.add_fixed_node(node_id)
    modules = {node_id: build_module(network, node_id)
               for node_id in MEMBERS}
    for module in modules.values():
        module.deploy_initial(plain_data_template(MEMBERS))
    return engine, network, modules


class TestInitialDeploy:
    def test_channel_started_and_tracked(self, world):
        engine, network, modules = world
        for module in modules.values():
            assert module.data_channel is not None
            assert module.data_channel.state.value == "started"
            assert module.deploy_count == 1

    def test_app_session_captured_in_bindings(self, world):
        engine, network, modules = world
        assert "app" in modules["n0"].bindings
        assert "viewsync" in modules["n0"].bindings


class TestReconfiguration:
    def test_apply_swaps_stack_preserving_app(self, world):
        engine, network, modules = world
        engine.run_until(0.5)
        app_before = modules["n0"].bindings["app"]
        done = []
        template = mecho_data_template(MEMBERS, mode="wired", relay="n0")
        for module in modules.values():
            module.apply(1, template, done.append)
        engine.run_until(10.0)
        assert done == [1, 1]
        for module in modules.values():
            assert "mecho" in module.data_channel.layer_names()
            assert module.deploy_count == 2
        assert modules["n0"].bindings["app"] is app_before
        assert modules["n0"].data_channel.sessions[-1] is app_before

    def test_new_generation_boots_fresh_on_config_port(self, world):
        engine, network, modules = world
        engine.run_until(0.5)
        template = mecho_data_template(MEMBERS, mode="wired", relay="n0")
        for module in modules.values():
            module.apply(1, template, lambda cid: None)
        engine.run_until(10.0)
        channel = modules["n0"].data_channel
        assert channel.name == "data#c1"  # generation = agreed config id
        membership = channel.session_named("membership")
        # A generation is a fresh group formed from the template's
        # (globally known) membership; numbering restarts within it.
        assert membership.view.view_id == 0
        assert membership.view.members == MEMBERS

    def test_busy_module_queues_next_config(self, world):
        engine, network, modules = world
        engine.run_until(0.5)
        done = []
        mecho = mecho_data_template(MEMBERS, mode="wired", relay="n0")
        plain = plain_data_template(MEMBERS)
        for module in modules.values():
            module.apply(1, mecho, done.append)
            module.apply(2, plain, done.append)  # queued behind config 1
        engine.run_until(20.0)
        assert sorted(done) == [1, 1, 2, 2]
        for module in modules.values():
            assert "beb" in module.data_channel.layer_names()
            assert module.deploy_count == 3

    def test_mismatched_label_gets_fresh_session(self, world):
        """A label whose layer class changed must not reuse the session."""
        engine, network, modules = world
        engine.run_until(0.5)
        module = modules["n0"]
        # Sabotage: bind the 'viewsync' label to the transport session.
        saboteur = module.bindings[TRANSPORT_LABEL]
        module.bindings["viewsync"] = saboteur
        template = mecho_data_template(MEMBERS, mode="wired", relay="n0")
        for member_module in modules.values():
            member_module.apply(1, template, lambda cid: None)
        engine.run_until(10.0)
        viewsync = module.data_channel.session_named("view_sync")
        assert viewsync is not saboteur


class TestQuiescenceRaces:
    def test_quiescence_before_config_arrival(self, world):
        """The flush may finish before this node receives the config."""
        engine, network, modules = world
        engine.run_until(0.5)
        # n1's membership reaches quiescence because n0 (coordinator)
        # triggered a hold-flush...
        template = mecho_data_template(MEMBERS, mode="wired", relay="n0")
        modules["n0"].apply(1, template, lambda cid: None)
        engine.run_until(5.0)
        # ...while n1 has no config yet: its data channel is held.
        membership = modules["n1"].data_channel.session_named("membership")
        assert membership.phase.value == "held"
        assert modules["n1"]._held_view is not None
        # The config arrives late; the swap must happen immediately.
        done = []
        modules["n1"].apply(1, template, done.append)
        engine.run_until(10.0)
        assert done == [1]
        assert "mecho" in modules["n1"].data_channel.layer_names()
