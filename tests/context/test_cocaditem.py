"""Cocaditem: retrievers, snapshots and distributed dissemination."""

from __future__ import annotations

import pytest

from repro.context import (BATTERY, DEVICE_TYPE, LINK_QUALITY,
                           BatteryRetriever, CallableRetriever,
                           ContextSnapshot, DeviceTypeRetriever,
                           LinkQualityRetriever, MemoryRetriever, TopicBus,
                           default_retrievers, topic_for)
from repro.core import ContextDirectory, build_morpheus_group
from repro.simnet import Battery, Network, SimEngine


@pytest.fixture
def hybrid():
    engine = SimEngine()
    network = Network(engine, seed=4)
    network.add_fixed_node("fixed-0")
    network.add_mobile_node("mobile-0",
                            battery=Battery(capacity_mj=1000.0))
    return engine, network


class TestRetrievers:
    def test_device_type(self, hybrid):
        engine, network = hybrid
        retriever = DeviceTypeRetriever()
        assert retriever.sample(network.node("fixed-0")) == "fixed"
        assert retriever.sample(network.node("mobile-0")) == "mobile"

    def test_battery_fraction(self, hybrid):
        engine, network = hybrid
        retriever = BatteryRetriever()
        assert retriever.sample(network.node("fixed-0")) == 1.0
        mobile = network.node("mobile-0")
        assert retriever.sample(mobile) == 1.0
        mobile.battery.consume_tx(100_000, 0.0)  # drain a chunk
        assert retriever.sample(mobile) < 1.0

    def test_link_quality_reflects_loss_model(self, hybrid):
        import random
        from repro.simnet import BernoulliLoss
        engine, network = hybrid
        network.wireless.loss = BernoulliLoss(0.12, random.Random(0))
        retriever = LinkQualityRetriever()
        assert retriever.sample(network.node("mobile-0")) == 0.12
        assert retriever.sample(network.node("fixed-0")) == 0.0

    def test_memory_differs_by_kind(self, hybrid):
        engine, network = hybrid
        retriever = MemoryRetriever(fixed_mib=512, mobile_mib=64)
        assert retriever.sample(network.node("fixed-0")) == 512
        assert retriever.sample(network.node("mobile-0")) == 64

    def test_callable_adapter(self, hybrid):
        engine, network = hybrid
        retriever = CallableRetriever("custom", lambda node: node.node_id)
        assert retriever.attribute == "custom"
        assert retriever.sample(network.node("fixed-0")) == "fixed-0"

    def test_default_set_covers_core_attributes(self):
        attributes = {r.attribute for r in default_retrievers()}
        assert {DEVICE_TYPE, BATTERY, LINK_QUALITY} <= attributes


class TestSnapshot:
    def test_samples_explode_sorted(self):
        snapshot = ContextSnapshot("n1", 2.0, {"b": 1, "a": 2})
        samples = snapshot.samples()
        assert [s.attribute for s in samples] == ["a", "b"]
        assert all(s.node_id == "n1" and s.time == 2.0 for s in samples)

    def test_payload_round_trip(self):
        snapshot = ContextSnapshot("n1", 3.5, {"x": 1.25})
        assert ContextSnapshot.from_payload(snapshot.to_payload()) == snapshot

    def test_topic_naming(self):
        assert topic_for("battery") == "context.battery"


class TestDistributedDissemination:
    def test_every_node_learns_every_nodes_context(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0")
        network.add_mobile_node("mobile-1")
        nodes = build_morpheus_group(network, publish_interval=1.0,
                                     evaluate_interval=30.0)
        engine.run_until(5.0)
        for morpheus in nodes.values():
            directory = morpheus.directory
            assert directory.value("fixed-0", DEVICE_TYPE) == "fixed"
            assert directory.value("mobile-0", DEVICE_TYPE) == "mobile"
            assert directory.value("mobile-1", DEVICE_TYPE) == "mobile"

    def test_battery_updates_propagate(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_mobile_node("mobile-0",
                                battery=Battery(capacity_mj=500.0))
        nodes = build_morpheus_group(network, publish_interval=1.0,
                                     evaluate_interval=30.0)
        engine.run_until(3.0)
        first = nodes["fixed-0"].directory.value("mobile-0", BATTERY)
        # Heartbeats and context messages drain the mobile battery...
        engine.run_until(60.0)
        later = nodes["fixed-0"].directory.value("mobile-0", BATTERY)
        assert later < first

    def test_on_change_only_suppresses_stable_snapshots(self):
        engine = SimEngine()
        network = Network(engine, seed=4)
        network.add_fixed_node("fixed-0")
        network.add_fixed_node("fixed-1")
        nodes = build_morpheus_group(network, publish_interval=1.0,
                                     evaluate_interval=30.0)
        # Enable change suppression on one node's Cocaditem.
        nodes["fixed-0"].cocaditem.on_change_only = True
        engine.run_until(20.0)
        suppressed = nodes["fixed-0"].cocaditem.snapshots_sent
        chatty = nodes["fixed-1"].cocaditem.snapshots_sent
        # Fixed nodes' context never changes: one snapshot vs ~20.
        assert suppressed <= 3
        assert chatty >= 15


class TestContextDirectory:
    def test_covers_requires_all_members(self):
        bus = TopicBus()
        directory = ContextDirectory(bus)
        from repro.context import ContextSample
        bus.publish("context.device_type",
                    ContextSample("a", DEVICE_TYPE, "fixed", 0.0))
        assert directory.covers(["a"], DEVICE_TYPE)
        assert not directory.covers(["a", "b"], DEVICE_TYPE)

    def test_is_hybrid(self):
        from repro.context import ContextSample
        bus = TopicBus()
        directory = ContextDirectory(bus)
        bus.publish("context.device_type",
                    ContextSample("a", DEVICE_TYPE, "fixed", 0.0))
        bus.publish("context.device_type",
                    ContextSample("b", DEVICE_TYPE, "mobile", 0.0))
        assert directory.is_hybrid(["a", "b"])
        assert not directory.is_hybrid(["a"])
        assert not directory.is_hybrid(["b"])

    def test_latest_sample_wins(self):
        from repro.context import ContextSample
        bus = TopicBus()
        directory = ContextDirectory(bus)
        bus.publish("context.battery", ContextSample("a", BATTERY, 0.9, 1.0))
        bus.publish("context.battery", ContextSample("a", BATTERY, 0.4, 2.0))
        assert directory.value("a", BATTERY) == 0.4
