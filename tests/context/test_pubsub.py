"""Unit tests for the topic-based publish-subscribe bus."""

from __future__ import annotations

from repro.context import TopicBus


class TestExactTopics:
    def test_subscriber_receives_matching_publish(self):
        bus = TopicBus()
        received = []
        bus.subscribe("context.battery", lambda t, d: received.append((t, d)))
        bus.publish("context.battery", 0.5)
        assert received == [("context.battery", 0.5)]

    def test_non_matching_topic_ignored(self):
        bus = TopicBus()
        received = []
        bus.subscribe("context.battery", lambda t, d: received.append(d))
        bus.publish("context.memory", 64)
        assert received == []

    def test_multiple_subscribers_all_notified(self):
        bus = TopicBus()
        hits = []
        for index in range(3):
            bus.subscribe("t", lambda _t, _d, i=index: hits.append(i))
        assert bus.publish("t", None) == 3
        assert sorted(hits) == [0, 1, 2]

    def test_unsubscribe_stops_delivery(self):
        bus = TopicBus()
        received = []
        subscription = bus.subscribe("t", lambda t, d: received.append(d))
        bus.publish("t", 1)
        subscription.unsubscribe()
        bus.publish("t", 2)
        assert received == [1]


class TestWildcards:
    def test_prefix_wildcard_matches_subtree(self):
        bus = TopicBus()
        received = []
        bus.subscribe("context.*", lambda t, d: received.append(t))
        bus.publish("context.battery", 1)
        bus.publish("context.device_type", 2)
        bus.publish("other.battery", 3)
        assert received == ["context.battery", "context.device_type"]

    def test_wildcard_matches_deep_topics(self):
        bus = TopicBus()
        received = []
        bus.subscribe("a.*", lambda t, d: received.append(t))
        bus.publish("a.b.c", 1)
        assert received == ["a.b.c"]

    def test_exact_and_wildcard_both_fire(self):
        bus = TopicBus()
        received = []
        bus.subscribe("context.battery", lambda t, d: received.append("exact"))
        bus.subscribe("context.*", lambda t, d: received.append("wild"))
        assert bus.publish("context.battery", 0) == 2
        assert sorted(received) == ["exact", "wild"]

    def test_subscriber_count(self):
        bus = TopicBus()
        bus.subscribe("context.battery", lambda t, d: None)
        bus.subscribe("context.*", lambda t, d: None)
        assert bus.subscriber_count("context.battery") == 2
        assert bus.subscriber_count("context.memory") == 1
        assert bus.subscriber_count("unrelated") == 0


class TestRobustness:
    def test_unsubscribe_during_publish_is_safe(self):
        bus = TopicBus()
        received = []
        subscription = bus.subscribe("t", lambda t, d: (
            received.append(d), subscription.unsubscribe()))
        bus.publish("t", 1)
        bus.publish("t", 2)
        assert received == [1]

    def test_published_count_tracks(self):
        bus = TopicBus()
        bus.publish("x", 1)
        bus.publish("y", 2)
        assert bus.published_count == 2
