"""Declarative scenario model: structure, validation, canned registry."""

from __future__ import annotations

import pytest

from repro.scenarios import (CANNED, ChatBurst, Crash, Handoff, LinkSpec,
                             NodeSpec, Partition, Scenario, SetLoss,
                             bernoulli, canned, gilbert_elliott)


def minimal(**overrides) -> Scenario:
    fields = dict(
        name="t", duration_s=10.0,
        nodes=(NodeSpec("a", "fixed"), NodeSpec("b", "mobile")))
    fields.update(overrides)
    return Scenario(**fields)


class TestValidation:
    def test_minimal_scenario_validates(self):
        minimal().validate()

    def test_duplicate_node_ids_rejected(self):
        scenario = minimal(nodes=(NodeSpec("a"), NodeSpec("a")))
        with pytest.raises(ValueError, match="duplicate node id"):
            scenario.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            minimal(nodes=(NodeSpec("a", "laptop"),)).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            minimal(policy="telepathy").validate()

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            minimal(duration_s=0.0).validate()

    def test_all_joiners_rejected(self):
        scenario = minimal(nodes=(NodeSpec("a", join_at=1.0),))
        with pytest.raises(ValueError, match="t=0 node"):
            scenario.validate()

    def test_join_time_outside_run_rejected(self):
        scenario = minimal(nodes=(NodeSpec("a"),
                                  NodeSpec("b", join_at=10.0)))
        with pytest.raises(ValueError, match="join_at"):
            scenario.validate()

    def test_event_with_unknown_node_rejected(self):
        scenario = minimal(events=(Crash(1.0, node="ghost"),))
        with pytest.raises(ValueError, match="unknown node"):
            scenario.validate()

    def test_event_outside_run_rejected(self):
        scenario = minimal(events=(Crash(99.0, node="a"),))
        with pytest.raises(ValueError, match="outside"):
            scenario.validate()

    def test_bad_handoff_target_rejected(self):
        scenario = minimal(events=(Handoff(1.0, node="a", to="airborne"),))
        with pytest.raises(ValueError, match="handoff target"):
            scenario.validate()

    def test_unknown_loss_model_rejected(self):
        scenario = minimal(
            events=(SetLoss(1.0, segment="wireless",
                            link=LinkSpec("quantum")),))
        with pytest.raises(ValueError, match="loss model"):
            scenario.validate()

    def test_single_group_partition_rejected(self):
        scenario = minimal(events=(Partition(1.0, groups=(("a", "b"),)),))
        with pytest.raises(ValueError, match="2 groups"):
            scenario.validate()

    def test_partition_with_unknown_member_rejected(self):
        scenario = minimal(
            events=(Partition(1.0, groups=(("a",), ("ghost",))),))
        with pytest.raises(ValueError, match="unknown node"):
            scenario.validate()

    def test_workload_with_unknown_sender_rejected(self):
        scenario = minimal(workload=(ChatBurst(start=1.0, sender="ghost"),))
        with pytest.raises(ValueError, match="sender"):
            scenario.validate()


class TestStructureQueries:
    def test_initial_members_excludes_joiners(self):
        scenario = minimal(nodes=(NodeSpec("b"), NodeSpec("a"),
                                  NodeSpec("late", join_at=2.0)))
        assert scenario.initial_members() == ("a", "b")
        assert [spec.node_id for spec in scenario.joiners()] == ["late"]

    def test_joiners_ordered_by_time(self):
        scenario = minimal(nodes=(NodeSpec("a"),
                                  NodeSpec("z", join_at=1.0),
                                  NodeSpec("b", join_at=3.0)))
        assert [spec.node_id for spec in scenario.joiners()] == ["z", "b"]

    def test_link_shorthands(self):
        assert bernoulli(0.2).as_dict() == {"probability": 0.2}
        spec = gilbert_elliott(p_good=0.01, p_bad=0.4)
        assert spec.model == "gilbert_elliott"
        assert spec.as_dict() == {"p_good": 0.01, "p_bad": 0.4}


class TestCannedRegistry:
    @pytest.mark.parametrize("name", sorted(CANNED))
    def test_canned_scenarios_validate(self, name):
        canned(name).validate()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown canned scenario"):
            canned("does_not_exist")

    def test_overrides_reach_builder(self):
        scenario = canned("commuter_handoff", messages=5, duration_s=30.0)
        assert scenario.duration_s == 30.0
        assert scenario.workload[0].count == 5
