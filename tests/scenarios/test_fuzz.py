"""Scenario fuzzer: generator validity/determinism, invariants, shrinker."""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.rules import rule_names
from repro.scenarios.fuzz import (MIXES, check_delivery, final_components,
                                  fuzz_oracle, generate_scenario,
                                  run_seed_for, scenario_from_dict,
                                  scenario_to_dict)
from repro.scenarios.scenario import (ChatBurst, Crash, Handoff, Heal,
                                      NodeSpec, Partition, Recover, Scenario)
from repro.scenarios.shrink import (shrink_scenario, violation_categories)


class TestGenerator:
    def test_same_triple_yields_identical_scenarios(self):
        assert generate_scenario(5, 3) == generate_scenario(5, 3)
        assert run_seed_for(5, 3) == run_seed_for(5, 3)

    def test_different_indices_yield_different_scenarios(self):
        drawn = {generate_scenario(5, index) for index in range(8)}
        assert len(drawn) == 8

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_generated_scenarios_are_valid(self, mix):
        for index in range(12):
            scenario = generate_scenario(11, index, mix=mix)
            scenario.validate()  # raises on any structural inconsistency
            assert scenario.workload, "every run must carry some traffic"

    def test_anchor_sender_survives_every_schedule(self):
        """The first burst's sender is never crashed or removed."""
        for index in range(12):
            scenario = generate_scenario(2, index)
            anchor = scenario.workload[0].sender
            for event in scenario.events:
                if getattr(event, "node", None) == anchor:
                    assert isinstance(event, (Handoff, Recover)), event

    def test_roundtrip_through_corpus_shape(self):
        for index in range(6):
            scenario = generate_scenario(4, index, mix="partition")
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_policy_fuzz_draws_valid_rule_sets(self):
        config = dataclasses.replace(MIXES["uniform"], rules_p=1.0)
        drew_governor = False
        for index in range(12):
            scenario = generate_scenario(9, index, config=config)
            scenario.validate()
            assert scenario.rules, "rules_p=1.0 must draw a rule set"
            for name, _params in scenario.rules:
                assert name in rule_names()
            # The tail always produces a plan — an abstaining rule set
            # would leave a governed coordinator without a decision path.
            assert scenario.rules[-1][0] in ("hybrid_mecho", "plain")
            drew_governor = drew_governor or bool(scenario.governor)
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario
        assert drew_governor, "half the draws should be governed"

    def test_rules_p_zero_keeps_streams_untouched(self):
        """Pre-rules corpus entries must regenerate byte-identically."""
        explicit = dataclasses.replace(MIXES["uniform"], rules_p=0.0)
        assert generate_scenario(5, 3, config=explicit) == \
            generate_scenario(5, 3)

    def test_policy_fuzz_oracle_green_on_small_run(self):
        config = dataclasses.replace(
            MIXES["uniform"], rules_p=1.0, min_nodes=3, max_nodes=3,
            min_events=1, max_events=2, event_window_s=10.0, settle_s=40.0)
        scenario = generate_scenario(21, 0, config=config)
        assert scenario.rules
        assert fuzz_oracle(scenario, run_seed_for(21, 0)) == []


class TestFinalComponents:
    def _scenario(self, events) -> Scenario:
        return Scenario(
            name="components", duration_s=60.0,
            nodes=(NodeSpec("a"), NodeSpec("b"), NodeSpec("c")),
            events=events,
            workload=(ChatBurst(start=1.0, sender="a", count=1),))

    def test_unpartitioned_run_is_one_component(self):
        assert final_components(self._scenario(())) == [{"a", "b", "c"}]

    def test_last_partition_wins(self):
        scenario = self._scenario((
            Partition(10.0, groups=(("a",), ("b", "c"))),
            Heal(20.0),
            Partition(30.0, groups=(("a", "b"), ("c",)))))
        assert final_components(scenario) == [{"a", "b"}, {"c"}]

    def test_heal_restores_one_component(self):
        scenario = self._scenario((
            Partition(10.0, groups=(("a",), ("b", "c"))), Heal(20.0)))
        assert final_components(scenario) == [{"a", "b", "c"}]

    def test_uncovered_nodes_become_islands(self):
        scenario = self._scenario((
            Partition(10.0, groups=(("a",), ("b",))),))
        assert {"c"} in final_components(scenario)


def _runner_with_histories(histories: dict) -> SimpleNamespace:
    morpheus = {
        node_id: SimpleNamespace(chat=SimpleNamespace(history=[
            SimpleNamespace(source=source, text=text)
            for source, text in deliveries]))
        for node_id, deliveries in histories.items()}
    scenario = SimpleNamespace(ordering=())
    return SimpleNamespace(morpheus=morpheus, scenario=scenario)


class TestDeliveryInvariant:
    def test_clean_history_passes(self):
        runner = _runner_with_histories({
            "a": [("a", "b0-0"), ("a", "b0-1"), ("b", "b1-0")],
            "b": [("a", "b0-0"), ("a", "b0-1")]})
        assert check_delivery(runner, None) == []

    def test_duplicate_delivery_is_flagged(self):
        runner = _runner_with_histories({
            "a": [("b", "b0-3"), ("b", "b0-3")]})
        violations = check_delivery(runner, None)
        assert len(violations) == 1
        assert violations[0].startswith("delivery-dup")

    def test_reordered_delivery_is_flagged(self):
        runner = _runner_with_histories({
            "a": [("b", "b0-3"), ("b", "b0-1")]})
        violations = check_delivery(runner, None)
        assert len(violations) == 1
        assert violations[0].startswith("delivery-order")

    def test_gaps_are_allowed(self):
        # Messages may be lost across view changes; FIFO only forbids
        # going backwards, not holes.
        runner = _runner_with_histories({
            "a": [("b", "b0-0"), ("b", "b0-7"), ("b", "b0-9")]})
        assert check_delivery(runner, None) == []


class TestOracleAndShrinker:
    def test_oracle_green_on_small_generated_run(self):
        scenario = generate_scenario(7, 2)  # 3 nodes, short
        assert fuzz_oracle(scenario, run_seed_for(7, 2)) == []

    def test_shrinker_minimizes_against_synthetic_oracle(self):
        """No simulation: the oracle fails iff a Crash of node x is in the
        schedule — the shrinker must strip everything else."""
        scenario = Scenario(
            name="synthetic", duration_s=80.0,
            nodes=(NodeSpec("x"), NodeSpec("y"), NodeSpec("z")),
            events=(Handoff(5.0, node="y", to="mobile"),
                    Crash(10.0, node="x"),
                    Partition(15.0, groups=(("x",), ("y", "z"))),
                    Heal(20.0),
                    Crash(25.0, node="y"),
                    Recover(30.0, node="y")),
            workload=(ChatBurst(start=1.0, sender="y", count=30,
                                prefix="b0"),
                      ChatBurst(start=2.0, sender="z", count=30,
                                prefix="b1")))

        def oracle(candidate: Scenario) -> list:
            crashes_x = any(isinstance(event, Crash) and event.node == "x"
                            for event in candidate.events)
            return ["synthetic-fail: x crashed"] if crashes_x else []

        outcome = shrink_scenario(scenario, run_seed=0,
                                  violations=oracle(scenario),
                                  oracle=oracle)
        assert [type(e).__name__ for e in outcome.scenario.events] == \
            ["Crash"]
        assert outcome.scenario.events[0].node == "x"
        # The workload is irrelevant to this failure and shrinks away
        # entirely; unrelated nodes are dropped (x stays: the failing
        # event needs it).
        assert outcome.scenario.workload == ()
        node_ids = {spec.node_id for spec in outcome.scenario.nodes}
        assert "x" in node_ids and len(node_ids) <= 2

    def test_shrinker_keeps_failure_category(self):
        """A candidate failing with a *different* category does not count
        as still-failing."""
        base = generate_scenario(7, 2)

        def oracle(candidate: Scenario) -> list:
            if len(candidate.events) == len(base.events):
                return ["cat-a: full schedule"]
            return ["cat-b: different failure"]

        outcome = shrink_scenario(base, run_seed=0,
                                  violations=["cat-a: full schedule"],
                                  oracle=oracle)
        # Every reduction flips the category, so nothing may be removed.
        assert outcome.scenario.events == base.events

    def test_violation_categories(self):
        assert violation_categories(
            ["view-agreement: x", "delivery-dup: y", "view-agreement: z"]) \
            == {"view-agreement", "delivery-dup"}
