"""Differential proofs for the hot-path rework: batching and the codec.

* **batched vs unbatched** — coalescing same-slot deliveries into one
  engine event must not change a single observable: every
  :class:`ScenarioResult` field except ``engine_events`` (the batching
  exists to shrink that one) compares equal across the full canned suite
  and a fuzzed scenario.
* **wheel vs heap under batching** — the reference heap engine and the
  timer wheel must agree on the *complete* result, ``engine_events``
  included: the flush drain makes its continue/stop decisions from a
  slot-end bound both engines compute identically.
* **byte-accounting parity** — with the codec's parity mode armed, every
  encode on a real scenario asserts ``charge == estimate_size`` and a
  decode round-trip; a whole canned run passing means the compact wire
  format never drifted from the legacy accounting.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.kernel import codec
from repro.scenarios.fuzz import generate_scenario, run_seed_for
from repro.scenarios.library import canned
from repro.scenarios.runner import run_scenario
from repro.simnet.engine import HeapSimEngine

CANNED = ["commuter_handoff", "flash_crowd_join", "degrading_channel_fec",
          "churn_storm", "partition_heal", "energy_rotation"]


def _without_engine_events(result):
    return dataclasses.replace(result, engine_events=0)


class TestBatchedUnbatchedParity:
    @pytest.mark.parametrize("name", CANNED)
    def test_canned_histories_identical(self, name):
        batched = run_scenario(canned(name), batched=True)
        plain = run_scenario(canned(name), batched=False)
        assert batched.engine_events < plain.engine_events
        assert _without_engine_events(batched) == _without_engine_events(plain)

    def test_fuzzed_scenario_histories_identical(self):
        scenario = generate_scenario(7, 3, mix="partition")
        seed = run_seed_for(7, 3)
        batched = run_scenario(scenario, seed=seed, batched=True)
        plain = run_scenario(scenario, seed=seed, batched=False)
        assert _without_engine_events(batched) == _without_engine_events(plain)


class TestWheelHeapParityUnderBatching:
    @pytest.mark.parametrize("name", CANNED)
    def test_engines_agree_on_everything(self, name):
        wheel = run_scenario(canned(name), batched=True)
        heap = run_scenario(canned(name), batched=True,
                            engine_factory=HeapSimEngine)
        assert wheel == heap  # engine_events included


class TestByteAccountingParity:
    @pytest.mark.parametrize("name", ["commuter_handoff", "churn_storm"])
    def test_codec_charges_match_legacy_estimates(self, name):
        codec.set_parity(True)
        try:
            armed = run_scenario(canned(name))
        finally:
            codec.set_parity(False)
        assert armed == run_scenario(canned(name))  # parity mode is inert

    def test_wire_bytes_counters_populated(self):
        result = run_scenario(canned("commuter_handoff"))
        for snapshot in result.stats.values():
            if snapshot["sent_total"]:
                assert snapshot["sent_wire_bytes"] > 0
