"""Scenario runner: live adaptation under dynamic topology.

The acceptance test of the subsystem is here: a canned handoff scenario
demonstrably triggers a live Morpheus reconfiguration mid-run (the data
stack before the handoff differs from the one after), and a replay with
the same seed reproduces the run exactly.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (CANNED, canned, churn_storm, commuter_handoff,
                             degrading_channel_fec, flash_crowd_join,
                             partition_heal, run_scenario)


@pytest.mark.tier1
class TestCommuterHandoff:
    def test_handoff_triggers_live_reconfiguration(self):
        result = run_scenario(commuter_handoff(), seed=5)
        stacks = result.stacks_of("commuter")
        # Before the handoff: the plain (beb) stack.  After: Mecho.  After
        # docking back: plain again — two live switches, no restart.
        assert len(stacks) == 3
        before, during, after = stacks
        assert before != during, "handoff must change the live stack"
        assert "mecho" in during and "mecho" not in before
        assert after == before
        assert result.reconfiguration_count() == 2

    def test_no_message_lost_across_switches(self):
        result = run_scenario(commuter_handoff(), seed=5)
        expected = tuple(f"m-{i}" for i in range(100))
        for node_id, texts in result.texts.items():
            assert texts == expected, node_id

    def test_same_seed_replays_identically(self):
        first = run_scenario(commuter_handoff(), seed=5)
        second = run_scenario(commuter_handoff(), seed=5)
        assert first == second
        assert first.trace == second.trace

    def test_trace_records_moves_and_reconfigurations(self):
        result = run_scenario(commuter_handoff(), seed=5)
        assert any("move commuter to mobile" in line
                   for line in result.trace)
        assert any("reconfigured to hybrid" in line
                   for line in result.trace)


class TestFlashCrowdJoin:
    def test_every_wave_admitted_and_deployed(self):
        result = run_scenario(flash_crowd_join(), seed=5)
        everyone = ("fixed-0", "fixed-1", "mobile-0", "mobile-1", "mobile-2")
        for node_id, view in result.control_views.items():
            assert view == everyone, node_id
        # Each admitted wave costs (at least) one redeployment.
        assert result.reconfiguration_count() >= 3
        assert result.deployed["mobile-2"].startswith("hybrid")

    def test_joiners_receive_post_join_traffic(self):
        result = run_scenario(flash_crowd_join(), seed=5)
        full = result.texts["fixed-1"]
        assert len(full) == 100
        for joiner in ("mobile-0", "mobile-1", "mobile-2"):
            texts = result.texts[joiner]
            assert texts, f"{joiner} never delivered anything"
            # View synchrony: a joiner's deliveries are a contiguous tail.
            assert texts == full[-len(texts):], joiner


class TestChurnStorm:
    def test_survivors_agree_end_to_end(self):
        result = run_scenario(churn_storm(), seed=5)
        assert result.texts["fixed-0"] == result.texts["mobile-0"]
        assert len(result.texts["fixed-0"]) == 120

    def test_recovered_member_rejoined(self):
        result = run_scenario(churn_storm(), seed=5)
        assert "mobile-1" in result.control_views["fixed-0"]

    def test_leaver_and_dead_member_stay_out(self):
        result = run_scenario(churn_storm(), seed=5)
        survivors = result.control_views["fixed-0"]
        assert "fixed-1" not in survivors   # left gracefully
        assert "mobile-2" not in survivors  # crashed, never recovered


class TestDegradingChannel:
    def test_fec_crossover_and_back(self):
        result = run_scenario(degrading_channel_fec(), seed=5)
        stacks = result.stacks_of("mobile-0")
        assert any("fec" in stack for stack in stacks), \
            "degraded channel must deploy the FEC stack"
        assert "fec" not in stacks[-1], \
            "cleared channel must restore the ARQ stack"
        assert len(result.texts["fixed-0"]) == 200


class TestPartitionHeal:
    def test_sides_merge_after_heal(self):
        result = run_scenario(partition_heal(), seed=5)
        everyone = ("fixed-0", "fixed-1", "mobile-0", "mobile-1")
        for node_id, view in result.control_views.items():
            assert view == everyone, node_id

    def test_post_merge_traffic_reaches_far_side(self):
        result = run_scenario(partition_heal(), seed=5)
        full = result.texts["fixed-0"]
        assert len(full) == 130
        # The mobiles missed the partition window but share the tail.
        tail = result.texts["mobile-0"]
        assert tail and tail[-20:] == full[-20:]


@pytest.mark.slow
class TestFullSweep:
    """Long multi-seed sweep across every canned scenario (excluded from
    the tier-1 gate by the ``slow`` marker; run with ``-m slow``)."""

    @pytest.mark.parametrize("name", sorted(CANNED))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_scenario_completes_and_replays(self, name, seed):
        first = run_scenario(canned(name), seed=seed)
        second = run_scenario(canned(name), seed=seed)
        assert first == second
        assert first.reconfiguration_count() >= 1


class TestEventsOnDepartedNodes:
    def test_event_targeting_departed_node_is_skipped_not_fatal(self):
        """validate() cannot see schedule ordering, so an event landing
        after its target's Leave must be tolerated (and traced), not crash
        the run with a KeyError."""
        from repro.scenarios.scenario import (ChatBurst, Crash, Handoff,
                                              Leave, NodeSpec, Scenario)
        scenario = Scenario(
            name="departed_target",
            duration_s=30.0,
            nodes=(NodeSpec("a", "fixed"), NodeSpec("b", "fixed"),
                   NodeSpec("c", "fixed")),
            events=(Leave(8.0, node="c", depart_after=2.0),
                    Handoff(15.0, node="c", to="mobile"),
                    Crash(16.0, node="c")),
            workload=(ChatBurst(start=1.0, sender="a", count=20,
                                interval=0.5),),
        )
        result = run_scenario(scenario, seed=11)
        assert any("skipped handoff c (departed)" in line
                   for line in result.trace)
        assert any("skipped crash c (departed)" in line
                   for line in result.trace)
        assert len(result.texts["a"]) == 20  # the run itself completed

    def test_event_before_targets_join_is_traced_as_not_joined(self):
        from repro.scenarios.scenario import (ChatBurst, Crash, NodeSpec,
                                              Scenario)
        scenario = Scenario(
            name="early_target",
            duration_s=30.0,
            nodes=(NodeSpec("a", "fixed"), NodeSpec("b", "fixed"),
                   NodeSpec("x", "mobile", join_at=20.0)),
            events=(Crash(10.0, node="x"),),  # fires before x exists
            workload=(ChatBurst(start=1.0, sender="a", count=10,
                                interval=0.5),),
        )
        result = run_scenario(scenario, seed=11)
        assert any("skipped crash x (not joined yet)" in line
                   for line in result.trace)
        assert len(result.texts["a"]) == 10
