"""The sharded determinism gate: sharded runs must equal sequential runs.

Two tiers, matching the two composition shapes:

* **single group** — the facade hosts the whole scenario in one shard
  group sharing one sequence stream with the control engine, so the
  contract is *full byte-identical* ``ScenarioResult`` equality
  (``engine_events`` included) against the plain sequential engine, for
  every canned scenario, over both wheel and reference-heap sub-engines.
* **multi group** — disjoint segments composed by
  :class:`ShardedScenarioRunner`.  Same-instant callbacks of different
  segments share no state and have no defined mutual order, so the
  contract is per-segment :func:`projection` equality across all
  execution modes: one sequential engine, the sharded facade at shard
  counts 1/2/4, and solo per-segment worker processes.
"""

from __future__ import annotations

import pytest

from repro.scenarios.library import canned, churn_storm
from repro.scenarios.runner import run_scenario
from repro.scenarios.scenario import SetLoss, bernoulli
from repro.scenarios.sharded import (ShardedScenarioRunner,
                                     check_segment_isolation,
                                     merge_solo_results, projection,
                                     relabel_scenario, run_segments_parallel)
from repro.simnet.engine import HeapSimEngine, SimEngine
from repro.simnet.shard import ShardedSimEngine

CANNED = ["commuter_handoff", "flash_crowd_join", "degrading_channel_fec",
          "churn_storm", "partition_heal", "energy_rotation"]


def _facade(engine_cls, shards):
    return lambda: ShardedSimEngine(shards=shards, engine_factory=engine_cls)


class TestSingleGroupParity:
    @pytest.mark.parametrize("name", CANNED)
    def test_facade_is_byte_identical_to_sequential(self, name):
        sequential = run_scenario(canned(name))
        sharded = run_scenario(canned(name),
                               engine_factory=_facade(SimEngine, 2))
        assert sequential == sharded  # engine_events included

    @pytest.mark.parametrize("name", ["churn_storm", "partition_heal"])
    def test_facade_over_heap_oracle_agrees_too(self, name):
        sequential = run_scenario(canned(name))
        sharded = run_scenario(canned(name),
                               engine_factory=_facade(HeapSimEngine, 4))
        assert sequential == sharded


def _segments(count=3, members=5, messages=10):
    template = churn_storm(members=members, messages=messages,
                           duration_s=55.0)
    return [relabel_scenario(template, prefix=f"s{index}-",
                             name=f"seg{index}")
            for index in range(count)]


class TestMultiGroupComposition:
    def test_every_execution_mode_agrees(self):
        segments = _segments()
        sequential = ShardedScenarioRunner(
            segments, seed=5, engine_factory=SimEngine).run()
        expected = projection(sequential)
        for shards in (1, 2, 4):
            sharded = ShardedScenarioRunner(segments, seed=5,
                                            shards=shards).run()
            assert projection(sharded) == expected
        solo = run_segments_parallel(segments, seed=5, workers=2)
        assert merge_solo_results(solo) == expected

    def test_heap_sub_engines_agree(self):
        from repro.simnet.shard import ShardPlan
        segments = _segments(count=2)
        sequential = ShardedScenarioRunner(
            segments, seed=9, engine_factory=SimEngine).run()
        plan = ShardPlan(tuple(
            frozenset(spec.node_id for spec in segment.nodes)
            for segment in segments))
        heap = ShardedScenarioRunner(
            segments, seed=9,
            engine_factory=lambda: ShardedSimEngine(
                plan=plan, engine_factory=HeapSimEngine)).run()
        assert projection(heap) == projection(sequential)

    def test_segment_isolation_invariant_holds(self):
        segments = _segments(count=2)
        runner = ShardedScenarioRunner(segments, seed=1, shards=2)
        result = runner.run()
        assert check_segment_isolation(runner, result) == []
        # Every segment delivered its own chat stream.
        for segment in segments:
            sender = f"{segment.nodes[0].node_id}"
            assert any(result.texts[node_id]
                       for node_id in result.texts
                       if node_id.startswith(sender.split("-")[0]))

    def test_deliveries_actually_happened(self):
        segments = _segments(count=2)
        result = ShardedScenarioRunner(segments, seed=2, shards=2).run()
        assert result.delivered_packets > 0
        # Both segments' survivors got the full chat stream.
        for prefix in ("s0-", "s1-"):
            receivers = [texts for node_id, texts in result.texts.items()
                         if node_id.startswith(prefix) and texts]
            assert receivers, f"no deliveries in segment {prefix}"


class TestCompositionValidation:
    def test_relabel_rejects_network_global_events(self):
        scenario = canned("degrading_channel_fec")
        assert any(isinstance(event, SetLoss) for event in scenario.events)
        with pytest.raises(ValueError, match="network-global"):
            relabel_scenario(scenario, prefix="s0-")

    def test_overlapping_segments_rejected(self):
        template = churn_storm(members=5, messages=5, duration_s=55.0)
        same = relabel_scenario(template, prefix="s0-")
        with pytest.raises(ValueError, match="share node ids"):
            ShardedScenarioRunner([same, same], seed=0)

    def test_relabel_prefixes_everything(self):
        template = churn_storm(members=5, messages=5, duration_s=55.0)
        segment = relabel_scenario(template, prefix="s7-", name="seven")
        assert segment.name == "seven"
        assert all(spec.node_id.startswith("s7-") for spec in segment.nodes)
        assert all(event.node.startswith("s7-") for event in segment.events)
        assert all(burst.sender.startswith("s7-")
                   for burst in segment.workload)
