"""Corpus replay: every checked-in shrunk reproducer stays fixed.

Each file under ``tests/scenarios/corpus/`` is a delta-debugged minimal
scenario that once violated a run invariant (the ``violations`` field
records what it reproduced).  These tests replay every entry under both
engines and require all invariants green and bit-identical results —
the regression gate the fuzzer's shrinker feeds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.kernel import codec
from repro.scenarios.fuzz import ALWAYS_ON, fuzz_oracle
from repro.scenarios.runner import run_scenario
from repro.scenarios.shrink import load_corpus_file
from repro.simnet.engine import HeapSimEngine, SimEngine

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def corpus_ids() -> list[str]:
    return [path.stem for path in CORPUS_FILES]


def test_corpus_is_not_empty():
    assert CORPUS_FILES, "corpus directory lost its reproducers"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=corpus_ids())
class TestCorpusReplay:
    def test_reproducer_stays_fixed(self, path):
        entry = load_corpus_file(str(path))
        violations = fuzz_oracle(entry["scenario_obj"], entry["run_seed"])
        assert violations == [], (
            f"{path.name} regressed: this scenario used to reproduce "
            f"{entry['violations']} and was fixed — it fails again")

    def test_engines_agree_on_reproducer(self, path):
        entry = load_corpus_file(str(path))
        scenario, seed = entry["scenario_obj"], entry["run_seed"]
        wheel = run_scenario(scenario, seed=seed,
                             engine_factory=SimEngine,
                             invariants=ALWAYS_ON)
        heap = run_scenario(scenario, seed=seed,
                            engine_factory=HeapSimEngine,
                            invariants=ALWAYS_ON)
        assert wheel == heap

    def test_reproducer_replays_under_codec_parity(self, path):
        """The whole corpus again with every wire encode cross-checked:
        parity mode asserts each codec charge equals the legacy
        ``estimate_size`` and each blob decodes back equal (the
        ``REPRO_CODEC_PARITY=1`` contract the live transport's framing
        depends on), and the run must stay bit-identical to normal mode."""
        entry = load_corpus_file(str(path))
        scenario, seed = entry["scenario_obj"], entry["run_seed"]
        codec.set_parity(True)
        try:
            checked = run_scenario(scenario, seed=seed,
                                   invariants=ALWAYS_ON)
        finally:
            codec.set_parity(False)
        plain = run_scenario(scenario, seed=seed, invariants=ALWAYS_ON)
        assert checked == plain  # parity mode observes, never perturbs
