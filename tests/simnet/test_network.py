"""Topology, routing, loss, energy and failure injection."""

from __future__ import annotations

import random

import pytest

from repro.kernel import Message, SendableEvent
from repro.simnet import (Battery, BernoulliLoss, LinkParams, Network,
                          NodeKind, NoLoss, Packet, SimEngine,
                          TopologyChange)


def make_packet(src: str, dst, payload=b"x" * 100, port="data",
                traffic_class="data") -> Packet:
    return Packet(src=src, dst=dst, port=port, event_cls=SendableEvent,
                  message=Message(payload=payload),
                  traffic_class=traffic_class)


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def hybrid(engine):
    """1 fixed + 2 mobile nodes, no loss."""
    network = Network(engine, seed=7)
    network.add_fixed_node("fixed-0")
    network.add_mobile_node("mobile-0")
    network.add_mobile_node("mobile-1")
    return network


class TestTopology:
    def test_duplicate_node_id_rejected(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.add_fixed_node("fixed-0")

    def test_node_kind_queries(self, hybrid):
        assert hybrid.fixed_ids() == ["fixed-0"]
        assert hybrid.mobile_ids() == ["mobile-0", "mobile-1"]
        assert hybrid.node_ids() == ["fixed-0", "mobile-0", "mobile-1"]

    def test_mobile_gets_default_battery(self, hybrid):
        assert hybrid.node("mobile-0").battery is not None
        assert hybrid.node("fixed-0").battery is None

    def test_hop_latency_ordering(self, hybrid, engine):
        """mobile→mobile (2 wireless hops) is slower than mobile→fixed."""
        delivered = {}
        for dst in ("fixed-0", "mobile-1"):
            node = hybrid.node(dst)
            node.bind_port("data", lambda pkt, d=dst: delivered.setdefault(
                d, engine.now()))
        sender = hybrid.node("mobile-0")
        sender.send(make_packet("mobile-0", "fixed-0"))
        sender.send(make_packet("mobile-0", "mobile-1"))
        engine.run_until_idle()
        assert delivered["fixed-0"] < delivered["mobile-1"]


class TestUnicast:
    def test_delivery_and_counters(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1
        assert hybrid.stats_of("mobile-0").sent_total == 1
        assert hybrid.stats_of("fixed-0").recv_total == 1
        assert hybrid.delivered_packets == 1

    def test_unknown_destination_is_lost(self, hybrid, engine):
        hybrid.node("mobile-0").send(make_packet("mobile-0", "ghost"))
        engine.run_until_idle()
        assert hybrid.lost_packets == 1

    def test_unbound_port_counts_drop(self, hybrid, engine):
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0",
                                                 port="nowhere"))
        engine.run_until_idle()
        assert hybrid.stats_of("fixed-0").dropped_packets == 1
        assert hybrid.stats_of("fixed-0").snapshot()["dropped"] == 1

    def test_traffic_class_counted_separately(self, hybrid, engine):
        hybrid.node("fixed-0").bind_port("data", lambda pkt: None)
        sender = hybrid.node("mobile-0")
        sender.send(make_packet("mobile-0", "fixed-0", traffic_class="data"))
        sender.send(make_packet("mobile-0", "fixed-0", traffic_class="control"))
        engine.run_until_idle()
        stats = hybrid.stats_of("mobile-0")
        assert stats.sent_data == 1
        assert stats.sent_control == 1
        assert stats.sent_total == 2


class TestNativeMulticast:
    def test_wired_multicast_single_transmission(self, engine):
        network = Network(engine, native_multicast_wired=True)
        for index in range(3):
            network.add_fixed_node(f"fixed-{index}")
        received = []
        for index in (1, 2):
            network.node(f"fixed-{index}").bind_port(
                "data", lambda pkt: received.append(pkt.dst))
        network.node("fixed-0").send(
            make_packet("fixed-0", ("fixed-0", "fixed-1", "fixed-2")))
        engine.run_until_idle()
        assert len(received) == 2  # self excluded
        assert network.stats_of("fixed-0").sent_total == 1  # ONE transmission

    def test_multicast_across_segments_rejected(self, hybrid):
        with pytest.raises(ValueError, match="native multicast"):
            hybrid.node("mobile-0").send(
                make_packet("mobile-0", ("fixed-0", "mobile-1")))

    def test_empty_destination_tuple_rejected(self, engine):
        network = Network(engine, native_multicast_wired=True)
        network.add_fixed_node("a")
        with pytest.raises(ValueError, match="no receivers"):
            network.node("a").send(make_packet("a", ()))

    def test_sender_alone_in_own_destination_tuple_rejected(self, engine):
        """Self-only multicast is an empty fan-out, same as ``()``."""
        network = Network(engine, native_multicast_wired=True)
        network.add_fixed_node("a")
        with pytest.raises(ValueError, match="no receivers"):
            network.node("a").send(make_packet("a", ("a",)))

    def test_sender_in_destination_tuple_excluded_from_fanout(self, engine):
        """A sender listed in its own dst tuple is legal — the loopback is
        the upper layers' business, the NIC only reaches the others."""
        network = Network(engine, native_multicast_wired=True)
        for name in ("a", "b", "c"):
            network.add_fixed_node(name)
        received = []
        network.node("b").bind_port("data", received.append)
        network.node("c").bind_port("data", received.append)
        network.node("a").send(make_packet("a", ("a", "b", "c")))
        engine.run_until_idle()
        assert len(received) == 2
        assert network.stats_of("a").recv_total == 0
        assert network.stats_of("a").sent_total == 1

    def test_mixed_fixed_mobile_destinations_rejected(self, engine):
        """Mixed-segment multicast is illegal even with both native
        mechanisms enabled: nothing spans the access point."""
        network = Network(engine, native_multicast_wired=True,
                          wireless_broadcast=True)
        network.add_fixed_node("f")
        network.add_mobile_node("m")
        network.add_fixed_node("src")
        with pytest.raises(ValueError, match="native multicast"):
            network.node("src").send(make_packet("src", ("f", "m")))

    def test_wired_multicast_disabled_by_default(self, engine):
        network = Network(engine)
        network.add_fixed_node("a")
        network.add_fixed_node("b")
        with pytest.raises(ValueError):
            network.node("a").send(make_packet("a", ("a", "b")))

    def test_adhoc_broadcast_when_enabled(self, engine):
        network = Network(engine, wireless_broadcast=True)
        for index in range(3):
            network.add_mobile_node(f"mobile-{index}")
        received = []
        for index in (1, 2):
            network.node(f"mobile-{index}").bind_port(
                "data", received.append)
        network.node("mobile-0").send(
            make_packet("mobile-0", ("mobile-0", "mobile-1", "mobile-2")))
        engine.run_until_idle()
        assert len(received) == 2
        assert network.stats_of("mobile-0").sent_total == 1

    def test_per_receiver_message_isolation(self, engine):
        network = Network(engine, native_multicast_wired=True)
        for index in range(3):
            network.add_fixed_node(f"fixed-{index}")
        payloads = []

        def receive_and_mutate(pkt):
            pkt.message.push_header("local-mutation")
            payloads.append(len(pkt.message.headers))

        network.node("fixed-1").bind_port("data", receive_and_mutate)
        network.node("fixed-2").bind_port("data", receive_and_mutate)
        network.node("fixed-0").send(
            make_packet("fixed-0", ("fixed-1", "fixed-2")))
        engine.run_until_idle()
        assert payloads == [1, 1]  # each saw a fresh header stack


class TestLoss:
    def test_bernoulli_loss_drops_packets(self, engine):
        rng = random.Random(1)
        network = Network(engine, wireless=LinkParams(
            latency_s=0.002, bandwidth_bps=11e6, loss=BernoulliLoss(0.5, rng)))
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        received = []
        network.node("f0").bind_port("data", received.append)
        for _ in range(200):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert 40 < len(received) < 160  # ~50% through one lossy hop
        assert network.lost_packets == 200 - len(received)

    def test_zero_loss_delivers_everything(self, engine):
        network = Network(engine, wireless=LinkParams(
            loss=BernoulliLoss(0.0, random.Random(1))))
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        received = []
        network.node("f0").bind_port("data", received.append)
        for _ in range(50):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert len(received) == 50


class TestFailureInjection:
    def test_crashed_node_does_not_send(self, hybrid, engine):
        hybrid.crash_node("mobile-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert hybrid.stats_of("mobile-0").sent_total == 0
        assert hybrid.stats_of("mobile-0").dropped_packets == 1

    def test_crashed_node_does_not_receive(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.crash_node("fixed-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert received == []

    def test_recovery_restores_node(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.crash_node("fixed-0")
        hybrid.recover_node("fixed-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1

    def test_partition_blocks_cross_group_traffic(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.partition({"mobile-0", "mobile-1"}, {"fixed-0"})
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert received == []
        assert hybrid.lost_packets == 1
        hybrid.heal_partition()
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1


class TestRuntimeTopologyMutation:
    def test_move_node_changes_segment_and_routing(self, hybrid, engine):
        delivered_at = {}
        hybrid.node("fixed-0").bind_port(
            "data", lambda pkt: delivered_at.setdefault("t", engine.now()))
        hybrid.move_node("mobile-0", NodeKind.FIXED)
        assert hybrid.node("mobile-0").is_fixed
        assert hybrid.fixed_ids() == ["fixed-0", "mobile-0"]
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        # Wired-only path now: one 0.5 ms hop, not wireless + wired.
        assert delivered_at["t"] < 0.002

    def test_move_to_mobile_gets_default_battery(self, hybrid):
        assert hybrid.node("fixed-0").battery is None
        hybrid.move_node("fixed-0", NodeKind.MOBILE)
        assert hybrid.node("fixed-0").battery is not None

    def test_docked_node_ignores_depleted_battery(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0", battery=Battery(capacity_mj=0.5))
        network.node("m0").battery.consume_tx(10_000, now=0.0)
        assert not network.node("m0").alive
        network.move_node("m0", NodeKind.FIXED)
        assert network.node("m0").alive  # mains-powered on the wire

    def test_move_is_idempotent_and_cheap(self, hybrid):
        epoch = hybrid.topology_epoch
        hybrid.move_node("fixed-0", NodeKind.FIXED)  # already fixed
        assert hybrid.topology_epoch == epoch

    def test_remove_node_keeps_stats_and_loses_traffic(self, hybrid, engine):
        hybrid.node("fixed-0").bind_port("data", lambda pkt: None)
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        hybrid.remove_node("mobile-0")
        assert hybrid.node_ids() == ["fixed-0", "mobile-1"]
        assert hybrid.stats_of("mobile-0").sent_total == 1  # retained
        hybrid.node("fixed-0").send(make_packet("fixed-0", "mobile-0"))
        engine.run_until_idle()
        assert hybrid.lost_packets == 1
        with pytest.raises(ValueError):
            hybrid.add_fixed_node("mobile-0")  # the id stays burned

    def test_loss_model_swap_is_live(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        received = []
        network.node("f0").bind_port("data", received.append)
        network.set_wireless_loss(BernoulliLoss(1.0, random.Random(1)))
        network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert received == []
        network.set_wireless_loss(NoLoss())
        network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert len(received) == 1

    def test_topology_listeners_observe_every_mutation(self, hybrid):
        changes: list[TopologyChange] = []
        hybrid.subscribe_topology(changes.append)
        hybrid.move_node("mobile-0", NodeKind.FIXED)
        hybrid.crash_node("mobile-1")
        hybrid.recover_node("mobile-1")
        hybrid.set_wireless_loss(NoLoss())
        hybrid.partition({"fixed-0"}, {"mobile-0", "mobile-1"})
        hybrid.heal_partition()
        hybrid.remove_node("mobile-1")
        kinds = [change.kind for change in changes]
        assert kinds == ["move", "crash", "recover", "loss", "partition",
                         "heal", "remove"]
        epochs = [change.epoch for change in changes]
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)

    def test_unsubscribed_listener_stops_observing(self, hybrid):
        changes = []
        hybrid.subscribe_topology(changes.append)
        hybrid.crash_node("mobile-0")
        hybrid.unsubscribe_topology(changes.append)
        hybrid.recover_node("mobile-0")
        assert len(changes) == 1


class TestMidFlightDropAccounting:
    """Crash-vs-partition drops mid-flight count identically: one network
    loss plus one receiver-side drop, whichever way the packet died."""

    def _send_and(self, engine, network, mutate):
        received = []
        network.node("f0").bind_port("data", received.append)
        network.node("m0").send(make_packet("m0", "f0"))
        mutate()  # while the packet is in the air
        engine.run_until_idle()
        assert received == []
        return received

    def test_crash_mid_flight(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        self._send_and(engine, network,
                       lambda: network.crash_node("f0"))
        assert network.lost_packets == 1
        assert network.stats_of("f0").dropped_packets == 1

    def test_partition_mid_flight(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        self._send_and(engine, network,
                       lambda: network.partition({"m0"}, {"f0"}))
        assert network.lost_packets == 1
        assert network.stats_of("f0").dropped_packets == 1

    def test_both_paths_account_identically(self, engine):
        def run(mutate_name):
            eng = SimEngine()
            network = Network(eng)
            network.add_mobile_node("m0")
            network.add_fixed_node("f0")
            network.node("f0").bind_port("data", lambda pkt: None)
            network.node("m0").send(make_packet("m0", "f0"))
            if mutate_name == "crash":
                network.crash_node("f0")
            else:
                network.partition({"m0"}, {"f0"})
            eng.run_until_idle()
            return (network.lost_packets, network.delivered_packets,
                    network.stats_of("f0").dropped_packets)

        assert run("crash") == run("partition")


class TestEnergy:
    def test_tx_and_rx_drain_battery(self, hybrid, engine):
        hybrid.node("mobile-1").bind_port("data", lambda pkt: None)
        sender = hybrid.node("mobile-0")
        receiver = hybrid.node("mobile-1")
        before_tx = sender.battery.level_mj
        before_rx = receiver.battery.level_mj
        sender.send(make_packet("mobile-0", "mobile-1"))
        engine.run_until_idle()
        assert sender.battery.level_mj < before_tx
        assert receiver.battery.level_mj < before_rx
        # Transmission costs more than reception.
        assert (before_tx - sender.battery.level_mj) > \
            (before_rx - receiver.battery.level_mj)

    def test_depleted_battery_stops_node(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0", battery=Battery(capacity_mj=0.5))
        network.add_fixed_node("f0")
        network.node("f0").bind_port("data", lambda pkt: None)
        for _ in range(10):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        stats = network.stats_of("m0")
        assert stats.sent_total < 10
        assert not network.node("m0").alive
        assert network.node("m0").battery.depleted_at is not None
