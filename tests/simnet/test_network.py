"""Topology, routing, loss, energy and failure injection."""

from __future__ import annotations

import random

import pytest

from repro.kernel import Message, SendableEvent
from repro.simnet import (Battery, BernoulliLoss, LinkParams, Network,
                          NodeKind, NoLoss, Packet, SimEngine)


def make_packet(src: str, dst, payload=b"x" * 100, port="data",
                traffic_class="data") -> Packet:
    return Packet(src=src, dst=dst, port=port, event_cls=SendableEvent,
                  message=Message(payload=payload),
                  traffic_class=traffic_class)


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def hybrid(engine):
    """1 fixed + 2 mobile nodes, no loss."""
    network = Network(engine, seed=7)
    network.add_fixed_node("fixed-0")
    network.add_mobile_node("mobile-0")
    network.add_mobile_node("mobile-1")
    return network


class TestTopology:
    def test_duplicate_node_id_rejected(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.add_fixed_node("fixed-0")

    def test_node_kind_queries(self, hybrid):
        assert hybrid.fixed_ids() == ["fixed-0"]
        assert hybrid.mobile_ids() == ["mobile-0", "mobile-1"]
        assert hybrid.node_ids() == ["fixed-0", "mobile-0", "mobile-1"]

    def test_mobile_gets_default_battery(self, hybrid):
        assert hybrid.node("mobile-0").battery is not None
        assert hybrid.node("fixed-0").battery is None

    def test_hop_latency_ordering(self, hybrid, engine):
        """mobile→mobile (2 wireless hops) is slower than mobile→fixed."""
        delivered = {}
        for dst in ("fixed-0", "mobile-1"):
            node = hybrid.node(dst)
            node.bind_port("data", lambda pkt, d=dst: delivered.setdefault(
                d, engine.now()))
        sender = hybrid.node("mobile-0")
        sender.send(make_packet("mobile-0", "fixed-0"))
        sender.send(make_packet("mobile-0", "mobile-1"))
        engine.run_until_idle()
        assert delivered["fixed-0"] < delivered["mobile-1"]


class TestUnicast:
    def test_delivery_and_counters(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1
        assert hybrid.stats_of("mobile-0").sent_total == 1
        assert hybrid.stats_of("fixed-0").recv_total == 1
        assert hybrid.delivered_packets == 1

    def test_unknown_destination_is_lost(self, hybrid, engine):
        hybrid.node("mobile-0").send(make_packet("mobile-0", "ghost"))
        engine.run_until_idle()
        assert hybrid.lost_packets == 1

    def test_unbound_port_counts_drop(self, hybrid, engine):
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0",
                                                 port="nowhere"))
        engine.run_until_idle()
        assert hybrid.stats_of("fixed-0").dropped_packets == 1
        assert hybrid.stats_of("fixed-0").snapshot()["dropped"] == 1

    def test_traffic_class_counted_separately(self, hybrid, engine):
        hybrid.node("fixed-0").bind_port("data", lambda pkt: None)
        sender = hybrid.node("mobile-0")
        sender.send(make_packet("mobile-0", "fixed-0", traffic_class="data"))
        sender.send(make_packet("mobile-0", "fixed-0", traffic_class="control"))
        engine.run_until_idle()
        stats = hybrid.stats_of("mobile-0")
        assert stats.sent_data == 1
        assert stats.sent_control == 1
        assert stats.sent_total == 2


class TestNativeMulticast:
    def test_wired_multicast_single_transmission(self, engine):
        network = Network(engine, native_multicast_wired=True)
        for index in range(3):
            network.add_fixed_node(f"fixed-{index}")
        received = []
        for index in (1, 2):
            network.node(f"fixed-{index}").bind_port(
                "data", lambda pkt: received.append(pkt.dst))
        network.node("fixed-0").send(
            make_packet("fixed-0", ("fixed-0", "fixed-1", "fixed-2")))
        engine.run_until_idle()
        assert len(received) == 2  # self excluded
        assert network.stats_of("fixed-0").sent_total == 1  # ONE transmission

    def test_multicast_across_segments_rejected(self, hybrid):
        with pytest.raises(ValueError, match="native multicast"):
            hybrid.node("mobile-0").send(
                make_packet("mobile-0", ("fixed-0", "mobile-1")))

    def test_wired_multicast_disabled_by_default(self, engine):
        network = Network(engine)
        network.add_fixed_node("a")
        network.add_fixed_node("b")
        with pytest.raises(ValueError):
            network.node("a").send(make_packet("a", ("a", "b")))

    def test_adhoc_broadcast_when_enabled(self, engine):
        network = Network(engine, wireless_broadcast=True)
        for index in range(3):
            network.add_mobile_node(f"mobile-{index}")
        received = []
        for index in (1, 2):
            network.node(f"mobile-{index}").bind_port(
                "data", received.append)
        network.node("mobile-0").send(
            make_packet("mobile-0", ("mobile-0", "mobile-1", "mobile-2")))
        engine.run_until_idle()
        assert len(received) == 2
        assert network.stats_of("mobile-0").sent_total == 1

    def test_per_receiver_message_isolation(self, engine):
        network = Network(engine, native_multicast_wired=True)
        for index in range(3):
            network.add_fixed_node(f"fixed-{index}")
        payloads = []

        def receive_and_mutate(pkt):
            pkt.message.push_header("local-mutation")
            payloads.append(len(pkt.message.headers))

        network.node("fixed-1").bind_port("data", receive_and_mutate)
        network.node("fixed-2").bind_port("data", receive_and_mutate)
        network.node("fixed-0").send(
            make_packet("fixed-0", ("fixed-1", "fixed-2")))
        engine.run_until_idle()
        assert payloads == [1, 1]  # each saw a fresh header stack


class TestLoss:
    def test_bernoulli_loss_drops_packets(self, engine):
        rng = random.Random(1)
        network = Network(engine, wireless=LinkParams(
            latency_s=0.002, bandwidth_bps=11e6, loss=BernoulliLoss(0.5, rng)))
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        received = []
        network.node("f0").bind_port("data", received.append)
        for _ in range(200):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert 40 < len(received) < 160  # ~50% through one lossy hop
        assert network.lost_packets == 200 - len(received)

    def test_zero_loss_delivers_everything(self, engine):
        network = Network(engine, wireless=LinkParams(
            loss=BernoulliLoss(0.0, random.Random(1))))
        network.add_mobile_node("m0")
        network.add_fixed_node("f0")
        received = []
        network.node("f0").bind_port("data", received.append)
        for _ in range(50):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        assert len(received) == 50


class TestFailureInjection:
    def test_crashed_node_does_not_send(self, hybrid, engine):
        hybrid.crash_node("mobile-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert hybrid.stats_of("mobile-0").sent_total == 0
        assert hybrid.stats_of("mobile-0").dropped_packets == 1

    def test_crashed_node_does_not_receive(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.crash_node("fixed-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert received == []

    def test_recovery_restores_node(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.crash_node("fixed-0")
        hybrid.recover_node("fixed-0")
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1

    def test_partition_blocks_cross_group_traffic(self, hybrid, engine):
        received = []
        hybrid.node("fixed-0").bind_port("data", received.append)
        hybrid.partition({"mobile-0", "mobile-1"}, {"fixed-0"})
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert received == []
        assert hybrid.lost_packets == 1
        hybrid.heal_partition()
        hybrid.node("mobile-0").send(make_packet("mobile-0", "fixed-0"))
        engine.run_until_idle()
        assert len(received) == 1


class TestEnergy:
    def test_tx_and_rx_drain_battery(self, hybrid, engine):
        hybrid.node("mobile-1").bind_port("data", lambda pkt: None)
        sender = hybrid.node("mobile-0")
        receiver = hybrid.node("mobile-1")
        before_tx = sender.battery.level_mj
        before_rx = receiver.battery.level_mj
        sender.send(make_packet("mobile-0", "mobile-1"))
        engine.run_until_idle()
        assert sender.battery.level_mj < before_tx
        assert receiver.battery.level_mj < before_rx
        # Transmission costs more than reception.
        assert (before_tx - sender.battery.level_mj) > \
            (before_rx - receiver.battery.level_mj)

    def test_depleted_battery_stops_node(self, engine):
        network = Network(engine)
        network.add_mobile_node("m0", battery=Battery(capacity_mj=0.5))
        network.add_fixed_node("f0")
        network.node("f0").bind_port("data", lambda pkt: None)
        for _ in range(10):
            network.node("m0").send(make_packet("m0", "f0"))
        engine.run_until_idle()
        stats = network.stats_of("m0")
        assert stats.sent_total < 10
        assert not network.node("m0").alive
        assert network.node("m0").battery.depleted_at is not None
