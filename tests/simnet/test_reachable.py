"""Coverage for ``Network.reachable`` — the partition-topology contract.

``reachable`` answers one question: can packets from ``src`` currently
reach ``dst``, considering partition topology only (loss and crash state
are separate axes).  The sharded layer leans on it twice — shard plans
derive groups from partition components, and the context layer filters
topology news through it — so the contract gets pinned here.
"""

from __future__ import annotations

from repro.simnet.engine import SimEngine
from repro.simnet.network import Network
from repro.simnet.node import NodeKind


def _network(*node_ids):
    network = Network(SimEngine())
    for node_id in node_ids:
        kind = NodeKind.MOBILE if node_id.startswith("m") else NodeKind.FIXED
        network.add_node(node_id, kind)
    return network


class TestUnpartitioned:
    def test_everyone_reaches_everyone(self):
        network = _network("f0", "f1", "m0")
        assert network.reachable("f0", "m0")
        assert network.reachable("m0", "f1")

    def test_self_reachability(self):
        network = _network("f0")
        assert network.reachable("f0", "f0")


class TestPartitioned:
    def test_same_group_reaches(self):
        network = _network("f0", "f1", "m0")
        network.partition({"f0", "f1"}, {"m0"})
        assert network.reachable("f0", "f1")
        assert network.reachable("f1", "f0")

    def test_cross_group_does_not_reach(self):
        network = _network("f0", "f1", "m0")
        network.partition({"f0", "f1"}, {"m0"})
        assert not network.reachable("f0", "m0")
        assert not network.reachable("m0", "f1")

    def test_self_reachability_inside_a_group(self):
        network = _network("f0", "m0")
        network.partition({"f0"}, {"m0"})
        assert network.reachable("f0", "f0")
        assert network.reachable("m0", "m0")

    def test_node_outside_every_group_reaches_nobody(self):
        network = _network("f0", "f1", "m0")
        network.partition({"f0"}, {"f1"})
        # m0 is in no group: unreachable from everyone, reaches no one —
        # not even itself (it has no component to stand in).
        assert not network.reachable("m0", "f0")
        assert not network.reachable("m0", "m0")
        # And nobody reaches into the void either.
        assert not network.reachable("f0", "m0")

    def test_partition_bumps_topology_epoch(self):
        network = _network("f0", "f1")
        epoch = network.topology_epoch
        network.partition({"f0"}, {"f1"})
        assert network.topology_epoch == epoch + 1


class TestHeal:
    def test_heal_restores_full_reachability(self):
        network = _network("f0", "f1", "m0")
        network.partition({"f0"}, {"f1", "m0"})
        assert not network.reachable("f0", "f1")
        network.heal_partition()
        assert network.reachable("f0", "f1")
        assert network.reachable("f0", "m0")
        assert network.reachable("m0", "f0")

    def test_repartition_replaces_previous_groups(self):
        network = _network("f0", "f1", "m0")
        network.partition({"f0"}, {"f1", "m0"})
        network.partition({"f0", "f1"}, {"m0"})
        assert network.reachable("f0", "f1")
        assert not network.reachable("f1", "m0")


class TestRemovedNodes:
    def test_removed_node_id_still_answers_by_group_membership(self):
        # Partition groups are id sets, not node references: a departed
        # node's id keeps answering by its (former) component.  Liveness
        # is a separate check — delivery tests it via SimNode.alive.
        network = _network("f0", "f1")
        network.partition({"f0", "f1"})
        network.remove_node("f1")
        assert network.reachable("f0", "f1")
        assert "f1" not in network.nodes
        assert "f1" in network.departed

    def test_unknown_id_without_partition_is_trivially_reachable(self):
        # No partition: reachable() is a pure topology predicate and does
        # not consult the roster at all.
        network = _network("f0")
        assert network.reachable("f0", "ghost")
        assert network.reachable("ghost", "f0")
