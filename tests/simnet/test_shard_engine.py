"""Unit proofs for the sharded engine: plans, windows, barrier merges.

The scenario-level determinism gate lives in
``tests/scenarios/test_sharded_parity.py``; this file pins the mechanics
with synthetic callbacks — where entries land, how conservative windows
chunk under a finite lookahead, the global ``(when, seq)`` order of a
barrier merge, and the causality guard on cross-shard posts.
"""

from __future__ import annotations

import math

import pytest

from repro.simnet.engine import HeapSimEngine, SimEngine
from repro.simnet.network import Network
from repro.simnet.node import NodeKind
from repro.simnet.shard import (CausalityError, CrossShardMailbox, ShardPlan,
                                ShardedSimEngine)


class TestShardPlan:
    def test_needs_at_least_one_group(self):
        with pytest.raises(ValueError, match="at least one group"):
            ShardPlan([])

    def test_rejects_node_in_two_groups(self):
        with pytest.raises(ValueError, match="more than one group"):
            ShardPlan([{"a", "b"}, {"b"}])

    def test_rejects_bad_links(self):
        with pytest.raises(ValueError, match="unknown group"):
            ShardPlan([{"a"}, {"b"}], links=[(0, 5, 0.1)])
        with pytest.raises(ValueError, match="not cross-group"):
            ShardPlan([{"a"}, {"b"}], links=[(1, 1, 0.1)])
        with pytest.raises(ValueError, match="positive"):
            ShardPlan([{"a"}, {"b"}], links=[(0, 1, 0.0)])

    def test_lookahead_is_min_link_latency(self):
        plan = ShardPlan([{"a"}, {"b"}, {"c"}],
                         links=[(0, 1, 0.5), (1, 2, 0.002)])
        assert plan.lookahead == 0.002

    def test_no_links_means_infinite_lookahead(self):
        assert ShardPlan([{"a"}, {"b"}]).lookahead == math.inf

    def test_single_group_plan_is_catch_all(self):
        plan = ShardPlan.single()
        assert plan.group_of("anything") == 0
        assert plan.group_of("else") == 0

    def test_multi_group_plan_is_strict(self):
        plan = ShardPlan([{"a"}, {"b"}])
        assert plan.group_of("a") == 0
        assert plan.group_of("b") == 1
        with pytest.raises(KeyError, match="not in any shard-plan group"):
            plan.group_of("stranger")

    def test_assignment_round_robins_groups_onto_shards(self):
        plan = ShardPlan([{"a"}, {"b"}, {"c"}, {"d"}, {"e"}], shard_count=2)
        assert plan.assignment() == ((0, 2, 4), (1, 3))

    def test_from_network_without_partitions_is_one_group(self):
        network = Network(SimEngine())
        network.add_node("x", NodeKind.FIXED)
        network.add_node("y", NodeKind.MOBILE)
        plan = ShardPlan.from_network(network)
        assert len(plan.groups) == 1
        assert plan.lookahead == math.inf

    def test_from_network_follows_partition_components(self):
        network = Network(SimEngine())
        for node_id in ("a", "b", "c", "d"):
            network.add_node(node_id, NodeKind.FIXED)
        network.partition({"a", "b"}, {"c"})
        plan = ShardPlan.from_network(network)
        # {a,b} and {c} from the partition; d (in no group — unreachable
        # from everyone) becomes a singleton.
        assert sorted(sorted(g) for g in plan.groups) == \
            [["a", "b"], ["c"], ["d"]]
        assert plan.links == ()

    def test_for_groups_measures_min_cross_latency(self):
        network = Network(SimEngine())
        network.add_node("f0", NodeKind.FIXED)
        network.add_node("f1", NodeKind.FIXED)
        network.add_node("m0", NodeKind.MOBILE)
        plan = ShardPlan.for_groups(network, [{"f0"}, {"f1", "m0"}])
        assert len(plan.links) == 1
        (a, b, latency), = plan.links
        # The cheapest cross pair is fixed→fixed: one wired hop.
        assert (a, b) == (0, 1)
        assert latency == network.wired.latency_s
        assert plan.lookahead == latency


class TestMailbox:
    def test_counts_traffic_by_pair(self):
        mailbox = CrossShardMailbox()
        mailbox.post(0, 1, when=2.0, dst_now=1.0, size_bytes=7)
        mailbox.post(0, 1, when=3.0, dst_now=1.0, size_bytes=5)
        mailbox.post(1, 0, when=2.5, dst_now=2.5, size_bytes=1)
        assert mailbox.posted == 3
        assert mailbox.bytes == 13
        assert mailbox.by_pair == {(0, 1): 2, (1, 0): 1}

    def test_arrival_in_the_past_is_a_causality_error(self):
        mailbox = CrossShardMailbox()
        with pytest.raises(CausalityError, match="lookahead bound is wrong"):
            mailbox.post(0, 1, when=1.0, dst_now=2.0, size_bytes=10)


class TestFacadeSurface:
    def test_outside_scheduling_lands_on_control_engine(self):
        engine = ShardedSimEngine()
        fired = []
        engine.call_later(1.0, lambda: fired.append(engine.now()))
        engine.call_at(2.0, lambda: fired.append(engine.now()))
        assert engine.pending == 2
        engine.run_until(3.0)
        assert fired == [1.0, 2.0]
        assert engine.now() == 3.0
        assert engine.fired_count == 2
        assert engine.pending == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative delay"):
            ShardedSimEngine().call_later(-0.1, lambda: None)

    def test_callbacks_reschedule_onto_their_own_shard(self):
        plan = ShardPlan([{"a"}, {"b"}])
        engine = ShardedSimEngine(plan=plan)
        shard_a = engine.engine_for("a")
        shard_b = engine.engine_for("b")
        assert shard_a is not shard_b

        def tick():
            # "Schedule where you stand": inside a's window this must
            # land back on shard a, not on the control engine.
            if engine.now() < 3.0:
                engine.call_later(1.0, tick)

        shard_a.call_at(1.0, tick)
        engine.run_until(5.0)
        assert shard_a.fired_count == 3  # t = 1, 2, 3
        assert shard_b.fired_count == 0
        assert engine._control.fired_count == 0

    def test_run_until_idle_drains_everything(self):
        plan = ShardPlan([{"a"}, {"b"}])
        engine = ShardedSimEngine(plan=plan)
        fired = []
        engine.engine_for("a").call_at(4.0, lambda: fired.append("a"))
        engine.engine_for("b").call_at(2.0, lambda: fired.append("b"))
        engine.call_at(3.0, lambda: fired.append("control"))
        engine.run_until_idle()
        assert fired == ["b", "control", "a"]
        assert engine.pending == 0


class TestBarrierMerge:
    def test_same_instant_entries_fire_in_global_seq_order(self):
        plan = ShardPlan([{"a"}, {"b"}])
        engine = ShardedSimEngine(plan=plan)
        order = []
        engine.engine_for("a").call_at(2.0, lambda: order.append("a"))
        engine.engine_for("b").call_at(2.0, lambda: order.append("b"))
        engine.call_at(2.0, lambda: order.append("control"))
        engine.run_until(2.0)
        # Allocation order is a, b, control — the merge must reproduce it.
        assert order == ["a", "b", "control"]

    def test_zero_delay_cascade_fires_within_the_merge(self):
        engine = ShardedSimEngine()
        order = []

        def barrier_event():
            order.append("event")
            engine.call_later(0.0, lambda: order.append("cascade"))

        engine.call_at(1.0, barrier_event)
        engine.run_until(1.0)
        assert order == ["event", "cascade"]
        assert engine.now() == 1.0

    def test_merge_commits_the_barrier_clock_to_every_shard(self):
        plan = ShardPlan([{"a"}, {"b"}])
        engine = ShardedSimEngine(plan=plan)
        shard_a = engine.engine_for("a")
        seen = []
        # Shard a last fires at 1.25; the control event at 2.0 then
        # schedules onto shard a — against the *barrier* clock, not the
        # shard's stale 1.25.
        shard_a.call_at(1.25, lambda: None)
        engine.call_at(
            2.0, lambda: shard_a.call_later(0.5, lambda: seen.append(
                engine.now())))
        engine.run_until(3.0)
        assert seen == [2.5]


class TestConservativeWindows:
    def test_finite_lookahead_chunks_windows(self):
        plan = ShardPlan([{"a"}, {"b"}], links=[(0, 1, 0.5)])
        engine = ShardedSimEngine(plan=plan)
        engine.engine_for("a").call_at(1.9, lambda: None)
        engine.run_until(2.0)
        # [0, 2.0) in 0.5 chunks = 4 windows per group.
        assert engine.windows == 8

    def test_cross_shard_arrival_respects_lookahead(self):
        plan = ShardPlan([{"a"}, {"b"}], links=[(0, 1, 0.5)])
        engine = ShardedSimEngine(plan=plan)
        shard_b = engine.engine_for("b")
        arrivals = []

        def send_from_a():
            when = engine.now() + 0.5  # exactly the lookahead bound
            engine.cross_post(engine.engine_for("a"), shard_b, when, 64)
            shard_b.call_at(when, lambda: arrivals.append(engine.now()))

        engine.engine_for("a").call_at(0.25, send_from_a)
        engine.run_until(2.0)
        assert arrivals == [0.75]
        assert engine.mailbox.posted == 1
        assert engine.mailbox.by_pair == {(0, 1): 1}

    def test_understated_latency_raises_causality_error(self):
        # The plan promises >= 0.5s cross-shard latency; a 0.1s packet
        # sent mid-window lands in the destination's executed past.
        # Group b is listed first so its window runs (and its clock
        # advances past the bogus arrival) before a posts.
        plan = ShardPlan([{"b"}, {"a"}], links=[(0, 1, 0.5)])
        engine = ShardedSimEngine(plan=plan)
        shard_b = engine.engine_for("b")
        shard_b.call_at(0.95, lambda: None)  # b's clock reaches 0.95

        def lying_send():
            engine.cross_post(engine.engine_for("a"), shard_b,
                              engine.now() + 0.1, 64)

        engine.engine_for("a").call_at(0.55, lying_send)
        with pytest.raises(CausalityError):
            engine.run_until(1.0)


class TestDeterminism:
    @staticmethod
    def _synthetic_run(shards, engine_factory=SimEngine):
        plan = ShardPlan([{"a"}, {"b"}, {"c"}], links=[(0, 1, 0.25)],
                         shard_count=shards)
        engine = ShardedSimEngine(plan=plan, engine_factory=engine_factory)
        order = []

        def tick(label, period):
            def fire():
                order.append((label, round(engine.now(), 6)))
                if engine.now() + period <= 4.0:
                    engine.call_later(period, fire)
            return fire

        for index, label in enumerate(("a", "b", "c")):
            engine.engine_for(label).call_at(0.1 + 0.05 * index,
                                             tick(label, 0.3 + 0.1 * index))
        engine.call_at(1.7, lambda: order.append(("control", 1.7)))
        engine.run_until(4.5)
        return order

    def test_shard_count_never_changes_the_history(self):
        baseline = self._synthetic_run(1)
        assert self._synthetic_run(2) == baseline
        assert self._synthetic_run(4) == baseline

    def test_heap_sub_engines_agree_with_wheels(self):
        assert self._synthetic_run(2, HeapSimEngine) == self._synthetic_run(2)
