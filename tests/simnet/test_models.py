"""Unit tests for loss models, the energy model and the stats counters."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Message, SendableEvent
from repro.simnet import (Battery, BernoulliLoss, EnergyParams,
                          GilbertElliottLoss, NodeStats, NoLoss, Packet,
                          aggregate)


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        assert not any(model.is_lost(100) for _ in range(1000))

    def test_bernoulli_extremes(self):
        rng = random.Random(0)
        assert not any(BernoulliLoss(0.0, rng).is_lost(1) for _ in range(100))
        assert all(BernoulliLoss(1.0, rng).is_lost(1) for _ in range(100))

    def test_bernoulli_rate_approximation(self):
        model = BernoulliLoss(0.3, random.Random(42))
        losses = sum(model.is_lost(100) for _ in range(10_000))
        assert 0.27 < losses / 10_000 < 0.33

    def test_bernoulli_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(0))
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1, random.Random(0))

    def test_gilbert_elliott_burstiness(self):
        """Losses cluster: the conditional loss probability after a loss is
        much higher than the marginal rate."""
        model = GilbertElliottLoss(random.Random(7), p_good=0.001,
                                   p_bad=0.5, p_good_to_bad=0.02,
                                   p_bad_to_good=0.2)
        outcomes = [model.is_lost(100) for _ in range(50_000)]
        marginal = sum(outcomes) / len(outcomes)
        after_loss = [b for a, b in zip(outcomes, outcomes[1:]) if a]
        conditional = sum(after_loss) / len(after_loss)
        assert conditional > 2 * marginal

    def test_gilbert_elliott_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), p_bad=1.2)

    def test_gilbert_elliott_deterministic_given_seed(self):
        def run(seed):
            model = GilbertElliottLoss(random.Random(seed))
            return [model.is_lost(50) for _ in range(200)]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestLossModelProperties:
    """Property-based guarantees the adaptation policies lean on."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           sizes=st.lists(st.integers(min_value=0, max_value=65536),
                          min_size=1, max_size=200))
    def test_zero_probability_bernoulli_never_loses(self, seed, sizes):
        model = BernoulliLoss(0.0, random.Random(seed))
        assert not any(model.is_lost(size) for size in sizes)

    @settings(max_examples=60, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=0, max_value=65536),
                          min_size=1, max_size=200))
    def test_no_loss_never_loses(self, sizes):
        model = NoLoss()
        assert not any(model.is_lost(size) for size in sizes)

    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_gilbert_elliott_converges_to_stationary_rate(self, seed):
        """The empirical loss rate converges to the chain's stationary
        distribution: with the per-packet transition matrix, the fraction
        of draws made in the bad state tends to g2b/(g2b + b2g), and the
        loss rate to the state-weighted mixture of p_good and p_bad."""
        p_good, p_bad = 0.01, 0.4
        g2b, b2g = 0.05, 0.2
        pi_bad = g2b / (g2b + b2g)
        expected = (1.0 - pi_bad) * p_good + pi_bad * p_bad
        model = GilbertElliottLoss(random.Random(seed), p_good=p_good,
                                   p_bad=p_bad, p_good_to_bad=g2b,
                                   p_bad_to_good=b2g)
        draws = 60_000
        losses = sum(model.is_lost(100) for _ in range(draws))
        empirical = losses / draws
        assert abs(empirical - expected) < 0.15 * expected, \
            f"empirical {empirical:.4f} vs stationary {expected:.4f}"

    @pytest.mark.parametrize("seed", [3, 9])
    def test_gilbert_elliott_extreme_chains_degenerate_correctly(self, seed):
        """A chain pinned in one state reduces to Bernoulli of that
        state's probability."""
        pinned_good = GilbertElliottLoss(random.Random(seed), p_good=0.0,
                                         p_bad=1.0, p_good_to_bad=0.0,
                                         p_bad_to_good=1.0)
        assert not any(pinned_good.is_lost(10) for _ in range(2000))
        pinned_bad = GilbertElliottLoss(random.Random(seed), p_good=0.0,
                                        p_bad=1.0, p_good_to_bad=1.0,
                                        p_bad_to_good=0.0)
        pinned_bad.is_lost(10)  # first draw may still be in the good state
        assert all(pinned_bad.is_lost(10) for _ in range(2000))


class TestBattery:
    def test_transmission_costs_scale_with_size(self):
        small = Battery(capacity_mj=1000.0)
        large = Battery(capacity_mj=1000.0)
        small.consume_tx(10, 0.0)
        large.consume_tx(10_000, 0.0)
        assert large.level_mj < small.level_mj

    def test_tx_costs_more_than_rx(self):
        params = EnergyParams()
        tx = Battery(capacity_mj=1000.0, params=params)
        rx = Battery(capacity_mj=1000.0, params=params)
        tx.consume_tx(500, 0.0)
        rx.consume_rx(500, 0.0)
        assert tx.level_mj < rx.level_mj

    def test_depletion_records_time_and_clamps(self):
        battery = Battery(capacity_mj=1.0)
        battery.consume_tx(10_000, now=42.0)
        assert battery.level_mj == 0.0
        assert not battery.alive
        assert battery.depleted_at == 42.0

    def test_dead_battery_consumes_nothing_further(self):
        battery = Battery(capacity_mj=0.5)
        battery.consume_tx(10_000, now=1.0)
        depleted_at = battery.depleted_at
        battery.consume_tx(10_000, now=2.0)
        assert battery.depleted_at == depleted_at

    def test_fraction(self):
        battery = Battery(capacity_mj=100.0,
                          params=EnergyParams(tx_per_packet_mj=50.0,
                                              tx_per_byte_mj=0.0))
        assert battery.fraction == 1.0
        battery.consume_tx(0, 0.0)
        assert battery.fraction == pytest.approx(0.5)

    @settings(max_examples=40, deadline=None)
    @given(events=st.lists(
        st.tuples(st.sampled_from(["tx", "rx"]),
                  st.integers(min_value=0, max_value=2000)),
        max_size=50))
    def test_level_monotonically_decreases(self, events):
        battery = Battery(capacity_mj=10_000.0)
        previous = battery.level_mj
        for kind, size in events:
            if kind == "tx":
                battery.consume_tx(size, 0.0)
            else:
                battery.consume_rx(size, 0.0)
            assert battery.level_mj <= previous
            previous = battery.level_mj


def _packet(src="a", dst="b", traffic_class="data", size=100):
    return Packet(src=src, dst=dst, port="p", event_cls=SendableEvent,
                  message=Message(payload=b"x" * size),
                  traffic_class=traffic_class)


class TestNodeStats:
    def test_snapshot_shape(self):
        stats = NodeStats("n")
        stats.record_sent(_packet())
        stats.record_sent(_packet(traffic_class="control"))
        stats.record_received(_packet())
        snapshot = stats.snapshot()
        assert snapshot["sent_total"] == 2
        assert snapshot["sent_data"] == 1
        assert snapshot["sent_control"] == 1
        assert snapshot["recv_total"] == 1
        assert snapshot["sent_by_event"] == {"SendableEvent": 2}

    def test_bytes_accounting(self):
        stats = NodeStats("n")
        packet = _packet(size=200)
        stats.record_sent(packet)
        assert stats.sent_bytes_total == packet.size_bytes

    def test_reset_zeroes_everything(self):
        stats = NodeStats("n")
        stats.record_sent(_packet())
        stats.record_dropped()
        stats.reset()
        assert stats.sent_total == 0
        assert stats.dropped_packets == 0

    def test_aggregate_sums_across_nodes(self):
        a, b = NodeStats("a"), NodeStats("b")
        a.record_sent(_packet())
        b.record_sent(_packet(traffic_class="control"))
        b.record_received(_packet())
        total = aggregate([a, b])
        assert total["sent_total"] == 2
        assert total["sent_control"] == 1
        assert total["recv_total"] == 1


class TestPacket:
    def test_size_includes_overhead(self):
        packet = _packet(size=100)
        assert packet.size_bytes > 100

    def test_multicast_detection(self):
        assert _packet(dst=("a", "b")).is_multicast
        assert not _packet(dst="a").is_multicast

    def test_copy_for_isolates_message(self):
        packet = _packet()
        dup = packet.copy_for("c")
        dup.message.push_header("mutation")
        assert packet.message.headers == []
        assert dup.dst == "c"
        assert dup.size_bytes == packet.size_bytes
