"""Batched same-slot delivery: engine primitives and network coalescing.

The batching contract has two halves:

* the **engine primitives** (``reserve_seq`` / ``schedule_at_seq`` /
  ``peek_due`` / ``advance_clock``) let a client pre-assign sequence
  numbers and later drain work at those exact ``(when, seq)`` positions —
  the sequence stream is bit-identical to scheduling one event per
  delivery;
* the **network** uses them to coalesce every pending delivery of the
  current timer-wheel slot into one engine event, draining in exact
  ``(when, seq)`` order so observable histories cannot change (the
  scenario-level proof lives in ``tests/scenarios/test_batching_parity``).
"""

from __future__ import annotations

import pytest

from repro.simnet import SimEngine
from repro.simnet.engine import SLOT_WIDTH_S, HeapSimEngine


class TestEnginePrimitives:
    @pytest.mark.parametrize("factory", [SimEngine, HeapSimEngine])
    def test_reserved_seqs_interleave_with_call_later(self, factory):
        # A reserved seq consumed later must order exactly where the
        # call_later it replaced would have: before anything scheduled
        # after the reservation at the same instant.
        engine = factory()
        fired = []
        reserved = engine.reserve_seq()
        engine.call_later(1.0, lambda: fired.append("after"))
        engine.schedule_at_seq(1.0, reserved, lambda: fired.append("reserved"))
        engine.run_until_idle()
        assert fired == ["reserved", "after"]

    @pytest.mark.parametrize("factory", [SimEngine, HeapSimEngine])
    def test_schedule_at_seq_rejects_the_past(self, factory):
        engine = factory()
        engine.call_later(2.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(ValueError):
            engine.schedule_at_seq(1.0, engine.reserve_seq(), lambda: None)

    def test_peek_due_exposes_the_current_batch_head(self):
        engine = SimEngine()
        seen = []

        def probe():
            seen.append(engine.peek_due())

        engine.call_later(0.0, probe)
        handle = engine.call_later(SLOT_WIDTH_S / 4, lambda: None)
        engine.run_until_idle()
        # While probe runs, the same-slot successor is visible as the head.
        assert seen == [(handle.when, handle.seq)]

    def test_peek_due_skips_cancelled_heads(self):
        engine = SimEngine()
        seen = []
        engine.call_later(0.0, lambda: seen.append(engine.peek_due()))
        engine.call_later(SLOT_WIDTH_S / 4, lambda: None).cancel()
        engine.run_until_idle()
        assert seen == [None]

    def test_peek_due_none_means_nothing_before_slot_end(self):
        # The wheel cannot see beyond the current slot; None from peek_due
        # promises only that everything else is at or past the slot end.
        engine = SimEngine()
        seen = []
        engine.call_later(0.0, lambda: seen.append(engine.peek_due()))
        engine.call_later(SLOT_WIDTH_S * 3, lambda: None)
        engine.run_until_idle()
        assert seen == [None]

    def test_advance_clock_moves_now_monotonically(self):
        engine = SimEngine()
        engine.advance_clock(1.5)
        assert engine.now() == 1.5
        engine.advance_clock(1.0)  # never backwards
        assert engine.now() == 1.5

    def test_run_deadline_visible_only_inside_run_until(self):
        import math
        engine = SimEngine()
        assert engine.run_deadline == math.inf
        seen = []
        engine.call_later(1.0, lambda: seen.append(engine.run_deadline))
        engine.run_until(5.0)
        assert seen == [5.0]
        assert engine.run_deadline == math.inf


class TestNetworkCoalescing:
    def _payloads(self, batched, sends=20):
        from tests.simnet.test_transport import build_node_stack

        from repro.simnet import Network

        engine = SimEngine()
        network = Network(engine, batched=batched)
        network.add_fixed_node("f0")
        network.add_fixed_node("f1")
        sender = build_node_stack(network, "f0").sessions[1]
        receiver = build_node_stack(network, "f1").sessions[1]
        for index in range(sends):
            sender.send({"kind": "chat", "n": index}, dest="f1")
        engine.run_until_idle()
        payloads = [event.message.payload for event in receiver.received]
        return payloads, engine.fired_count

    def test_batched_delivers_everything_with_fewer_events(self):
        got_batched, events_batched = self._payloads(batched=True)
        got_plain, events_plain = self._payloads(batched=False)
        assert len(got_batched) == len(got_plain) == 20
        assert events_batched < events_plain

    def test_delivery_payloads_identical_either_way(self):
        got_batched, _ = self._payloads(batched=True)
        got_plain, _ = self._payloads(batched=False)
        assert got_batched == got_plain
