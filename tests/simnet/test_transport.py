"""End-to-end: Appia channels talking across the simulated network."""

from __future__ import annotations

import pytest

from repro.kernel import (Direction, Layer, Message, QoS, SendableEvent,
                          Session)
from repro.simnet import (Network, SimEngine, SimTransportLayer,
                          SimTransportSession)


class AppData(SendableEvent):
    """Application-level event for these tests."""


class ControlPing(SendableEvent):
    traffic_class = "control"


class _AppSession(Session):
    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.received: list[SendableEvent] = []

    def handle(self, event):
        if isinstance(event, SendableEvent) and event.direction is Direction.UP:
            self.received.append(event)
            return
        event.go()

    def send(self, payload, dest, cls=AppData):
        event = cls(message=Message(payload=payload), dest=dest)
        self.send_down(event)


class _AppLayer(Layer):
    accepted_events = (SendableEvent,)
    provided_events = (AppData, ControlPing)
    session_class = _AppSession


def build_node_stack(network, node_id, channel_name="data"):
    """One app layer over a transport session attached to the node."""
    node = network.node(node_id)
    transport_layer = SimTransportLayer()
    transport_session = SimTransportSession(transport_layer, node=node)
    qos = QoS("stack", [transport_layer, _AppLayer()])
    channel = qos.create_channel(channel_name, node.kernel,
                                 preset_sessions={0: transport_session})
    channel.start()
    return channel


@pytest.fixture
def world():
    engine = SimEngine()
    network = Network(engine)
    network.add_fixed_node("f0")
    network.add_mobile_node("m0")
    return engine, network


class TestEndToEnd:
    def test_unicast_reaches_peer_app(self, world):
        engine, network = world
        build_node_stack(network, "f0")
        mobile_channel = build_node_stack(network, "m0")
        mobile_app = mobile_channel.sessions[1]
        mobile_app.send(b"hello", dest="f0")
        engine.run_until_idle()
        fixed_app = network.node("f0").kernel.find_channel("data").sessions[1]
        assert len(fixed_app.received) == 1
        assert fixed_app.received[0].message.payload == b"hello"

    def test_event_type_survives_the_wire(self, world):
        engine, network = world
        build_node_stack(network, "f0")
        mobile_channel = build_node_stack(network, "m0")
        mobile_channel.sessions[1].send(b"c", dest="f0", cls=ControlPing)
        engine.run_until_idle()
        fixed_app = network.node("f0").kernel.find_channel("data").sessions[1]
        assert type(fixed_app.received[0]) is ControlPing
        assert network.stats_of("m0").sent_control == 1

    def test_logical_source_reported(self, world):
        engine, network = world
        build_node_stack(network, "f0")
        mobile_channel = build_node_stack(network, "m0")
        mobile_channel.sessions[1].send(b"x", dest="f0")
        engine.run_until_idle()
        fixed_app = network.node("f0").kernel.find_channel("data").sessions[1]
        assert fixed_app.received[0].source == "m0"

    def test_header_stack_clean_after_transport(self, world):
        """The wire framing header must not leak to the application."""
        engine, network = world
        build_node_stack(network, "f0")
        mobile_channel = build_node_stack(network, "m0")
        mobile_channel.sessions[1].send(b"x", dest="f0")
        engine.run_until_idle()
        fixed_app = network.node("f0").kernel.find_channel("data").sessions[1]
        assert fixed_app.received[0].message.headers == []

    def test_missing_destination_raises(self, world):
        engine, network = world
        channel = build_node_stack(network, "m0")
        with pytest.raises(ValueError, match="no destination"):
            channel.sessions[1].send(b"x", dest=None)

    def test_sender_mutations_after_send_do_not_leak(self, world):
        engine, network = world
        build_node_stack(network, "f0")
        mobile_channel = build_node_stack(network, "m0")
        app = mobile_channel.sessions[1]
        event = AppData(message=Message(payload=[1, 2]), dest="f0")
        app.send_down(event)
        event.message.payload.append(3)  # mutate after handing to transport
        engine.run_until_idle()
        fixed_app = network.node("f0").kernel.find_channel("data").sessions[1]
        assert fixed_app.received[0].message.payload == [1, 2]


class TestChannelBinding:
    def test_one_transport_session_serves_two_channels(self, world):
        engine, network = world
        node = network.node("f0")
        transport_layer = SimTransportLayer()
        shared = SimTransportSession(transport_layer, node=node)
        for name in ("data", "ctrl"):
            qos = QoS(name, [transport_layer, _AppLayer()])
            qos.create_channel(name, node.kernel,
                               preset_sessions={0: shared}).start()
        assert node.bound_ports == ("ctrl", "data")

    def test_duplicate_channel_name_rejected(self, world):
        engine, network = world
        build_node_stack(network, "f0", channel_name="data")
        with pytest.raises(ValueError, match="already bound"):
            build_node_stack(network, "f0", channel_name="data")

    def test_close_unbinds_port(self, world):
        engine, network = world
        channel = build_node_stack(network, "f0")
        channel.close()
        assert network.node("f0").bound_ports == ()

    def test_reconfiguration_rebind_same_port(self, world):
        """Close the stack and deploy a new one with the same channel name."""
        engine, network = world
        old = build_node_stack(network, "f0")
        old.close()
        new = build_node_stack(network, "f0")
        assert new.state.value == "started"
        assert network.node("f0").bound_ports == ("data",)

    def test_unattached_transport_session_rejects_init(self, world):
        engine, network = world
        node = network.node("f0")
        transport_layer = SimTransportLayer()
        qos = QoS("stack", [transport_layer, _AppLayer()])
        channel = qos.create_channel("data", node.kernel)  # fresh session
        with pytest.raises(RuntimeError, match="no node attached"):
            channel.start()
