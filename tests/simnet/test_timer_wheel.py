"""Timer-wheel scheduling edge cases and wheel-vs-heap equivalence.

The wheel (:class:`SimEngine`) must be observably identical to the
reference heap scheduler (:class:`HeapSimEngine`): same firing order, same
``pending`` accounting, same validation.  These tests target the places
where a bucketed implementation could diverge — entries migrating between
the overflow heap, the wheel and the current batch; same-slot ordering;
and cancellation at every stage of that migration.
"""

from __future__ import annotations

import random

import pytest

from repro.simnet.engine import (SLOT_WIDTH_S, WHEEL_SLOTS, HeapSimEngine,
                                 SimEngine)

HORIZON_S = SLOT_WIDTH_S * WHEEL_SLOTS


class TestOverflowPromotion:
    def test_far_future_entry_takes_the_overflow_heap(self):
        engine = SimEngine()
        engine.call_later(HORIZON_S * 3, lambda: None)
        assert engine.overflow_scheduled == 1
        assert engine.pending == 1

    def test_near_future_entry_does_not(self):
        engine = SimEngine()
        engine.call_later(HORIZON_S / 2, lambda: None)
        assert engine.overflow_scheduled == 0

    def test_overflow_entry_fires_at_exact_time(self):
        engine = SimEngine()
        fired = []
        when = HORIZON_S * 2.5
        engine.call_at(when, lambda: fired.append(engine.now()))
        engine.run_until_idle()
        assert fired == [when]

    def test_overflow_and_wheel_interleave_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.call_at(HORIZON_S * 1.5, lambda: fired.append("far"))
        engine.call_at(1.0, lambda: fired.append("near"))

        def reschedule_near():
            fired.append("mid")
            # From t=1.0 the far entry is now within the horizon of a
            # fresh schedule, but it must stay correctly ordered.
            engine.call_later(0.5, lambda: fired.append("mid2"))

        engine.call_at(1.0 + SLOT_WIDTH_S / 7, reschedule_near)
        engine.run_until_idle()
        assert fired == ["near", "mid", "mid2", "far"]

    def test_promoted_entry_keeps_same_instant_fifo_with_wheel_entry(self):
        engine = SimEngine()
        fired = []
        when = HORIZON_S * 2  # overflow at schedule time
        engine.call_at(when, lambda: fired.append("overflow-first"))
        engine.run_until(when - 1.0)  # drag the cursor near the entry
        engine.call_at(when, lambda: fired.append("wheel-second"))
        engine.run_until_idle()
        assert fired == ["overflow-first", "wheel-second"]


class TestCancelAcrossMigration:
    """Cancellation must hold wherever the entry currently lives."""

    def test_cancel_while_in_overflow(self):
        engine = SimEngine()
        fired = []
        handle = engine.call_at(HORIZON_S * 2, lambda: fired.append(1))
        handle.cancel()
        assert engine.pending == 0
        engine.run_until_idle()
        assert fired == []

    def test_cancel_after_promotion_to_wheel_window(self):
        engine = SimEngine()
        fired = []
        when = HORIZON_S * 2
        handle = engine.call_at(when, lambda: fired.append(1))
        engine.call_at(when - 0.5, lambda: handle.cancel())
        engine.run_until_idle()
        assert fired == []
        assert engine.pending == 0

    def test_cancel_from_same_slot_callback(self):
        # Both entries land in one slot; the first callback cancels the
        # second after the slot batch has already been loaded.
        engine = SimEngine()
        fired = []
        engine.call_at(1.0, lambda: handle.cancel())
        handle = engine.call_at(1.0 + SLOT_WIDTH_S / 3,
                                lambda: fired.append("late"))
        engine.run_until_idle()
        assert fired == []
        assert engine.pending == 0

    def test_cancel_fired_entry_is_noop(self):
        engine = SimEngine()
        handle = engine.call_later(0.25, lambda: None)
        engine.run_until_idle()
        handle.cancel()
        assert engine.pending == 0


class TestSameSlotOrdering:
    def test_sub_slot_times_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        # All in one slot, scheduled in reverse time order.
        base = 5.0
        offsets = [SLOT_WIDTH_S * k / 10 for k in range(9, -1, -1)]
        for offset in offsets:
            engine.call_at(base + offset,
                           lambda o=offset: fired.append(round(o, 9)))
        engine.run_until_idle()
        assert fired == sorted(round(o, 9) for o in offsets)

    def test_same_instant_fifo_within_slot(self):
        engine = SimEngine()
        fired = []
        for index in range(20):
            engine.call_at(3.0, lambda i=index: fired.append(i))
        engine.run_until_idle()
        assert fired == list(range(20))

    def test_zero_delay_insertion_joins_the_live_batch(self):
        # A callback scheduling at delay 0 runs within the same instant,
        # before later entries of the same slot.
        engine = SimEngine()
        fired = []

        def first():
            fired.append("first")
            engine.call_later(0.0, lambda: fired.append("nested"))

        engine.call_at(1.0, first)
        engine.call_at(1.0 + SLOT_WIDTH_S / 2, lambda: fired.append("later"))
        engine.run_until_idle()
        assert fired == ["first", "nested", "later"]


class TestRunUntilMidSlot:
    def test_deadline_splits_a_slot(self):
        engine = SimEngine()
        fired = []
        engine.call_at(1.0 + SLOT_WIDTH_S * 0.2, lambda: fired.append("a"))
        engine.call_at(1.0 + SLOT_WIDTH_S * 0.8, lambda: fired.append("b"))
        engine.run_until(1.0 + SLOT_WIDTH_S * 0.5)
        assert fired == ["a"]
        assert engine.pending == 1
        engine.run_until_idle()
        assert fired == ["a", "b"]

    def test_schedule_after_deadline_behind_loaded_batch(self):
        # run_until leaves the next slot's batch loaded; a later schedule
        # due *before* that batch head must still fire first.
        engine = SimEngine()
        fired = []
        engine.call_at(2.0, lambda: fired.append("loaded"))
        engine.run_until(1.9)
        engine.call_at(1.95, lambda: fired.append("squeezed"))
        engine.run_until_idle()
        assert fired == ["squeezed", "loaded"]


class TestPendingExactness:
    """``pending`` stays exact across schedule/fire/cancel through every
    structure (batch, wheel, overflow) — compared against a full scan."""

    def test_exact_across_random_interleaving(self):
        rng = random.Random(11)
        engine = SimEngine()
        handles = []
        for _ in range(400):
            action = rng.random()
            if action < 0.55 or not handles:
                # Spread delays across batch/wheel/overflow ranges.
                delay = rng.choice(
                    (0.0, rng.random() * SLOT_WIDTH_S,
                     rng.random() * HORIZON_S,
                     HORIZON_S * (1.0 + rng.random() * 3)))
                handles.append(engine.call_later(delay, lambda: None))
            elif action < 0.8:
                handles.pop(rng.randrange(len(handles))).cancel()
            else:
                engine.step()
            assert engine.pending == len(engine._scan_live())
        engine.run_until_idle()
        assert engine.pending == 0


class TestWheelHeapEquivalence:
    """Differential check: identical firing logs on random schedules."""

    @staticmethod
    def _drive(engine_cls, seed: int) -> list[tuple[float, int]]:
        rng = random.Random(seed)
        engine = engine_cls()
        log: list[tuple[float, int]] = []
        handles = []
        serial = 0

        def record(index: int) -> None:
            log.append((engine.now(), index))

        def nested(index: int) -> None:
            record(index)
            engine.call_later(rng.random() * 2, lambda: record(index + 1000))

        for _ in range(300):
            roll = rng.random()
            if roll < 0.6 or not handles:
                delay = rng.choice(
                    (0.0, rng.random() * 0.01, rng.random(),
                     rng.random() * 20, rng.random() * 40))
                serial += 1
                callback = nested if rng.random() < 0.3 else record
                handles.append(
                    engine.call_later(delay, lambda s=serial, c=callback: c(s)))
            elif roll < 0.75:
                handles.pop(rng.randrange(len(handles))).cancel()
            elif roll < 0.9:
                engine.step()
            else:
                engine.run_until(engine.now() + rng.random() * 5)
        engine.run_until_idle()
        return log

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_firing_logs(self, seed):
        assert self._drive(SimEngine, seed) == self._drive(HeapSimEngine, seed)

    def test_identical_validation(self):
        for engine_cls in (SimEngine, HeapSimEngine):
            engine = engine_cls()
            with pytest.raises(ValueError):
                engine.call_later(-0.1, lambda: None)
            engine.call_later(1.0, lambda: None)
            engine.run_until_idle()
            with pytest.raises(ValueError):
                engine.call_at(0.5, lambda: None)
