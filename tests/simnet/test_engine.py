"""Discrete-event engine determinism and scheduling semantics."""

from __future__ import annotations

import pytest

from repro.simnet import SimEngine


class TestScheduling:
    def test_now_starts_at_zero(self):
        assert SimEngine().now() == 0.0

    def test_callbacks_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.call_later(2.0, lambda: fired.append("late"))
        engine.call_later(1.0, lambda: fired.append("early"))
        engine.run_until_idle()
        assert fired == ["early", "late"]

    def test_same_instant_fifo(self):
        engine = SimEngine()
        fired = []
        for index in range(10):
            engine.call_later(1.0, lambda i=index: fired.append(i))
        engine.run_until_idle()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().call_later(-0.5, lambda: None)

    def test_call_at_in_past_rejected(self):
        engine = SimEngine()
        engine.call_later(1.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(ValueError):
            engine.call_at(0.5, lambda: None)

    def test_cancellation(self):
        engine = SimEngine()
        fired = []
        handle = engine.call_later(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = SimEngine()
        handle = engine.call_later(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 0


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = SimEngine()
        fired = []
        engine.call_later(1.0, lambda: fired.append("in"))
        engine.call_later(3.0, lambda: fired.append("out"))
        count = engine.run_until(2.0)
        assert count == 1
        assert fired == ["in"]
        assert engine.now() == 2.0

    def test_run_until_skips_cancelled_head(self):
        engine = SimEngine()
        fired = []
        head = engine.call_later(0.5, lambda: fired.append("cancelled"))
        engine.call_later(1.0, lambda: fired.append("kept"))
        head.cancel()
        engine.run_until(2.0)
        assert fired == ["kept"]

    def test_run_until_idle_counts_fired(self):
        engine = SimEngine()
        engine.call_later(0.1, lambda: None)
        engine.call_later(0.2, lambda: None)
        assert engine.run_until_idle() == 2

    def test_livelock_guard(self):
        engine = SimEngine()

        def reschedule():
            engine.call_later(0.001, reschedule)

        engine.call_later(0.001, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            engine.run_until_idle(max_events=1000)

    def test_nested_scheduling_runs(self):
        engine = SimEngine()
        fired = []

        def outer():
            fired.append("outer")
            engine.call_later(1.0, lambda: fired.append("inner"))

        engine.call_later(1.0, outer)
        engine.run_until_idle()
        assert fired == ["outer", "inner"]
        assert engine.now() == 2.0

    def test_step_returns_false_when_idle(self):
        assert SimEngine().step() is False


class TestDeterminism:
    def test_two_identical_runs_fire_identically(self):
        def run() -> list[tuple[float, int]]:
            engine = SimEngine()
            log: list[tuple[float, int]] = []
            for index in range(50):
                delay = ((index * 7) % 13) / 10.0
                engine.call_later(delay, lambda i=index: log.append(
                    (engine.now(), i)))
            engine.run_until_idle()
            return log

        assert run() == run()


class TestPendingCounter:
    """``pending`` is a live counter (O(1)), not a queue scan; it must stay
    exact through any interleaving of scheduling, firing and cancellation."""

    @staticmethod
    def _heap_scan(engine: SimEngine) -> int:
        return len(engine._scan_live())

    def test_counts_push_fire_cancel(self):
        engine = SimEngine()
        handles = [engine.call_later(i / 10.0, lambda: None)
                   for i in range(10)]
        assert engine.pending == 10
        handles[3].cancel()
        handles[7].cancel()
        assert engine.pending == 8
        engine.step()
        assert engine.pending == 7
        engine.run_until_idle()
        assert engine.pending == 0

    def test_matches_heap_scan_under_random_interleaving(self):
        import random as _random
        rng = _random.Random(5)
        engine = SimEngine()
        handles = []
        for round_index in range(200):
            action = rng.random()
            if action < 0.5 or not handles:
                handles.append(
                    engine.call_later(rng.random(), lambda: None))
            elif action < 0.75:
                handles.pop(rng.randrange(len(handles))).cancel()
            else:
                engine.step()
            assert engine.pending == self._heap_scan(engine)
        engine.run_until_idle()
        assert engine.pending == 0

    def test_cancelling_a_fired_entry_does_not_go_negative(self):
        engine = SimEngine()
        handle = engine.call_later(0.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()  # late cancel of an already-fired entry
        assert engine.pending == 0
