"""Workload drivers: paced/Poisson senders and the probe application."""

from __future__ import annotations

import random

import pytest

from repro.apps.workload import (PacedSender, PoissonSender,
                                 multi_sender_round_robin)
from repro.experiments.ministacks import build_ministack, flood_stack
from repro.simnet import Network, SimEngine


@pytest.fixture
def probes():
    engine = SimEngine()
    network = Network(engine, seed=8)
    members = ["a", "b"]
    for node_id in members:
        network.add_fixed_node(node_id)
    sessions = {node_id: build_ministack(network, node_id, members,
                                         flood_stack("a,b"))
                for node_id in members}
    return engine, network, sessions


class TestPacedSender:
    def test_exact_count_and_spacing(self, probes):
        engine, network, sessions = probes
        pacer = PacedSender(engine, sessions["a"].send, count=10, rate=10.0,
                            start=1.0)
        last = pacer.schedule_all()
        assert last == pytest.approx(1.9)
        engine.run_until(5.0)
        assert pacer.sent == 10
        deliveries = sessions["b"].deliveries
        assert len(deliveries) == 10
        gaps = [b.time - a.time for a, b in zip(deliveries, deliveries[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_custom_payload_factory(self, probes):
        engine, network, sessions = probes
        PacedSender(engine, sessions["a"].send, count=3, rate=10.0,
                    make_payload=lambda i: ("custom", i)).schedule_all()
        engine.run_until(2.0)
        assert sessions["b"].payloads() == [("custom", i) for i in range(3)]


class TestPoissonSender:
    def test_sends_all_with_random_spacing(self, probes):
        engine, network, sessions = probes
        sender = PoissonSender(engine, sessions["a"].send, count=20,
                               mean_rate=10.0, rng=random.Random(3))
        sender.schedule_all()
        engine.run_until(60.0)
        assert sender.sent == 20
        deliveries = sessions["b"].deliveries
        gaps = [b.time - a.time for a, b in zip(deliveries, deliveries[1:])]
        assert len(set(round(g, 6) for g in gaps)) > 3  # not constant

    def test_deterministic_given_seed(self, probes):
        engine, network, sessions = probes

        def run(seed):
            sender = PoissonSender(engine, lambda p: None, count=5,
                                   mean_rate=1.0, rng=random.Random(seed))
            return sender.schedule_all()

        assert run(1) == run(1)
        assert run(1) != run(2)


class TestProbe:
    def test_latency_measurement(self, probes):
        engine, network, sessions = probes
        engine.run_until(0.1)
        sessions["a"].send("timed")
        engine.run_until(1.0)
        delivery = sessions["b"].deliveries[0]
        latency = sessions["b"].latency_of(delivery, sessions["a"])
        assert latency is not None
        assert 0.0 < latency < 0.01  # one wired hop

    def test_latency_none_for_unknown_payload(self, probes):
        engine, network, sessions = probes
        engine.run_until(0.1)
        sessions["a"].send("known")
        engine.run_until(1.0)
        delivery = sessions["b"].deliveries[0]
        assert sessions["b"].latency_of(delivery, sessions["b"]) is None

    def test_unhashable_payloads_supported(self, probes):
        engine, network, sessions = probes
        engine.run_until(0.1)
        sessions["a"].send({"k": [1, 2]})
        engine.run_until(1.0)
        delivery = sessions["b"].deliveries[0]
        assert sessions["b"].latency_of(delivery, sessions["a"]) is not None


class TestRoundRobin:
    def test_distributes_over_senders(self, probes):
        engine, network, sessions = probes
        engine.run_until(0.1)
        multi_sender_round_robin([sessions["a"], sessions["b"]], count=6)
        engine.run_until(2.0)
        from_a = [d for d in sessions["b"].deliveries if d.source == "a"]
        from_b = [d for d in sessions["a"].deliveries if d.source == "b"]
        assert len(from_a) == 3 and len(from_b) == 3
