"""The chat application layer: queueing, callbacks, rooms, leave."""

from __future__ import annotations

import pytest

from repro.core import build_morpheus_group, build_plain_group
from repro.simnet import Network, SimEngine


@pytest.fixture
def plain_pair():
    engine = SimEngine()
    network = Network(engine, seed=6)
    network.add_fixed_node("a")
    network.add_fixed_node("b")
    nodes = build_plain_group(network)
    return engine, network, nodes


class TestSendQueueing:
    def test_sends_before_first_view_are_queued(self, plain_pair):
        engine, network, nodes = plain_pair
        nodes["a"].send("too-early")  # before the initial view installs
        assert nodes["a"].chat.ready is False
        engine.run_until(2.0)
        assert nodes["b"].chat.texts() == ["too-early"]

    def test_outbox_preserves_order(self, plain_pair):
        engine, network, nodes = plain_pair
        for index in range(5):
            nodes["a"].send(f"q-{index}")
        engine.run_until(2.0)
        assert nodes["b"].chat.texts() == [f"q-{i}" for i in range(5)]


class TestCallbacks:
    def test_on_message_invoked_with_delivery(self, plain_pair):
        engine, network, nodes = plain_pair
        engine.run_until(0.5)
        seen = []
        nodes["b"].chat.on_message = seen.append
        nodes["a"].send("callback")
        engine.run_until(2.0)
        assert len(seen) == 1
        assert seen[0].source == "a"
        assert seen[0].text == "callback"
        assert seen[0].room == "lobby"

    def test_on_view_change_invoked(self, plain_pair):
        engine, network, nodes = plain_pair
        views = []
        nodes["b"].chat.on_view_change = views.append
        engine.run_until(2.0)
        assert len(views) == 1
        assert views[0].members == ("a", "b")


class TestRooms:
    def test_room_name_carried_in_deliveries(self):
        engine = SimEngine()
        network = Network(engine, seed=6)
        network.add_fixed_node("a")
        network.add_fixed_node("b")
        nodes = build_plain_group(network, room="ops")
        engine.run_until(0.5)
        nodes["a"].send("alert")
        engine.run_until(2.0)
        assert nodes["b"].chat.history[0].room == "ops"

    def test_history_timestamps_monotone(self, plain_pair):
        engine, network, nodes = plain_pair
        engine.run_until(0.5)
        for index in range(4):
            nodes["a"].send(str(index))
            engine.run_until(1.0 + index)
        times = [d.time for d in nodes["b"].chat.history]
        assert times == sorted(times)


class TestLeave:
    def test_leave_excludes_node_from_view(self, plain_pair):
        engine, network, nodes = plain_pair
        engine.run_until(0.5)
        nodes["b"].chat.leave()
        engine.run_until(10.0)
        membership = nodes["a"].data_channel.session_named("membership")
        assert membership.view.members == ("a",)


class TestSentCount:
    def test_sent_count_tracks_stack_handoff(self, plain_pair):
        engine, network, nodes = plain_pair
        nodes["a"].send("one")  # queued (no view yet): not yet handed over
        assert nodes["a"].chat.sent_count == 0
        engine.run_until(2.0)
        assert nodes["a"].chat.sent_count == 1  # flushed on view install
        nodes["a"].send("two")
        assert nodes["a"].chat.sent_count == 2
