"""Whole-system determinism: the repository's strongest guarantee.

Every experiment in EXPERIMENTS.md is only meaningful if identical
invocations produce identical numbers.  These tests run the full Morpheus
pipeline — context dissemination, policy, flush, stack swap, chat — twice
and require bit-identical counters, and verify the packet trace facility
used for debugging such runs.
"""

from __future__ import annotations

from repro.core import build_morpheus_group
from repro.scenarios import canned, commuter_handoff, run_scenario
from repro.simnet import Network, PacketTrace, SimEngine


def run_full_scenario(seed: int) -> dict:
    engine = SimEngine()
    network = Network(engine, seed=seed)
    network.add_fixed_node("fixed-0")
    network.add_mobile_node("mobile-0")
    network.add_mobile_node("mobile-1")
    nodes = build_morpheus_group(network, publish_interval=1.0,
                                 evaluate_interval=1.0,
                                 heartbeat_interval=2.0)
    for index in range(30):
        engine.call_at(1.0 + index * 0.5,
                       lambda i=index: nodes["mobile-0"].send(f"d-{i}"))
    engine.run_until(30.0)
    return {
        "stats": {node_id: network.stats_of(node_id).snapshot()
                  for node_id in network.node_ids()},
        "texts": {node_id: tuple(node.chat.texts())
                  for node_id, node in nodes.items()},
        "stacks": {node_id: tuple(node.current_stack())
                   for node_id, node in nodes.items()},
        "engine_events": engine.fired_count,
    }


class TestWholeSystemDeterminism:
    def test_identical_runs_identical_counters(self):
        assert run_full_scenario(seed=77) == run_full_scenario(seed=77)

    def test_different_seeds_allowed_to_differ(self):
        # Not required to differ, but the scenario uses the seed (loss
        # draws are absent here, so only document the API contract).
        first = run_full_scenario(seed=77)
        assert first["texts"]["fixed-0"] == tuple(
            f"d-{i}" for i in range(30))


class TestScenarioDeterminism:
    """Dynamic-topology runs obey the same guarantee as static ones: the
    seed fully determines the run — event traces, stacks, counters and
    deliveries are byte-identical across replays, and a different seed
    produces a genuinely different run (the loss draws differ)."""

    def test_same_seed_yields_identical_runs(self):
        scenario = commuter_handoff(messages=40, duration_s=60.0)
        first = run_scenario(scenario, seed=13)
        second = run_scenario(scenario, seed=13)
        assert first == second
        assert first.trace == second.trace
        assert first.stats == second.stats
        assert first.stack_history == second.stack_history

    def test_different_seeds_yield_different_runs(self):
        # The commuter scenario draws from a lossy wireless cell, so the
        # seed must visibly steer the run.
        scenario = commuter_handoff(messages=40, duration_s=60.0)
        first = run_scenario(scenario, seed=13)
        other = run_scenario(scenario, seed=14)
        assert (first.trace, first.stats, first.texts) != \
            (other.trace, other.stats, other.texts)

    def test_churn_scenario_replays_identically(self):
        first = run_scenario(canned("churn_storm", messages=60,
                                    duration_s=60.0), seed=2)
        second = run_scenario(canned("churn_storm", messages=60,
                                     duration_s=60.0), seed=2)
        assert first == second


class TestPacketTrace:
    def test_trace_records_transmissions(self):
        engine = SimEngine()
        network = Network(engine, seed=1)
        network.add_fixed_node("a")
        network.add_fixed_node("b")
        trace = PacketTrace(network).install()
        nodes = build_morpheus_group(network, publish_interval=1.0,
                                     evaluate_interval=5.0)
        engine.run_until(3.0)
        nodes["a"].send("traced")
        engine.run_until(5.0)
        assert trace.count(event="ApplicationMessage", src="a") == 1
        assert trace.count(src="a") > 1  # control traffic too
        dump = trace.dump(limit=5)
        assert len(dump.splitlines()) == 5

    def test_uninstall_stops_recording(self):
        engine = SimEngine()
        network = Network(engine, seed=1)
        network.add_fixed_node("a")
        network.add_fixed_node("b")
        trace = PacketTrace(network).install()
        nodes = build_morpheus_group(network, publish_interval=1.0,
                                     evaluate_interval=5.0)
        engine.run_until(2.0)
        recorded = len(trace.entries)
        trace.uninstall()
        engine.run_until(10.0)
        assert len(trace.entries) == recorded
