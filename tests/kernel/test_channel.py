"""Channel routing, lifecycle and session-sharing behaviour."""

from __future__ import annotations

import pytest

from repro.kernel import (ChannelState, ChannelStateError, DebugEvent,
                          Direction, EchoEvent, EventRoutingError, Kernel,
                          QoS, SendableEvent)
from tests.kernel.helpers import (AllSendableRecorderLayer, ConsumerLayer,
                                  HoldingLayer, PingEvent, PongEvent,
                                  PongRecorderLayer, RecorderLayer,
                                  build_channel)


@pytest.fixture
def kernel():
    return Kernel(name="test-node")


class TestLifecycle:
    def test_start_delivers_channel_init_bottom_up(self, kernel):
        bottom, middle, top = RecorderLayer(), RecorderLayer(), RecorderLayer()
        channel = build_channel(kernel, [bottom, middle, top])
        assert channel.state is ChannelState.STARTED
        for session in channel.sessions:
            assert session.inits == 1
        # Bottom sees init before top.
        assert channel.sessions[0].seen[0] is channel.sessions[1].seen[0]

    def test_close_delivers_channel_close_top_down_then_finalizes(self, kernel):
        channel = build_channel(kernel, [RecorderLayer(), RecorderLayer()])
        channel.close()
        assert channel.state is ChannelState.CLOSED
        for session in channel.sessions:
            assert session.closes == 1
            assert channel not in session.channels

    def test_cannot_start_twice(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()])
        with pytest.raises(ChannelStateError):
            channel.start()

    def test_cannot_route_after_close(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()])
        channel.close()
        with pytest.raises(ChannelStateError):
            channel.insert(PingEvent(), Direction.UP)

    def test_close_before_start_rejected(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()], start=False)
        with pytest.raises(ChannelStateError):
            channel.close()


class TestRouting:
    def test_event_visits_only_interested_layers(self, kernel):
        ping_layer = RecorderLayer()
        pong_layer = PongRecorderLayer()
        channel = build_channel(kernel, [ping_layer, pong_layer])
        channel.insert(PingEvent(), Direction.UP)
        ping_session = channel.sessions[0]
        pong_session = channel.sessions[1]
        assert "PingEvent" in ping_session.seen_types()
        assert "PingEvent" not in pong_session.seen_types()

    def test_isinstance_matching_accepts_subclasses(self, kernel):
        generic = AllSendableRecorderLayer()
        channel = build_channel(kernel, [generic])
        channel.insert(PingEvent(), Direction.UP)
        channel.insert(PongEvent(), Direction.UP)
        names = channel.sessions[0].seen_types()
        assert names.count("PingEvent") == 1
        assert names.count("PongEvent") == 1

    def test_up_route_visits_bottom_to_top(self, kernel):
        layers = [RecorderLayer() for _ in range(3)]
        channel = build_channel(kernel, layers)
        event = PingEvent()
        channel.insert(event, Direction.UP)
        order = [session for session in channel.sessions
                 if event in session.seen]
        assert order == channel.sessions

    def test_down_route_visits_top_to_bottom(self, kernel):
        layers = [RecorderLayer() for _ in range(3)]
        channel = build_channel(kernel, layers)
        event = PingEvent()
        channel.insert(event, Direction.DOWN)
        for session in channel.sessions:
            assert event in session.seen
        top_session = channel.sessions[-1]
        bottom_session = channel.sessions[0]
        assert top_session.seen.index(event) <= bottom_session.seen.index(event)

    def test_consumed_event_stops(self, kernel):
        bottom = RecorderLayer()
        consumer = ConsumerLayer()
        top = RecorderLayer()
        channel = build_channel(kernel, [bottom, consumer, top])
        channel.insert(PingEvent(), Direction.UP)
        assert "PingEvent" in channel.sessions[0].seen_types()
        assert "PingEvent" in channel.sessions[1].seen_types()
        assert "PingEvent" not in channel.sessions[2].seen_types()

    def test_insert_from_starts_after_source(self, kernel):
        layers = [RecorderLayer() for _ in range(3)]
        channel = build_channel(kernel, layers)
        middle_session = channel.sessions[1]
        event = PingEvent()
        middle_session.send_up(event)
        assert event not in channel.sessions[0].seen
        assert event not in channel.sessions[1].seen
        assert event in channel.sessions[2].seen

    def test_insert_from_down_starts_below_source(self, kernel):
        layers = [RecorderLayer() for _ in range(3)]
        channel = build_channel(kernel, layers)
        middle_session = channel.sessions[1]
        event = PingEvent()
        middle_session.send_down(event)
        assert event in channel.sessions[0].seen
        assert event not in channel.sessions[2].seen

    def test_send_from_top_edge_is_silent_drop(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()])
        event = PingEvent()
        channel.sessions[0].send_up(event)  # falls off the top
        assert event not in channel.sessions[0].seen

    def test_double_go_raises(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()])
        event = PingEvent()
        channel.insert(event, Direction.UP)
        with pytest.raises(EventRoutingError):
            event.go()

    def test_debug_event_visits_every_layer(self, kernel):
        ping_layer = RecorderLayer()
        pong_layer = PongRecorderLayer()
        channel = build_channel(kernel, [ping_layer, pong_layer])
        event = DebugEvent()
        channel.insert(event, Direction.UP)
        for session in channel.sessions:
            assert event in session.seen


class TestEcho:
    def test_echo_bounces_wrapped_event_back(self, kernel):
        layers = [RecorderLayer() for _ in range(2)]
        channel = build_channel(kernel, layers)
        wrapped = PingEvent()
        echo = EchoEvent(wrapped)
        channel.insert(echo, Direction.DOWN)
        # The wrapped event re-enters at the bottom going UP.
        assert wrapped in channel.sessions[0].seen
        assert wrapped in channel.sessions[1].seen
        assert channel.sessions[0].seen.index(wrapped) is not None


class TestBlockingLayer:
    def test_held_events_resume_on_release(self, kernel):
        holder = HoldingLayer()
        top = RecorderLayer()
        channel = build_channel(kernel, [holder, top])
        event = PingEvent()
        channel.insert(event, Direction.UP)
        holding_session = channel.sessions[0]
        assert event in holding_session.held
        assert event not in channel.sessions[1].seen
        holding_session.release_all()
        assert event in channel.sessions[1].seen


class TestSessionSharing:
    def test_preset_session_shared_across_channels(self, kernel):
        layer_a = RecorderLayer()
        qos = QoS("q", [layer_a])
        first = qos.create_channel("one", kernel)
        first.start()
        shared = first.sessions[0]
        second = qos.create_channel("two", kernel, preset_sessions={0: shared})
        second.start()
        assert second.sessions[0] is shared
        assert set(shared.channels) == {first, second}
        first.insert(PingEvent(), Direction.UP)
        second.insert(PingEvent(), Direction.UP)
        assert len([e for e in shared.seen if isinstance(e, PingEvent)]) == 2

    def test_shared_session_requires_explicit_channel_for_sends(self, kernel):
        layer_a = RecorderLayer()
        qos = QoS("q", [layer_a])
        first = qos.create_channel("one", kernel)
        first.start()
        shared = first.sessions[0]
        second = qos.create_channel("two", kernel, preset_sessions={0: shared})
        second.start()
        with pytest.raises(EventRoutingError):
            shared.send_up(PingEvent())  # ambiguous: two bound channels
        shared.send_up(PingEvent(), channel=first)  # explicit is fine


class TestIntrospection:
    def test_layer_names_bottom_up(self, kernel):
        channel = build_channel(kernel, [RecorderLayer(), PongRecorderLayer()])
        assert channel.layer_names() == ["recorder", "pong_recorder"]

    def test_session_lookup_by_type_and_name(self, kernel):
        channel = build_channel(kernel, [RecorderLayer(), PongRecorderLayer()])
        assert channel.session_of(PongRecorderLayer) is channel.sessions[1]
        assert channel.session_named("recorder") is channel.sessions[0]
        assert channel.session_named("absent") is None

    def test_kernel_tracks_registered_channels(self, kernel):
        channel = build_channel(kernel, [RecorderLayer()], name="data")
        assert kernel.find_channel("data") is channel
        channel.close()
        assert kernel.find_channel("data") is None
