"""Shared micro-layers used by the kernel test-suite."""

from __future__ import annotations

from typing import Optional

from repro.kernel import (ChannelClose, ChannelInit, Event, Layer,
                          SendableEvent, Session)


class PingEvent(SendableEvent):
    """A sendable test event."""


class PongEvent(SendableEvent):
    """A second, distinct sendable test event."""


class UntypedEvent(Event):
    """An event no recorder layer declares interest in."""


class RecorderSession(Session):
    """Records every event it sees, then forwards it."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.seen: list[Event] = []
        self.inits = 0
        self.closes = 0

    def handle(self, event: Event) -> None:
        self.seen.append(event)
        if isinstance(event, ChannelInit):
            self.inits += 1
        elif isinstance(event, ChannelClose):
            self.closes += 1
        event.go()

    def seen_types(self) -> list[str]:
        return [type(event).__name__ for event in self.seen]


class RecorderLayer(Layer):
    """Accepts :class:`PingEvent` only; records traffic."""

    accepted_events = (PingEvent,)
    session_class = RecorderSession


class PongRecorderLayer(RecorderLayer):
    """Accepts :class:`PongEvent` only."""

    accepted_events = (PongEvent,)


class AllSendableRecorderLayer(RecorderLayer):
    """Accepts any :class:`SendableEvent` (isinstance matching)."""

    accepted_events = (SendableEvent,)


class ConsumerSession(RecorderSession):
    """Records events but never forwards them (except lifecycle events)."""

    def handle(self, event: Event) -> None:
        self.seen.append(event)
        if isinstance(event, ChannelInit):
            self.inits += 1
            event.go()
        elif isinstance(event, ChannelClose):
            self.closes += 1
            event.go()


class ConsumerLayer(Layer):
    """Swallows every PingEvent it sees."""

    accepted_events = (PingEvent,)
    session_class = ConsumerSession


class HoldingSession(RecorderSession):
    """Parks events instead of forwarding; release with :meth:`release_all`."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.held: list[Event] = []

    def handle(self, event: Event) -> None:
        self.seen.append(event)
        if isinstance(event, ChannelInit):
            self.inits += 1
            event.go()
            return
        if isinstance(event, ChannelClose):
            self.closes += 1
            event.go()
            return
        self.held.append(event)

    def release_all(self) -> None:
        pending, self.held = self.held, []
        for event in pending:
            event.go()


class HoldingLayer(Layer):
    """A blocking layer: holds PingEvents until explicitly released."""

    accepted_events = (PingEvent,)
    session_class = HoldingSession


def build_channel(kernel, layers, name: str = "test", start: bool = True):
    """Compose ``layers`` (bottom→top) into a started channel."""
    from repro.kernel import QoS
    qos = QoS(f"{name}-qos", layers)
    channel = qos.create_channel(name, kernel)
    if start:
        channel.start()
    return channel
