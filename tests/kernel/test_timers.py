"""Kernel timers over the manual virtual clock."""

from __future__ import annotations

import pytest

from repro.kernel import (BackoffTimerEvent, Event, Kernel, Layer,
                          ManualClock, PeriodicTimerEvent, Session,
                          TimerEvent)
from tests.kernel.helpers import build_channel


class _TimerSession(Session):
    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.fired: list[TimerEvent] = []

    def handle(self, event: Event) -> None:
        if isinstance(event, TimerEvent):
            self.fired.append(event)
            return
        event.go()


class _TimerLayer(Layer):
    accepted_events = (TimerEvent,)
    session_class = _TimerSession


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def kernel(clock):
    return Kernel(clock=clock, name="timer-node")


class TestOneShot:
    def test_fires_after_delay(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_timer(5.0, tag="once")
        clock.advance(4.9)
        assert session.fired == []
        clock.advance(0.2)
        assert [event.tag for event in session.fired] == ["once"]
        assert session.fired[0].fired_at == pytest.approx(5.0)

    def test_cancel_before_fire(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        handle = session.set_timer(1.0, tag="never")
        handle.cancel()
        clock.advance(2.0)
        assert session.fired == []

    def test_same_instant_timers_fire_in_order(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_timer(1.0, tag="first")
        session.set_timer(1.0, tag="second")
        clock.advance(1.0)
        assert [event.tag for event in session.fired] == ["first", "second"]


class TestPeriodic:
    def test_reArms_until_cancelled(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        handle = session.set_periodic_timer(2.0, tag="tick")
        clock.advance(7.0)  # fires at t=2, 4, 6
        assert len(session.fired) == 3
        handle.cancel()
        clock.advance(10.0)
        assert len(session.fired) == 3

    def test_channel_close_stops_periodic(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_periodic_timer(1.0, tag="tick")
        clock.advance(2.0)
        fired_before = len(session.fired)
        assert fired_before == 2
        channel.close()
        clock.advance(5.0)
        assert len(session.fired) == fired_before

    def test_custom_periodic_event_interval(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_periodic_timer(3.0, PeriodicTimerEvent("slow", 3.0))
        clock.advance(9.5)
        assert len(session.fired) == 3


class TestBackoff:
    """One-shot-with-backoff: rearm-on-fire with a stretching interval."""

    def test_intervals_double_up_to_the_cap(self, kernel, clock):
        # The event object is reused across rearms, so fire times are
        # recorded at dispatch time, not read back afterwards.
        fire_times = []

        class _RecordingSession(_TimerSession):
            def handle(self, event):
                if isinstance(event, TimerEvent):
                    fire_times.append(event.fired_at)
                super().handle(event)

        class _RecordingLayer(_TimerLayer):
            session_class = _RecordingSession

        channel = build_channel(kernel, [_RecordingLayer()])
        session = channel.sessions[0]
        session.set_backoff_timer(1.0, tag="probe", max_interval=4.0)
        clock.advance(96.0)
        # Fires at 1, then +2, +4, then +4 forever (capped).
        gaps = [round(b - a, 6) for a, b in zip(fire_times, fire_times[1:])]
        assert fire_times[0] == pytest.approx(1.0)
        assert gaps[:3] == [2.0, 4.0, 4.0]
        assert set(gaps[3:]) == {4.0}

    def test_attempt_counts_completed_fires(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        handle = session.set_backoff_timer(1.0, tag="probe", max_interval=8.0)
        clock.advance(3.1)  # fires at 1.0 and 3.0
        assert len(session.fired) == 2
        assert handle.event.attempt == 2
        assert handle.event.interval == 4.0  # 1 -> 2 -> 4, cap not yet hit

    def test_factor_one_is_constant_rearm_on_fire(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_backoff_timer(2.0, tag="beat", factor=1.0)
        clock.advance(7.0)  # fires at 2, 4, 6 — periodic cadence
        assert len(session.fired) == 3

    def test_one_clock_entry_per_attempt(self, kernel, clock):
        # The event-count contract: between fires exactly one clock entry
        # exists, however long the loop has been running.
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_backoff_timer(1.0, tag="probe", max_interval=64.0)
        clock.advance(200.0)
        assert clock.pending == 1

    def test_cancel_stops_the_loop(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        handle = session.set_backoff_timer(1.0, tag="probe")
        clock.advance(1.5)
        assert len(session.fired) == 1
        handle.cancel()
        clock.advance(50.0)
        assert len(session.fired) == 1
        assert clock.pending == 0

    def test_handler_cancel_prevents_rearm(self, kernel, clock):
        class _CancellingSession(_TimerSession):
            def handle(self, event):
                super().handle(event)
                if isinstance(event, TimerEvent):
                    self.handle_to_cancel.cancel()

        class _CancellingLayer(_TimerLayer):
            session_class = _CancellingSession

        channel = build_channel(kernel, [_CancellingLayer()])
        session = channel.sessions[0]
        session.handle_to_cancel = session.set_backoff_timer(1.0, tag="probe")
        clock.advance(30.0)
        assert len(session.fired) == 1
        assert clock.pending == 0

    def test_channel_close_stops_backoff(self, kernel, clock):
        channel = build_channel(kernel, [_TimerLayer()])
        session = channel.sessions[0]
        session.set_backoff_timer(1.0, tag="probe")
        clock.advance(1.5)
        fired_before = len(session.fired)
        channel.close()
        clock.advance(50.0)
        assert len(session.fired) == fired_before

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffTimerEvent("bad", interval=0.0)
        with pytest.raises(ValueError):
            BackoffTimerEvent("bad", interval=1.0, factor=0.5)
        with pytest.raises(ValueError):
            # A zero cap would rearm at the same instant forever.
            BackoffTimerEvent("bad", interval=1.0, max_interval=0.0)


class TestManualClock:
    def test_now_advances(self, clock):
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_negative_delay_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.call_later(-1.0, lambda: None)

    def test_negative_advance_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_run_until_idle_fires_everything(self, clock):
        fired = []
        clock.call_later(1.0, lambda: fired.append(1))
        clock.call_later(5.0, lambda: fired.append(2))
        count = clock.run_until_idle()
        assert count == 2
        assert fired == [1, 2]
        assert clock.now() == 5.0

    def test_pending_counts_uncancelled(self, clock):
        handle = clock.call_later(1.0, lambda: None)
        clock.call_later(2.0, lambda: None)
        assert clock.pending == 2
        handle.cancel()
        assert clock.pending == 1

    def test_callback_scheduling_callback(self, clock):
        fired = []

        def outer():
            fired.append("outer")
            clock.call_later(1.0, lambda: fired.append("inner"))

        clock.call_later(1.0, outer)
        clock.advance(1.0)
        assert fired == ["outer"]
        clock.advance(1.0)
        assert fired == ["outer", "inner"]
