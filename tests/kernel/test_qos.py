"""QoS composition validation."""

from __future__ import annotations

import pytest

from repro.kernel import InvalidQoSError, Layer, QoS, TimerEvent
from tests.kernel.helpers import PingEvent, PongEvent, RecorderLayer


class _NeedsPing(Layer):
    required_events = (PingEvent,)
    session_class = None


class _ProvidesPing(Layer):
    provided_events = (PingEvent,)
    session_class = None


class _NeedsTimer(Layer):
    required_events = (TimerEvent,)
    session_class = None


class TestValidation:
    def test_empty_composition_rejected(self):
        with pytest.raises(InvalidQoSError):
            QoS("empty", [])

    def test_requirement_satisfied_by_provider(self):
        QoS("ok", [_ProvidesPing(), _NeedsPing()])  # must not raise

    def test_requirement_unsatisfied_raises(self):
        with pytest.raises(InvalidQoSError, match="requires"):
            QoS("broken", [_NeedsPing()])

    def test_kernel_events_always_provided(self):
        QoS("timers", [_NeedsTimer()])  # TimerEvent is kernel-provided

    def test_subclass_provider_satisfies_base_requirement(self):
        class _ProvidesSubPing(Layer):
            provided_events = (PongEvent,)

        class _NeedsSendable(Layer):
            from repro.kernel import SendableEvent
            required_events = (SendableEvent,)

        QoS("sub", [_ProvidesSubPing(), _NeedsSendable()])

    def test_validation_can_be_skipped(self):
        qos = QoS("broken-ok", [_NeedsPing()], validate=False)
        assert qos.layer_names() == ["__needs_ping"]

    def test_layer_names_in_order(self):
        qos = QoS("names", [_ProvidesPing(), _NeedsPing()])
        assert qos.layer_names() == ["__provides_ping", "__needs_ping"]


class TestLayerNaming:
    def test_default_name_is_snake_case(self):
        assert RecorderLayer.name() == "recorder"

    def test_explicit_layer_name_wins(self):
        class Custom(Layer):
            layer_name = "my_custom"

        assert Custom.name() == "my_custom"

    def test_acronyms_collapse(self):
        class FIFOOrderLayer(Layer):
            pass

        # Consecutive capitals stay grouped.
        assert "fifo" in FIFOOrderLayer.name().replace("_", "")
