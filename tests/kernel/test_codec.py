"""The compact wire codec: round-trips, charges, interning, framing.

Three contracts under test:

* **round-trip** — ``decode_payload(encode_payload(x)[0]) == x`` for every
  value the wire format covers, including nested messages and re-embedded
  frozen blobs;
* **charge parity** — the charge returned by :func:`encode_payload` equals
  the legacy :func:`estimate_size` on the same object, bit for bit: the
  codec changed the wire representation, never the accounting;
* **framing** — varints, zigzag, inline small ints and the interned-key
  table behave exactly as documented (the table is a wire contract:
  ids are registration order).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Message, codec, estimate_size
from repro.kernel.codec import (CodecError, decode_payload, encode_payload,
                                register_wire_key, wire_key_table)
from repro.kernel.message import WirePayload

# -- strategies ---------------------------------------------------------------

#: Scalars the wire format covers.  Text draws from a pool that mixes
#: interned key names with arbitrary strings, so the 0x05/0x06 split is
#: exercised constantly — including strings *equal to* registered keys in
#: value position (the interned form must round-trip to an equal str).
interned_names = st.sampled_from(sorted(wire_key_table()))
wire_text = st.one_of(st.text(max_size=16), interned_names)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2 ** 70), 2 ** 70),
    st.floats(allow_nan=False),
    wire_text,
    st.binary(max_size=32),
)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(wire_text, children, max_size=5),
        st.frozensets(st.one_of(st.integers(), wire_text), max_size=5),
        st.frozensets(st.one_of(st.integers(), wire_text),
                      max_size=5).map(set),
    ),
    max_leaves=24,
)

header_stacks = st.lists(st.one_of(
    st.dictionaries(wire_text,
                    st.one_of(st.integers(), wire_text), max_size=4),
    st.tuples(wire_text, st.integers(0, 99)),
    wire_text,
), max_size=6)


# -- round-trip properties ----------------------------------------------------

class TestRoundTrip:
    @given(value=wire_values)
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_payloads_round_trip_with_charge_parity(self, value):
        blob, charge = encode_payload(value)
        assert decode_payload(blob) == value
        assert charge == estimate_size(value)

    @given(payload=wire_values, headers=header_stacks)
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_header_stacks_round_trip(self, payload, headers):
        message = Message(payload=payload, headers=headers)
        blob, charge = encode_payload(message)
        back = decode_payload(blob)
        assert back.headers == headers
        assert back == message
        assert charge == estimate_size(message)

    @given(value=wire_values)
    @settings(max_examples=150, deadline=None)
    def test_parity_mode_accepts_everything_encodable(self, value):
        codec.set_parity(True)
        try:
            encode_payload(value)
        finally:
            codec.set_parity(False)

    def test_container_types_are_preserved(self):
        for value in ([1], (1,), {1}, frozenset({1}), bytearray(b"x")):
            back = decode_payload(encode_payload(value)[0])
            assert type(back) is type(value)
            assert back == value


# -- framing ------------------------------------------------------------------

class TestFraming:
    @pytest.mark.parametrize("value", [
        0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, -1, -64, -65, -0x4000,
        2 ** 63, -(2 ** 63), 2 ** 200, -(2 ** 200),
    ])
    def test_varint_boundary_ints(self, value):
        blob, charge = encode_payload(value)
        assert decode_payload(blob) == value
        assert charge == 4  # legacy flat int charge, any magnitude

    def test_small_ints_are_one_byte(self):
        for value in (0, 1, 127):
            blob, _ = encode_payload(value)
            assert len(blob) == 1, value
        assert len(encode_payload(128)[0]) > 1

    def test_interned_keys_shrink_to_two_bytes(self):
        blob, charge = encode_payload("coordinator")
        assert len(blob) == 2  # tag + varint id
        assert charge == len("coordinator")  # charge unaffected
        assert decode_payload(blob) == "coordinator"

    def test_non_interned_strings_carry_their_text(self):
        blob, charge = encode_payload("not-a-registered-key!")
        assert b"not-a-registered-key!" in bytes(blob)
        assert charge == len("not-a-registered-key!")

    def test_registration_is_idempotent_and_ordered(self):
        table = wire_key_table()
        first = register_wire_key("test-codec-private-key")
        assert register_wire_key("test-codec-private-key") == first
        assert first == len(table)  # appended at the next id
        blob, _ = encode_payload("test-codec-private-key")
        assert len(blob) <= 3
        assert decode_payload(blob) == "test-codec-private-key"

    def test_truncated_blobs_raise(self):
        blob, _ = encode_payload({"kind": "hb", "seq": 12345678})
        for cut in range(len(blob)):
            with pytest.raises(CodecError):
                decode_payload(blob[:cut])

    def test_trailing_garbage_raises(self):
        blob, _ = encode_payload([1, 2, 3])
        with pytest.raises(CodecError):
            decode_payload(blob + b"\x00")

    def test_unknown_interned_id_raises(self):
        with pytest.raises(CodecError):
            decode_payload(bytes([0x06, 0xFF, 0xFF, 0xFF, 0x7F]))


# -- structured leaves --------------------------------------------------------

class TestStructuredLeaves:
    def test_nested_message_round_trips(self):
        inner = Message(payload={"body": ["x"], "seq": 3})
        inner.push_header(("rm", 7))
        outer = {"msg": inner, "ttl": 2}
        blob, charge = encode_payload(outer)
        back = decode_payload(blob)
        assert back["msg"] == inner
        assert back["ttl"] == 2
        assert charge == estimate_size(outer)

    def test_wire_payload_reembeds_verbatim(self):
        wire = Message(payload={"kind": "data", "seq": 9}).wire_copy()
        frozen = wire._payload
        assert type(frozen) is WirePayload
        blob, charge = encode_payload(frozen)
        assert frozen.blob in blob  # verbatim, no re-encode
        assert charge == frozen.size_bytes
        back = decode_payload(blob)
        assert type(back) is WirePayload
        assert back == frozen
        assert back.decoded() == {"kind": "data", "seq": 9}

    def test_exotic_types_raise_codec_error(self):
        class Custom:
            pass

        for value in (Custom(), object, int, {"k": Custom()}):
            with pytest.raises(CodecError):
                encode_payload(value)

    def test_bool_is_not_encoded_as_int(self):
        back = decode_payload(encode_payload([True, 1, False, 0])[0])
        assert [type(item) for item in back] == [bool, int, bool, int]
