"""Property tests for the copy-on-write message path.

Two properties the whole stack relies on, exercised over random programs:

* **receiver isolation** — handles created by :meth:`Message.copy` share
  the header chain structurally, yet no sequence of push/pop on one handle
  can change what any other handle observes;
* **size consistency** — the incrementally-maintained ``size_bytes``
  always equals the from-scratch recursive estimate the seed computed on
  every read (payload estimate + per-header charge + framing byte).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Message, estimate_size


def reference_size(message: Message) -> int:
    """The seed-era accounting: recursive walk on every read."""
    total = estimate_size(message.payload)
    for header in message.headers:
        total += max(estimate_size(header), 1) + 1  # +1 framing byte
    return total


#: Headers as the protocols build them: immutable-once-pushed values
#: (tuples of scalars, strings, numbers, small frozen mappings).
header_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=12),
    st.binary(max_size=16),
    st.tuples(st.text(max_size=6), st.integers(0, 99)),
    st.tuples(st.text(max_size=4), st.text(max_size=4),
              st.integers(0, 9), st.integers(0, 9)),
    st.dictionaries(st.text(min_size=1, max_size=4),
                    st.integers(0, 50), max_size=4),
)

payload_values = st.one_of(
    st.binary(max_size=64),
    st.text(max_size=32),
    st.dictionaries(st.text(min_size=1, max_size=6),
                    st.one_of(st.integers(), st.text(max_size=8)),
                    max_size=5),
)

#: One program step: (handle_index_seed, op_seed, header).  Resolved
#: against the live handle list at execution time.
program_steps = st.lists(
    st.tuples(st.integers(0, 1_000_000), st.integers(0, 99), header_values),
    max_size=60)


class TestSharedTailIsolation:
    @given(payload=payload_values, base_headers=st.lists(header_values,
                                                         max_size=6),
           program=program_steps)
    @settings(max_examples=200, deadline=None)
    def test_random_programs_preserve_every_handles_view(
            self, payload, base_headers, program):
        """Run a random push/pop/copy program over a growing family of
        handles while mirroring every stack in a plain-list model; all
        views must match the model at every step, and ``size_bytes`` must
        match the recursive reference at every step."""
        base = Message(payload=payload, headers=base_headers)
        handles = [base]
        model = [list(base_headers)]

        def check_all() -> None:
            for handle, expected in zip(handles, model):
                assert handle.headers == expected
                assert handle.header_depth == len(expected)
                assert handle.size_bytes == reference_size(handle)

        for index_seed, op_seed, header in program:
            at = index_seed % len(handles)
            handle, stack = handles[at], model[at]
            if op_seed < 40:
                handle.push_header(header)
                stack.append(header)
            elif op_seed < 70 and stack:
                assert handle.pop_header() == stack.pop()
            else:
                handles.append(handle.copy())
                model.append(list(stack))
            check_all()
        check_all()

    @given(payload=payload_values,
           shared=st.lists(header_values, min_size=1, max_size=5),
           receiver_programs=st.lists(program_steps, min_size=2, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_fanout_receivers_cannot_corrupt_each_other(
            self, payload, shared, receiver_programs):
        """The multicast shape: one frozen message, N receiver handles.
        Each receiver runs its own push/pop program; the transmission and
        every other receiver must observe exactly what they would have
        observed with private deep copies."""
        wire = Message(payload=payload, headers=shared)
        receivers = [wire.copy() for _ in receiver_programs]
        models = [list(shared) for _ in receiver_programs]

        for receiver, stack, program in zip(receivers, models,
                                            receiver_programs):
            for _, op_seed, header in program:
                if op_seed < 50:
                    receiver.push_header(header)
                    stack.append(header)
                elif stack:
                    assert receiver.pop_header() == stack.pop()

        assert wire.headers == list(shared)  # transmission untouched
        for receiver, stack in zip(receivers, models):
            assert receiver.headers == stack
            assert receiver.size_bytes == reference_size(receiver)


class TestIncrementalSizeAccounting:
    @given(payload=payload_values, headers=st.lists(header_values,
                                                    max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_constructed_size_matches_reference(self, payload, headers):
        message = Message(payload=payload, headers=headers)
        assert message.size_bytes == reference_size(message)

    @given(payload=payload_values, program=program_steps)
    @settings(max_examples=200, deadline=None)
    def test_size_tracks_push_pop_exactly(self, payload, program):
        message = Message(payload=payload)
        for _, op_seed, header in program:
            if op_seed < 60 or message.header_depth == 0:
                message.push_header(header)
            else:
                message.pop_header()
            assert message.size_bytes == reference_size(message)

    @given(before=payload_values, after=payload_values,
           headers=st.lists(header_values, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_payload_reassignment_reestimates(self, before, after, headers):
        message = Message(payload=before, headers=headers)
        assert message.size_bytes == reference_size(message)
        message.payload = after
        assert message.size_bytes == reference_size(message)

    @given(payload=payload_values, headers=st.lists(header_values,
                                                    max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_wire_copy_preserves_size(self, payload, headers):
        message = Message(payload=payload, headers=headers)
        assert message.wire_copy().size_bytes == message.size_bytes


class TestWireSnapshotCache:
    """One snapshot per payload, shared across the copy family — the
    fan-out of one group send must not re-snapshot per receiver."""

    def test_fanout_clones_share_one_snapshot(self):
        # beb's pattern: all clones are taken first, the transport
        # wire-copies each one afterwards.
        message = Message(payload={"kind": "chat", "body": [1, 2, 3]})
        clones = [message.copy() for _ in range(8)]
        wires = [clone.wire_copy() for clone in clones]
        assert len({id(wire.payload) for wire in wires}) == 1

    def test_snapshot_still_isolates_sender_mutation(self):
        message = Message(payload={"count": 1})
        wire = message.wire_copy()
        message.payload["count"] = 99  # sender-side mutation after send
        assert wire.payload == {"count": 1}

    def test_payload_reassignment_invalidates_the_cache(self):
        message = Message(payload={"v": 1})
        first = message.wire_copy()
        message.payload = {"v": 2}
        second = message.wire_copy()
        assert first.payload == {"v": 1}
        assert second.payload == {"v": 2}

    def test_reassigned_handle_detaches_from_its_siblings(self):
        original = Message(payload={"v": 1})
        sibling = original.copy()
        original.wire_copy()  # populate the shared cache
        sibling.payload = {"v": 2}
        assert sibling.wire_copy().payload == {"v": 2}
        assert original.wire_copy().payload == {"v": 1}

    def test_relay_rewire_reuses_the_received_snapshot(self):
        # A received message re-transmitted by a relay is already in wire
        # form: its payload is the snapshot, and re-snapshotting it would
        # only burn allocations.
        message = Message(payload={"hop": 0})
        first_hop = message.wire_copy()
        second_hop = first_hop.wire_copy()
        assert second_hop.payload is first_hop.payload

    def test_nested_message_payloads_share_via_the_cache(self):
        # Gossip/retransmission pattern: a control payload carrying a
        # Message; every relay's wire copy must reuse the inner message's
        # one payload encode (shared through its copy-family cache cell).
        inner = Message(payload={"body": ["x"]})
        clone_a, clone_b = inner.copy(), inner.copy()
        outer_a = Message(payload={"msg": clone_a, "ttl": 3})
        outer_b = Message(payload={"msg": clone_b, "ttl": 3})
        wire_a = outer_a.wire_copy()
        wire_b = outer_b.wire_copy()
        assert clone_a._wire_cache[0] is clone_b._wire_cache[0]
        assert wire_a.payload["msg"].payload \
            == wire_b.payload["msg"].payload \
            == {"body": ["x"]}

    def test_immutable_payloads_pass_through(self):
        message = Message(payload=b"raw-bytes")
        assert message.wire_copy().payload is message.payload
