"""Rate-control primitives: windowed budgets and flap damping."""

from __future__ import annotations

from repro.kernel.damping import FlapDamper, WindowBudget


class TestWindowBudget:
    def test_admits_within_limit(self):
        budget = WindowBudget(limit=2, window=10.0, cooldown=5.0)
        assert budget.admit(0.0)
        assert budget.admit(1.0)
        assert budget.refused == 0

    def test_exhaustion_freezes_for_cooldown(self):
        budget = WindowBudget(limit=2, window=10.0, cooldown=5.0)
        assert budget.admit(0.0)
        assert budget.admit(1.0)
        assert not budget.admit(2.0)  # over budget: freeze starts
        assert budget.frozen(3.0)
        assert not budget.admit(6.9)  # still inside the cooldown
        assert budget.refused == 2

    def test_cooldown_expiry_readmits(self):
        budget = WindowBudget(limit=1, window=2.0, cooldown=5.0)
        assert budget.admit(0.0)
        assert not budget.admit(1.0)  # frozen until 6.0
        # Past the cooldown AND the original admission aged out of the
        # window — budget is whole again.
        assert budget.admit(6.1)

    def test_window_slides(self):
        budget = WindowBudget(limit=1, window=2.0, cooldown=5.0)
        assert budget.admit(0.0)
        assert budget.admit(3.0)  # first admission aged out: no freeze
        assert budget.refused == 0

    def test_zero_limit_disables(self):
        budget = WindowBudget(limit=0, window=1.0, cooldown=1.0)
        assert all(budget.admit(float(t)) for t in range(100))
        assert budget.refused == 0


class TestFlapDamper:
    def test_stable_value_never_damps(self):
        damper = FlapDamper(limit=1, window=10.0, cooldown=5.0)
        assert not any(damper.observe("a", float(t)) for t in range(20))

    def test_flips_over_limit_freeze(self):
        damper = FlapDamper(limit=2, window=10.0, cooldown=5.0)
        assert not damper.observe("a", 0.0)
        assert not damper.observe("b", 1.0)  # flip 1
        assert not damper.observe("a", 2.0)  # flip 2 (at the limit)
        assert damper.observe("b", 3.0)      # flip 3: frozen
        assert damper.frozen(4.0)
        assert damper.observe("a", 7.9)      # inside cooldown: still damped
        assert damper.suppressed == 2

    def test_cooldown_expiry_unfreezes(self):
        damper = FlapDamper(limit=1, window=10.0, cooldown=5.0)
        damper.observe("a", 0.0)
        damper.observe("b", 1.0)             # flip 1
        assert damper.observe("a", 2.0)      # flip 2: frozen until 7.0
        assert not damper.observe("a", 7.1)  # thawed, value stable again

    def test_slow_flips_age_out(self):
        damper = FlapDamper(limit=1, window=2.0, cooldown=5.0)
        assert not damper.observe("a", 0.0)
        assert not damper.observe("b", 1.0)  # flip 1
        # Next flip 3 s later: the first aged out of the window.
        assert not damper.observe("a", 4.0)

    def test_zero_limit_disables(self):
        damper = FlapDamper(limit=0, window=1.0, cooldown=1.0)
        values = ["a", "b"] * 25
        assert not any(damper.observe(v, float(t))
                       for t, v in enumerate(values))
