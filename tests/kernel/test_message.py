"""Tests for the message / header-stack abstraction."""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel import Message, estimate_size


@dataclass
class _SeqHeader:
    sender: int
    seqno: int


class _SizedHeader:
    size_bytes = 42


class TestHeaderStack:
    def test_push_pop_is_lifo(self):
        message = Message(payload=b"hello")
        message.push_header("a")
        message.push_header("b")
        assert message.pop_header() == "b"
        assert message.pop_header() == "a"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Message().pop_header()

    def test_peek_does_not_remove(self):
        message = Message()
        message.push_header("top")
        assert message.peek_header() == "top"
        assert message.peek_header() == "top"
        assert message.pop_header() == "top"

    def test_copy_is_independent(self):
        message = Message(payload=b"payload")
        message.push_header(_SeqHeader(sender=1, seqno=7))
        dup = message.copy()
        dup.pop_header()
        assert len(message.headers) == 1
        assert message.peek_header().seqno == 7

    def test_copy_shares_structure_but_isolates_push_pop(self):
        """The COW contract: copies are O(1) handles onto a shared chain —
        push/pop on one handle never disturbs another, and header objects
        are frozen at push time (shared by reference, never duplicated)."""
        header = {"members": [1, 2]}
        message = Message()
        message.push_header(header)
        dup = message.copy()
        assert dup.peek_header() is header  # shared, not deep-copied
        dup.pop_header()
        dup.push_header("replacement")
        assert message.peek_header() is header
        assert message.header_depth == 1

    def test_wire_copy_snapshots_mutable_payload(self):
        """The wire boundary keeps seed semantics: once transmitted, later
        sender-side payload mutation cannot leak to receivers."""
        payload = {"members": [1, 2]}
        message = Message(payload=payload)
        wire = message.wire_copy()
        payload["members"].append(3)
        assert wire.payload == {"members": [1, 2]}

    def test_headers_property_is_a_detached_list(self):
        message = Message()
        message.push_header("a")
        message.push_header("b")
        listed = message.headers
        assert listed == ["a", "b"]
        listed.append("c")  # mutating the materialized view is a no-op
        assert message.headers == ["a", "b"]
        assert message.header_depth == 2


class TestSizeEstimation:
    def test_bytes_payload_counts_length(self):
        assert estimate_size(b"12345") == 5

    def test_str_counts_utf8_length(self):
        assert estimate_size("héllo") == len("héllo".encode("utf-8"))

    def test_explicit_size_attribute_wins(self):
        assert estimate_size(_SizedHeader()) == 42

    def test_dataclass_charged_per_field(self):
        assert estimate_size(_SeqHeader(sender=1, seqno=2)) == 8

    def test_scalar_sizes(self):
        assert estimate_size(True) == 1
        assert estimate_size(3) == 4
        assert estimate_size(2.5) == 8
        assert estimate_size(None) == 1

    def test_container_sizes_are_positive(self):
        assert estimate_size([1, 2, 3]) > 0
        assert estimate_size({"a": 1}) > 0

    def test_message_size_includes_headers(self):
        message = Message(payload=b"xxxx")
        base = message.size_bytes
        message.push_header(_SeqHeader(sender=1, seqno=2))
        assert message.size_bytes > base

    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=8))
    def test_size_monotone_in_header_count(self, payload, extra_headers):
        message = Message(payload=payload)
        previous = message.size_bytes
        for index in range(extra_headers):
            message.push_header(index)
            assert message.size_bytes > previous
            previous = message.size_bytes

    @given(st.binary(max_size=512))
    def test_len_matches_size_bytes(self, payload):
        message = Message(payload=payload)
        assert len(message) == message.size_bytes
