"""AppiaXML-style configuration parsing and channel instantiation."""

from __future__ import annotations

import pytest

from repro.kernel import (ChannelTemplate, ConfigurationError, Kernel,
                          LayerSpec, UnknownLayerError, coerce_scalar,
                          dump_config, parse_config, register_layer,
                          unregister_layer)
from tests.kernel.helpers import HoldingLayer, PongRecorderLayer, RecorderLayer


@pytest.fixture(autouse=True)
def _registered_test_layers():
    for cls in (RecorderLayer, PongRecorderLayer, HoldingLayer):
        register_layer(cls)
    yield
    # Leave registrations in place: idempotent and harmless across tests.


CONFIG = """
<morpheus>
  <template name="plain">
    <channel name="data">
      <layer name="pong_recorder"/>
      <layer name="recorder" window="16" alpha="0.5" fast="true"/>
    </channel>
  </template>
  <channel name="aux">
    <layer name="recorder" session="shared-bottom"/>
  </channel>
</morpheus>
"""


class TestCoercion:
    def test_int(self):
        assert coerce_scalar("42") == 42

    def test_float(self):
        assert coerce_scalar("0.25") == 0.25

    def test_bool(self):
        assert coerce_scalar("true") is True
        assert coerce_scalar("False") is False

    def test_string_passthrough(self):
        assert coerce_scalar("node-3") == "node-3"


class TestParsing:
    def test_parse_templates_and_bare_channels(self):
        templates = parse_config(CONFIG)
        assert set(templates) == {"data", "aux"}

    def test_layer_params_coerced(self):
        templates = parse_config(CONFIG)
        spec = templates["data"].specs[1]
        assert spec.params == {"window": 16, "alpha": 0.5, "fast": True}

    def test_session_label_parsed(self):
        templates = parse_config(CONFIG)
        assert templates["aux"].specs[0].session_label == "shared-bottom"

    def test_malformed_xml_raises(self):
        with pytest.raises(ConfigurationError):
            parse_config("<morpheus><channel></morpheus>")

    def test_channel_without_name_raises(self):
        with pytest.raises(ConfigurationError, match="missing a name"):
            parse_config("<morpheus><channel><layer name='recorder'/></channel></morpheus>")

    def test_channel_without_layers_raises(self):
        with pytest.raises(ConfigurationError, match="no layers"):
            parse_config("<morpheus><channel name='x'></channel></morpheus>")

    def test_duplicate_template_names_raise(self):
        doc = """<morpheus>
          <channel name="x"><layer name="recorder"/></channel>
          <channel name="x"><layer name="recorder"/></channel>
        </morpheus>"""
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_config(doc)

    def test_unexpected_element_raises(self):
        with pytest.raises(ConfigurationError, match="unexpected"):
            parse_config("<morpheus><widget/></morpheus>")


class TestRoundTrip:
    def test_dump_then_parse_is_identity(self):
        templates = parse_config(CONFIG)
        assert parse_config(dump_config(templates)) == templates

    def test_single_channel_round_trip(self):
        template = ChannelTemplate.from_layers("c", [
            LayerSpec("recorder", {"window": 8}, session_label="top"),
            LayerSpec("pong_recorder"),
        ])
        assert ChannelTemplate.from_xml(template.to_xml()) == template


class TestInstantiation:
    def test_instantiate_builds_bottom_up(self):
        kernel = Kernel()
        template = parse_config(CONFIG)["data"]
        channel = template.instantiate(kernel)
        # XML lists top-first; the live stack is bottom-first.
        assert channel.layer_names() == ["recorder", "pong_recorder"]
        assert channel.state.value == "started"

    def test_layer_params_reach_layer_instances(self):
        kernel = Kernel()
        template = parse_config(CONFIG)["data"]
        channel = template.instantiate(kernel)
        assert channel.qos.layers[0].params["window"] == 16

    def test_unknown_layer_raises(self):
        kernel = Kernel()
        template = ChannelTemplate.from_layers(
            "bad", [LayerSpec("no_such_layer")])
        with pytest.raises(UnknownLayerError):
            template.instantiate(kernel)

    def test_session_bindings_reuse_and_capture(self):
        kernel = Kernel()
        bindings = {}
        template = parse_config(CONFIG)["aux"]
        first = template.instantiate(kernel, channel_name="aux-1",
                                     session_bindings=bindings)
        assert "shared-bottom" in bindings
        second = template.instantiate(kernel, channel_name="aux-2",
                                      session_bindings=bindings)
        assert second.sessions[0] is first.sessions[0]

    def test_instantiate_without_start(self):
        kernel = Kernel()
        template = parse_config(CONFIG)["data"]
        channel = template.instantiate(kernel, start=False)
        assert channel.state.value == "created"
