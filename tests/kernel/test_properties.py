"""Property-based tests of kernel routing invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Direction, Kernel, QoS
from tests.kernel.helpers import (ConsumerLayer, PingEvent, PongEvent,
                                  PongRecorderLayer, RecorderLayer,
                                  build_channel)

# A stack blueprint: each element chooses a layer kind.
layer_kind = st.sampled_from(["ping", "pong", "consumer"])
stack_blueprint = st.lists(layer_kind, min_size=1, max_size=8)


def materialize(blueprint):
    factories = {"ping": RecorderLayer, "pong": PongRecorderLayer,
                 "consumer": ConsumerLayer}
    return [factories[kind]() for kind in blueprint]


class TestRoutingInvariants:
    @settings(max_examples=80, deadline=None)
    @given(blueprint=stack_blueprint,
           direction=st.sampled_from([Direction.UP, Direction.DOWN]))
    def test_ping_visits_exactly_interested_prefix(self, blueprint,
                                                   direction):
        """A PingEvent visits ping-accepting layers in stack order until the
        first consumer swallows it; pong-only layers are never visited."""
        kernel = Kernel()
        channel = build_channel(kernel, materialize(blueprint))
        event = PingEvent()
        channel.insert(event, direction)

        indices = range(len(blueprint)) if direction is Direction.UP \
            else range(len(blueprint) - 1, -1, -1)
        expect_visit = True
        for index in indices:
            kind = blueprint[index]
            session = channel.sessions[index]
            if kind == "pong":
                assert event not in session.seen
                continue
            if expect_visit:
                assert event in session.seen
                if kind == "consumer":
                    expect_visit = False  # swallowed here
            else:
                assert event not in session.seen

    @settings(max_examples=50, deadline=None)
    @given(blueprint=stack_blueprint)
    def test_channel_init_reaches_every_layer_exactly_once(self, blueprint):
        kernel = Kernel()
        channel = build_channel(kernel, materialize(blueprint))
        for session in channel.sessions:
            assert session.inits == 1

    @settings(max_examples=50, deadline=None)
    @given(blueprint=stack_blueprint,
           events=st.lists(st.sampled_from(["ping", "pong"]), min_size=1,
                           max_size=20))
    def test_fifo_delivery_order_per_session(self, blueprint, events):
        """Events inserted in order are observed in order at every session."""
        kernel = Kernel()
        channel = build_channel(kernel, materialize(blueprint))
        inserted = []
        for kind in events:
            event = PingEvent() if kind == "ping" else PongEvent()
            inserted.append(event)
            channel.insert(event, Direction.UP)
        for session in channel.sessions:
            seen = [event for event in session.seen if event in inserted]
            positions = [inserted.index(event) for event in seen]
            assert positions == sorted(positions)

    @settings(max_examples=50, deadline=None)
    @given(blueprint=stack_blueprint)
    def test_close_after_start_always_clean(self, blueprint):
        kernel = Kernel()
        channel = build_channel(kernel, materialize(blueprint))
        channel.insert(PingEvent(), Direction.UP)
        channel.close()
        assert channel.state.value == "closed"
        for session in channel.sessions:
            assert session.closes == 1
            assert channel not in session.channels
        assert kernel.idle
