"""Unit tests for the federation building blocks.

Covers the pure-state pieces the :class:`FederationRunner` composes:
cell rosters and split planning (:class:`CellDirectory`), damped reshape
admission (:class:`CellGovernor`), relay-rule gateway election
(:class:`GatewayElector`) and the gossip-bridge dedup/reorder session
(:class:`FederationRouterSession`).
"""

from __future__ import annotations

import pytest

from repro.context.model import BATTERY, DEVICE_TYPE
from repro.federation.cell import CellDirectory, CellGovernor
from repro.federation.gateway import GatewayElector
from repro.federation.router import (FederationRouterLayer,
                                     FederationRouterSession)

pytestmark = pytest.mark.tier1


class TestCellDirectory:
    def test_mint_never_reuses_names(self):
        directory = CellDirectory()
        names = {directory.mint() for _ in range(5)}
        assert len(names) == 5
        assert names == {f"cell-{i}" for i in range(5)}

    def test_assign_moves_between_cells(self):
        directory = CellDirectory()
        directory.assign("a", "cell-0")
        directory.assign("b", "cell-0")
        directory.assign("a", "cell-1")
        assert directory.cell_of("a") == "cell-1"
        assert directory.members_of("cell-0") == ("b",)
        assert directory.members_of("cell-1") == ("a",)

    def test_remove_drops_empty_cells(self):
        directory = CellDirectory()
        directory.assign("a", "cell-0")
        directory.remove("a")
        assert directory.cell_of("a") is None
        assert directory.cells() == ()
        directory.remove("a")  # idempotent

    def test_retire_returns_final_roster(self):
        directory = CellDirectory()
        for node in ("c", "a", "b"):
            directory.assign(node, "cell-0")
        assert directory.retire("cell-0") == ("a", "b", "c")
        assert directory.cells() == ()
        assert directory.cell_of("a") is None

    def test_largest_and_smallest_break_ties_by_name(self):
        directory = CellDirectory()
        for node in ("a", "b"):
            directory.assign(node, "cell-1")
        for node in ("c", "d"):
            directory.assign(node, "cell-0")
        directory.assign("e", "cell-2")
        assert directory.largest_cell() == "cell-0"
        assert directory.smallest_cell() == "cell-2"
        assert directory.smallest_cell(excluding="cell-2") == "cell-0"

    def test_empty_directory_has_no_planning_targets(self):
        directory = CellDirectory()
        assert directory.largest_cell() is None
        assert directory.smallest_cell() is None

    def test_plan_split_halves_the_sorted_roster(self):
        half_a, half_b = CellDirectory.plan_split(("d", "b", "a", "c"))
        assert half_a == ("a", "b")
        assert half_b == ("c", "d")
        # Odd rosters put the extra member in the first half.
        half_a, half_b = CellDirectory.plan_split(("a", "b", "c"))
        assert half_a == ("a", "b")
        assert half_b == ("c",)


class TestCellGovernor:
    def test_budget_exhaustion_refuses(self):
        governor = CellGovernor(budget=2, window=60.0, cooldown=30.0,
                                flap_limit=0)
        assert governor.admit_reshape({"a": "cell-1"}, now=1.0)
        assert governor.admit_reshape({"b": "cell-2"}, now=2.0)
        assert not governor.admit_reshape({"c": "cell-3"}, now=3.0)
        assert (governor.admitted, governor.refused) == (2, 1)

    def test_zero_budget_is_unlimited(self):
        governor = CellGovernor(budget=0, flap_limit=0)
        for tick in range(10):
            assert governor.admit_reshape({"a": f"cell-{tick}"},
                                          now=float(tick))
        assert governor.admitted == 10

    def test_flapping_node_freezes_its_reshapes(self):
        # Every reshape mints a fresh cell name, so each admitted move is
        # a flip for the mover's damper; the move past ``flap_limit``
        # flips trips the freeze and the *next* reshape is refused.
        governor = CellGovernor(budget=0, flap_limit=1, flap_window=60.0,
                                flap_cooldown=120.0)
        assert governor.admit_reshape({"a": "cell-1"}, now=1.0)
        assert governor.admit_reshape({"a": "cell-2"}, now=2.0)
        assert governor.admit_reshape({"a": "cell-3"}, now=3.0)
        assert not governor.admit_reshape({"a": "cell-4"}, now=4.0)
        # An untouched node is unaffected while the flapper thaws.
        assert governor.admit_reshape({"b": "cell-4"}, now=5.0)
        # The freeze expires after the cooldown.
        assert governor.admit_reshape({"a": "cell-5"}, now=4.0 + 121.0)


class _StubDirectory:
    """Minimal ContextDirectory query facade for elector tests."""

    def __init__(self, nodes: dict[str, tuple[str, float]]) -> None:
        self._nodes = dict(nodes)

    def set_battery(self, node_id: str, fraction: float) -> None:
        kind, _ = self._nodes[node_id]
        self._nodes[node_id] = (kind, fraction)

    def value(self, node_id, attribute, default=None):
        entry = self._nodes.get(node_id)
        if entry is None:
            return default
        if attribute == DEVICE_TYPE:
            return entry[0]
        if attribute == BATTERY:
            return entry[1]
        return default


class TestGatewayElector:
    def test_fixed_members_preferred_over_mobile(self):
        directory = _StubDirectory({"m1": ("mobile", 1.0),
                                    "f1": ("fixed", 0.2)})
        elector = GatewayElector(directory)
        assert elector.elect("cell-0", ("m1", "f1"), now=0.0) == "f1"

    def test_best_battery_breaks_ties_among_fixed(self):
        directory = _StubDirectory({"a": ("fixed", 0.4),
                                    "b": ("fixed", 0.9),
                                    "c": ("fixed", 0.6)})
        elector = GatewayElector(directory)
        assert elector.elect("cell-0", ("a", "b", "c"), now=0.0) == "b"

    def test_empty_roster_elects_nobody(self):
        elector = GatewayElector(_StubDirectory({}))
        assert elector.elect("cell-0", (), now=0.0) is None
        assert elector.gateway_of("cell-0") is None

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError):
            GatewayElector(_StubDirectory({}), selector="psychic")

    def test_damping_keeps_previous_gateway_under_oscillation(self):
        directory = _StubDirectory({"a": ("mobile", 0.9),
                                    "b": ("mobile", 0.8)})
        elector = GatewayElector(directory, flap_limit=1)
        roster = ("a", "b")
        assert elector.elect("cell-0", roster, now=0.0) == "a"
        # One real handover is allowed through (first flip).
        directory.set_battery("a", 0.5)
        assert elector.elect("cell-0", roster, now=1.0) == "b"
        assert elector.handovers == 1
        # The oscillation back trips the damper: previous holder kept.
        directory.set_battery("a", 0.95)
        assert elector.elect("cell-0", roster, now=2.0) == "b"
        assert elector.handovers == 1

    def test_losing_the_gateway_overrides_damping(self):
        directory = _StubDirectory({"a": ("mobile", 0.9),
                                    "b": ("mobile", 0.8),
                                    "c": ("mobile", 0.1)})
        elector = GatewayElector(directory, flap_limit=1)
        roster = ("a", "b", "c")
        assert elector.elect("cell-0", roster, now=0.0) == "a"
        directory.set_battery("a", 0.5)
        assert elector.elect("cell-0", roster, now=1.0) == "b"
        directory.set_battery("a", 0.95)
        assert elector.elect("cell-0", roster, now=2.0) == "b"
        # The damped holder departs: a cell must stay bridged.
        assert elector.elect("cell-0", ("a", "c"), now=3.0) == "a"

    def test_forget_drops_retired_cell_state(self):
        directory = _StubDirectory({"a": ("fixed", 1.0)})
        elector = GatewayElector(directory)
        elector.elect("cell-0", ("a",), now=0.0)
        elector.forget("cell-0")
        assert elector.gateway_of("cell-0") is None


def _session(max_gap: int = 4) -> tuple[FederationRouterSession, list]:
    session = FederationRouterSession(FederationRouterLayer(max_gap=max_gap))
    delivered: list[dict] = []
    session.on_entry = delivered.append
    return session, delivered


def _entry(n: int, cell: str = "cell-0", sender: str = "a") -> dict:
    return {"cell": cell, "sender": sender, "n": n, "text": f"t{n}"}


class TestFederationRouterSession:
    def test_first_sighting_sets_the_stream_baseline(self):
        session, delivered = _session()
        session._ingest(_entry(5))
        assert [e["n"] for e in delivered] == [5]
        assert session.export_cursors() == {("cell-0", "a"): 6}

    def test_in_order_entries_flow_through(self):
        session, delivered = _session()
        for n in (0, 1, 2):
            session._ingest(_entry(n))
        assert [e["n"] for e in delivered] == [0, 1, 2]
        assert session.duplicates == 0

    def test_duplicates_are_dropped(self):
        session, delivered = _session()
        session._ingest(_entry(0))
        session._ingest(_entry(0))
        assert [e["n"] for e in delivered] == [0]
        assert session.duplicates == 1
        # A held (not yet delivered) entry is a duplicate too.
        session._ingest(_entry(3))
        session._ingest(_entry(3))
        assert session.duplicates == 2

    def test_reordered_entries_drain_in_sequence(self):
        session, delivered = _session()
        session._ingest(_entry(0))
        session._ingest(_entry(2))
        assert [e["n"] for e in delivered] == [0]
        session._ingest(_entry(1))
        assert [e["n"] for e in delivered] == [0, 1, 2]

    def test_streams_are_independent(self):
        session, delivered = _session()
        session._ingest(_entry(0, sender="a"))
        session._ingest(_entry(7, sender="b"))
        assert [(e["sender"], e["n"]) for e in delivered] == \
            [("a", 0), ("b", 7)]

    def test_unclosing_gap_skips_forward(self):
        session, delivered = _session(max_gap=4)
        session._ingest(_entry(0))
        for n in (10, 11, 12, 13):
            session._ingest(_entry(n))
        assert [e["n"] for e in delivered] == [0]  # hole still open
        session._ingest(_entry(14))  # held buffer exceeds max_gap
        assert [e["n"] for e in delivered] == [0, 10, 11, 12, 13, 14]
        assert session.skipped == 9  # entries 1..9 acknowledged lost

    def test_adopted_cursors_only_raise(self):
        session, delivered = _session()
        session.adopt_cursors({("cell-0", "a"): 7})
        session._ingest(_entry(6))
        assert delivered == [] and session.duplicates == 1
        session._ingest(_entry(7))
        assert [e["n"] for e in delivered] == [7]
        # A stale predecessor snapshot cannot move a cursor backwards.
        session.adopt_cursors({("cell-0", "a"): 3})
        assert session.export_cursors() == {("cell-0", "a"): 8}
