"""End-to-end federation runs: reshapes, bridging, equivalence, fuzz IO.

The unit pieces are covered in ``test_cells.py``; these tests drive the
:class:`~repro.federation.runner.FederationRunner` through whole
scenarios with the always-on invariants armed and assert the emergent
properties the ISSUE promises: splits and merges actually happen, the
room stays whole across cells, admitted joiners get the backlog tail,
joiners land in a reachable cell, runs are deterministic, and the flat
stack's behaviour is untouched (``cells=1`` equivalence gate).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.federation.library import day_night_migration, flash_crowd_split
from repro.federation.runner import FederationRunner
from repro.scenarios import library
from repro.scenarios.fuzz import (ALWAYS_ON, scenario_from_dict,
                                  scenario_to_dict)
from repro.scenarios.runner import run_scenario
from repro.scenarios.scenario import (MergeCell, NodeSpec, Partition,
                                      Scenario, SplitCell)

pytestmark = pytest.mark.tier1


def _small_flash_crowd() -> Scenario:
    # Two cells of 8 (max 10) and a crowd of 8: joiners balance across
    # the cells, so both reach 12 and overflow — a crowd smaller than
    # ``2 * cells`` would spread itself below the threshold instead.
    return flash_crowd_split(members=16, cell_size=8, messages=6,
                             duration_s=60.0)


class TestFlashCrowdSplit:
    def test_crowd_overflow_splits_and_rebridges(self):
        result = run_scenario(_small_flash_crowd(), seed=3,
                              invariants=ALWAYS_ON)
        # Two initial cells; the crowd overflows them into splits.
        assert len(result.cells) >= 3
        assert any(" split " in line for line in result.trace)
        # Every surviving cell is bridged by an elected gateway.
        assert set(result.gateways) == set(result.cells)
        for cell, gateway in result.gateways.items():
            assert gateway in result.cells[cell]

    def test_room_stays_whole_across_cells(self):
        scenario = _small_flash_crowd()
        result = run_scenario(scenario, seed=3, invariants=ALWAYS_ON)
        # Both corner streams reach members of every cell: pick one
        # resident per final cell and require both prefixes in its log.
        for cell, members in result.cells.items():
            witness = next(m for m in members if m.startswith("n"))
            texts = result.texts[witness]
            assert any(t.startswith("a-") for t in texts), \
                f"{witness} in {cell} never saw the a-stream"
            assert any(t.startswith("z-") for t in texts), \
                f"{witness} in {cell} never saw the z-stream"

    def test_runs_are_deterministic(self):
        scenario = _small_flash_crowd()
        first = run_scenario(scenario, seed=3, invariants=ALWAYS_ON)
        second = run_scenario(scenario, seed=3, invariants=ALWAYS_ON)
        assert first == second

    def test_cross_cell_and_backlog_markers(self):
        # Run through the runner object so the per-node delivery
        # histories (with their markers) stay inspectable.
        runner = FederationRunner(_small_flash_crowd(), seed=3,
                                  invariants=ALWAYS_ON)
        runner.run()
        markers = {marker
                   for node in runner.morpheus.values()
                   for marker in (d.marker for d in node.chat.history)}
        assert "fed" in markers, "no cross-cell delivery happened"
        assert "backlog" in markers, "no admission backlog was served"
        # The crowd joins mid-conversation: each joiner's history must
        # open with served backlog, not live traffic.
        joiners = [node for name, node in runner.morpheus.items()
                   if name.startswith("x")]
        assert joiners
        served = [node for node in joiners
                  if any(d.marker == "backlog" for d in node.chat.history)]
        assert served, "no crowd joiner received the room tail"


class TestDayNightMigration:
    def test_evening_leaves_merge_a_cell_away(self):
        scenario = day_night_migration(members=12, messages=4,
                                       duration_s=130.0)
        result = run_scenario(scenario, seed=5, invariants=ALWAYS_ON)
        assert any(" merge " in line for line in result.trace)
        # Every leaver is gone from the final rosters.
        final = {m for members in result.cells.values() for m in members}
        assert final.isdisjoint({f"n{i:03d}" for i in range(4)})


class TestJoinerAdmission:
    def test_joiner_enters_a_reachable_cell(self):
        # Two tied cells; a partition leaves only the higher-named one
        # audible to the joiner.  Size alone would pick the lower name —
        # admission must weigh reachability first.
        residents = tuple(NodeSpec(f"n{i}", "fixed") for i in range(6))
        joiner = NodeSpec("j0", "mobile", join_at=12.0)
        scenario = Scenario(
            name="reachable_admission",
            duration_s=40.0,
            nodes=residents + (joiner,),
            events=(Partition(2.0, groups=(("n0", "n1", "n2"),
                                           ("n3", "n4", "n5", "j0"))),),
            cells=2,
            heartbeat_interval=2.0,
        )
        result = run_scenario(scenario, seed=1, invariants=ALWAYS_ON)
        home = next(cell for cell, members in result.cells.items()
                    if "j0" in members)
        assert set(result.cells[home]) & {"n3", "n4", "n5"}, \
            f"j0 was admitted into the unreachable cell {home}"


class TestOneCellEquivalence:
    """``cells=1`` must be byte-identical to the flat stack.

    The federation runner with one cell and no thresholds boots the same
    protocols over the same engine; any drift in delivered text, view
    history or reconfiguration count is a regression in the refactor's
    central promise.
    """

    CANNED = [
        ("commuter_handoff",
         lambda: library.commuter_handoff(messages=40, duration_s=60.0)),
        ("flash_crowd_join",
         lambda: library.flash_crowd_join(messages=40, duration_s=50.0)),
        ("degrading_channel_fec",
         lambda: library.degrading_channel_fec(messages=60, degrade_at=15.0,
                                               clear_at=35.0,
                                               duration_s=55.0)),
        ("churn_storm",
         lambda: library.churn_storm(messages=60, duration_s=60.0)),
        ("partition_heal",
         lambda: library.partition_heal(messages=60, duration_s=60.0)),
    ]

    @pytest.mark.parametrize("name,build", CANNED,
                             ids=[name for name, _ in CANNED])
    def test_one_cell_matches_flat(self, name, build):
        scenario = build()
        flat = run_scenario(scenario, seed=11, invariants=ALWAYS_ON)
        celled = run_scenario(dataclasses.replace(scenario, cells=1),
                              seed=11, invariants=ALWAYS_ON)
        # The only permitted difference is the federation bookkeeping.
        flat.cells, celled.cells = {}, {}
        flat.gateways, celled.gateways = {}, {}
        assert flat == celled


class TestFuzzSerialization:
    def test_split_merge_events_round_trip(self):
        scenario = Scenario(
            name="reshape_roundtrip",
            duration_s=30.0,
            nodes=tuple(NodeSpec(f"n{i}") for i in range(4)),
            events=(SplitCell(10.0, cell="cell-0"),
                    MergeCell(20.0, cell="cell-1", into="cell-2"),
                    MergeCell(25.0)),
            cells=2,
            cell_size_max=3,
            cell_size_min=1,
            backlog_n=4,
            reconcile=True,
        )
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario
