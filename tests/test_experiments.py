"""Smoke tests: every experiment harness runs and keeps its shape.

These are scaled far below the benchmark sizes — they guard against the
harnesses rotting, not against performance drift (that is what
``pytest benchmarks/ --benchmark-only`` is for).
"""

from __future__ import annotations

import pytest

from repro.experiments.control_overhead import (control_fraction,
                                                format_breakdown,
                                                run_breakdown)
from repro.experiments.energy_lifetime import format_results, run_lifetime
from repro.experiments.fec_crossover import (format_sweep as format_fec,
                                             run_recovery)
from repro.experiments.figure2_stacks import deploy_stacks, render, verify
from repro.experiments.figure3 import (Figure3Config, format_figure3,
                                       run_figure3, run_scenario)
from repro.experiments.gossip_scale import format_sweep as format_gossip
from repro.experiments.gossip_scale import run_scale
from repro.experiments.kernel_micro import run_all as run_kernel_micro
from repro.experiments.reconfiguration import run_reconfiguration
from repro.experiments.report import format_table
from repro.experiments.scenario_suite import format_suite, run_suite


TINY = Figure3Config(node_counts=(2, 3), messages=60, warmup=20.0,
                     drain=10.0, seed=1)


class TestFigure3Harness:
    def test_both_series_and_rendering(self):
        points = run_figure3(TINY)
        table = format_figure3(points, TINY.messages)
        assert "devices" in table and "optimized" in table
        for point in points:
            assert point.optimized.delivered_everywhere
            assert point.not_optimized.delivered_everywhere

    def test_scenario_counts_match_paper_formula(self):
        result = run_scenario(3, optimized=False, config=TINY)
        assert result.sent_data == TINY.messages * 2
        result = run_scenario(3, optimized=True, config=TINY)
        assert result.sent_data == TINY.messages


class TestFigure2Harness:
    def test_deploy_render_verify(self):
        captured = deploy_stacks(num_mobile=1, seed=2, settle_s=15.0)
        assert verify(captured) == []
        text = render(captured)
        assert "mecho/wired" in text and "mecho/wireless" in text


class TestAblationHarnesses:
    def test_reconfiguration_harness(self):
        result = run_reconfiguration(3, seed=5)
        assert result.messages_lost == 0
        assert result.latency_s > 0

    def test_fec_crossover_harness(self):
        arq = run_recovery(0.1, "arq", messages=40, seed=3)
        fec = run_recovery(0.1, "fec", messages=40, seed=3)
        assert arq.delivery_ratio > 0.95
        assert fec.delivery_ratio > 0.95
        table = format_fec([(arq, fec)])
        assert "arq" in table

    def test_gossip_scale_harness(self):
        flood = run_scale(8, "flood", messages=10, seed=4)
        gossip = run_scale(8, "gossip", messages=10, seed=4)
        assert flood.origin_sent_per_multicast == 7.0
        assert gossip.delivery_ratio > 0.8
        assert "flood" in format_gossip([(flood, gossip)])

    def test_energy_lifetime_harness(self):
        result = run_lifetime("rotating", num_nodes=3, capacity_mj=800.0,
                              horizon_s=300.0, seed=6)
        assert 0 < result.lifetime_s <= 300.0
        assert "rotating" in format_results([result])

    def test_control_overhead_harness(self):
        adaptive, baseline = run_breakdown(num_nodes=3, messages=60, seed=7)
        assert control_fraction(baseline) < control_fraction(adaptive) < 1.0
        table = format_breakdown(adaptive, baseline)
        assert "ApplicationMessage" in table

    def test_kernel_micro_harness(self):
        results = run_kernel_micro()
        by_name = {r.name: r for r in results}
        assert any("routing throughput" in name for name in by_name)
        optimization = next(r for r in results
                            if "dispatches/event" in r.name)
        assert optimization.value == 1.0


class TestScenarioSuiteHarness:
    def test_scaled_down_suite_runs_and_renders(self):
        results = run_suite(["commuter_handoff", "flash_crowd_join"],
                            seed=1, messages=30)
        table = format_suite(results)
        assert "commuter_handoff" in table and "flash_crowd_join" in table
        for result in results:
            assert result.reconfiguration_count() >= 1


class TestReportFormatting:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table
