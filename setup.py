"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that the package can be installed in
offline environments that lack the ``wheel`` package required by PEP-517
editable builds (``python setup.py develop`` needs only setuptools).
"""

from setuptools import setup

setup()
