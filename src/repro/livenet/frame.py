"""The datagram frame: ``Packet`` metadata + codec blobs on a real wire.

ROADMAP direction 4 called the shot: the compact codec's frozen
``WirePayload`` blob *is* the framing a socket transport puts on the wire.
A frame is::

    MAGIC(1) VERSION(1) varint(len(meta)) meta body

where ``meta`` and ``body`` are both :mod:`repro.kernel.codec` values —
``meta`` a tuple of the packet's addressing and accounting fields, ``body``
the carried :class:`~repro.kernel.message.Message` (tag ``0x0E``, whose
frozen payload blob is re-embedded verbatim via tag ``0x0F``).  Decoding
rebuilds a :class:`~repro.kernel.packet.Packet` that is
indistinguishable, to the receiving transport session, from the record the
simulator would have delivered: same event class (resolved by its unique
``__name__`` — the :class:`SendableEvent` wire contract), same logical
source, same byte charges (carried explicitly so live counters reproduce
the sender's accounting exactly).

Safety contract for the receive loop: **every** malformed input —
truncation, garbage bytes, an oversized datagram, an unknown frame
version, an unknown event class — raises :class:`CodecError` and nothing
else.  The transport counts and drops; a bad datagram can never crash the
node.
"""

from __future__ import annotations

from repro.kernel import codec
from repro.kernel.codec import CodecError, decode_payload, encode_payload
from repro.kernel.message import Message
from repro.kernel.packet import Packet

# The wire vocabulary: importing the protocol events module guarantees
# every stack-deployable SendableEvent subclass exists before the first
# decode resolves names against the subclass tree.
import repro.protocols.events  # noqa: F401  (registers wire event classes)

#: First frame byte; anything else is not ours (or is hopelessly mangled).
FRAME_MAGIC = 0xA9
#: Frame layout version; bumped on any incompatible change.
FRAME_VERSION = 1
#: Largest UDP payload over IPv4 (65535 - 8 UDP - 20 IP).  Frames beyond
#: this cannot leave the socket; the check fails fast on both sides.
MAX_DATAGRAM_BYTES = 65507

_META_FIELDS = 8  # src, logical_src, port, event, dst, class, sizes


#: Re-exported from the codec: the frame header and embedded class
#: references (codec tag ``0x10``) share one resolver, so both honour the
#: same unique-``__name__`` wire contract.
resolve_event_class = codec.resolve_event_class


def encode_frame(packet: Packet) -> bytes:
    """Serialize ``packet`` into one datagram.

    Raises:
        CodecError: if the frame would exceed :data:`MAX_DATAGRAM_BYTES`
            (an application payload too large for a single datagram — the
            caller drops and counts it) or the message contains values
            outside the wire format.
    """
    meta = (packet.src, packet.logical_src, packet.port,
            packet.event_cls.__name__, packet.dst, packet.traffic_class,
            packet.size_bytes, packet.wire_bytes)
    meta_blob, _ = encode_payload(meta)
    body_blob, _ = encode_payload(packet.message)
    out = bytearray((FRAME_MAGIC, FRAME_VERSION))
    codec._append_varint(out, len(meta_blob))
    out += meta_blob
    out += body_blob
    if len(out) > MAX_DATAGRAM_BYTES:
        raise CodecError(
            f"frame of {len(out)} bytes exceeds the {MAX_DATAGRAM_BYTES}-"
            f"byte datagram limit ({packet!r})")
    return bytes(out)


def decode_frame(data: bytes) -> Packet:
    """Rebuild the :class:`Packet` one datagram carries.

    Raises:
        CodecError: for every malformed input — truncated or garbage
            frames, oversized datagrams, unknown versions, unknown event
            classes, meta tuples of the wrong shape.  No other exception
            escapes (arbitrary bytes must never crash the receive loop).
    """
    if len(data) > MAX_DATAGRAM_BYTES:
        raise CodecError(f"oversized datagram ({len(data)} bytes)")
    if len(data) < 3:
        raise CodecError(f"truncated frame ({len(data)} bytes)")
    if data[0] != FRAME_MAGIC:
        raise CodecError(f"bad frame magic 0x{data[0]:02X}")
    if data[1] != FRAME_VERSION:
        raise CodecError(f"unknown frame version {data[1]}")
    try:
        meta_len, pos = codec._read_varint(data, 2)
        end = pos + meta_len
        if end > len(data):
            raise CodecError(f"truncated frame meta ({meta_len} declared, "
                             f"{len(data) - pos} present)")
        meta = decode_payload(data[pos:end])
        message = decode_payload(data[end:])
    except CodecError:
        raise
    except Exception as exc:
        # The codec's own errors are CodecError, but adversarial bytes can
        # still reach e.g. UTF-8 decoding; fold everything into the one
        # exception the receive loop handles.
        raise CodecError(f"malformed frame: {exc}") from exc
    if not isinstance(meta, tuple) or len(meta) != _META_FIELDS:
        raise CodecError(f"bad frame meta shape: {meta!r}")
    src, logical_src, port, event_name, dst, traffic_class, \
        size_bytes, wire_bytes = meta
    if not (isinstance(src, str) and isinstance(logical_src, str) and
            isinstance(port, str) and isinstance(event_name, str) and
            isinstance(traffic_class, str) and
            isinstance(size_bytes, int) and isinstance(wire_bytes, int) and
            isinstance(dst, (str, tuple))):
        raise CodecError(f"bad frame meta field types: {meta!r}")
    if not isinstance(message, Message):
        raise CodecError(f"frame body is not a message: {type(message)}")
    event_cls = resolve_event_class(event_name)
    return Packet(src=src, dst=dst, port=port, event_cls=event_cls,
                  message=message, logical_src=logical_src,
                  traffic_class=traffic_class, size_bytes=size_bytes,
                  wire_bytes=wire_bytes)
