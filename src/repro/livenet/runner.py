"""Scenario replay over real sockets: the live half of the conformance pair.

:class:`LiveScenarioRunner` subclasses the simulator's
:class:`~repro.scenarios.runner.ScenarioRunner` and overrides exactly two
things: the network it builds (a :class:`~repro.livenet.network.LiveNetwork`
on a :class:`~repro.livenet.clock.WallClock`) and the run orchestration
(an asyncio main that pre-opens every node's UDP endpoint — future
joiners included, since sockets are created asynchronously but the
scenario machinery runs synchronously — then lets real time drive the
virtual horizon).  Scheduling, event application, Morpheus boot, workload
bursts and result collection are all inherited: the scenario executes
through the same code paths on both backends, which is what makes the
sim-vs-live diff meaningful.

Determinism caveat, by design: the *schedule* (joins, crashes,
partitions, bursts) lands at the same virtual instants as in simulation
and the impairment shim draws from the same seeded loss models, but
socket latency and OS scheduling jitter make packet interleavings
slightly different run to run.  The conformance suite therefore compares
the protocol-level outcomes that must be timing-independent — delivery
histories of continuously-live members, view-membership sequences, final
deployments — against the simulated oracle, not raw event traces.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.livenet.clock import WallClock
from repro.livenet.network import LiveNetwork
from repro.scenarios.runner import (InvariantCheck, ScenarioResult,
                                    ScenarioRunner)
from repro.scenarios.scenario import Scenario

#: Default virtual-per-real compression for scenario replay.  10× keeps a
#: 1 s virtual heartbeat at 100 ms real — far above OS timer jitter — while
#: a 90 s scenario finishes in 9 s of wall clock.
DEFAULT_TIME_SCALE = 10.0


class LiveScenarioRunner(ScenarioRunner):
    """Executes one :class:`Scenario` over asyncio UDP loopback sockets.

    Args:
        scenario: the declarative run description.
        seed: run seed — same derivation as the simulator, so the
            impairment shim's loss models replay the simulator's seeds.
        invariants: checks run after completion (same contract as the
            simulated runner).
        time_scale: virtual seconds per real second (see
            :class:`WallClock`).
        impaired: route local frames through the loopback impairment shim
            (loss/delay); disable for raw-socket runs.
    """

    def __init__(self, scenario: Scenario, seed: int = 0,
                 invariants: Sequence[InvariantCheck] = (),
                 time_scale: float = DEFAULT_TIME_SCALE,
                 impaired: bool = True) -> None:
        super().__init__(scenario, seed=seed,
                         engine_factory=lambda: WallClock(
                             time_scale=time_scale),
                         invariants=invariants)
        self.time_scale = time_scale
        self.impaired = impaired

    def _build_network(self):
        scenario = self.scenario
        return LiveNetwork(
            self.engine, seed=self.seed,
            wired=self._link(scenario.wired, "wired"),
            wireless=self._link(scenario.wireless, "wireless"),
            impaired=self.impaired)

    def run(self) -> ScenarioResult:
        """Synchronous entry point: owns a private event loop."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> ScenarioResult:
        """Execute the scenario on the running event loop."""
        loop = asyncio.get_running_loop()
        self.engine = self.engine_factory()
        self.engine.attach(loop)
        self.network = self._build_network()
        try:
            # Every endpoint (joiners included) opens before t=0: socket
            # creation is the only async construction step, and fronting
            # it keeps mid-run joins synchronous, like the simulator's.
            for spec in self.scenario.nodes:
                await self.network.open_endpoint(spec.node_id)
            self._populate()
            self._schedule()
            await self.engine.run_until(self.scenario.duration_s)
            return self._finalize()
        finally:
            await self.network.close()


def run_scenario_live(scenario: Scenario, seed: int = 0,
                      invariants: Sequence[InvariantCheck] = (),
                      time_scale: float = DEFAULT_TIME_SCALE,
                      impaired: bool = True) -> ScenarioResult:
    """One-call convenience: replay ``scenario`` over live sockets."""
    return LiveScenarioRunner(scenario, seed=seed, invariants=invariants,
                              time_scale=time_scale, impaired=impaired).run()
