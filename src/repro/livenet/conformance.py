"""Sim-vs-live conformance: the simulator is the oracle for the sockets.

A conformance case replays one canned scenario twice — once on the
deterministic simulator, once over real UDP loopback sockets with the
impairment shim — and diffs the protocol-level outcomes that must be
timing-independent:

* **delivery histories** (chat texts, in delivery order) of *stable*
  nodes — members present from t=0 that never crash, leave, or sit on the
  far side of a partition from the sender.  Stability matters because the
  two known protocol gaps (no state transfer on join, no partition-merge
  reconciliation — both ROADMAP carried-over items) make joiners' and
  partitioned nodes' histories legitimately timing-dependent;
* **view-membership sequences**: the deduplicated succession of
  membership sets each stable node installed on the control channel;
* **final control views** and the **final deployed configuration**;
* **byte-counter sanity**: the live run must have moved real traffic
  (sent/delivered counters are reported in full for diagnosis, but not
  compared exactly — retransmission counts are timing-dependent).

On any mismatch the full sim/live payloads are written as a JSON
divergence trace (:func:`write_divergence_trace`) for the CI job to
upload as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.livenet.runner import (DEFAULT_TIME_SCALE, LiveScenarioRunner)
from repro.scenarios.library import canned
from repro.scenarios.runner import ScenarioRunner, ScenarioResult
from repro.scenarios.scenario import Crash, Leave, Scenario


@dataclass(frozen=True)
class ConformanceCase:
    """One canned scenario sized for conformance replay.

    ``overrides`` shrink the workload so every burst ends well before the
    horizon — the settle window is what lets NACK recovery finish on both
    backends, making exact delivery-history equality a fair assertion.
    ``stable`` names the nodes whose histories must match the oracle.
    """

    name: str
    stable: tuple[str, ...]
    overrides: dict = field(default_factory=dict)

    def build(self) -> Scenario:
        return canned(self.name, **self.overrides)


#: The conformance suite: every canned scenario, each with its stable set.
#: Partition/churn cases compare only the sender-side / continuously-live
#: members (see the module docstring for why).
CONFORMANCE_CASES: tuple[ConformanceCase, ...] = (
    ConformanceCase("commuter_handoff",
                    stable=("commuter", "fixed-0", "fixed-1"),
                    overrides={"messages": 40}),
    ConformanceCase("flash_crowd_join",
                    stable=("fixed-0", "fixed-1"),
                    overrides={"messages": 40}),
    ConformanceCase("degrading_channel_fec",
                    stable=("fixed-0", "fixed-1", "fixed-2", "mobile-0"),
                    overrides={"messages": 120}),
    ConformanceCase("churn_storm",
                    stable=("fixed-0", "mobile-0"),
                    overrides={"messages": 60}),
    ConformanceCase("partition_heal",
                    stable=("fixed-0", "fixed-1"),
                    overrides={"messages": 60}),
)


def stable_members(scenario: Scenario) -> tuple[str, ...]:
    """Default stable set: t=0 members that never crash or leave.

    Partition scenarios need an explicit set (which side of the cut is
    stable depends on where the workload's sender sits, which this
    inference cannot see).
    """
    t0 = {spec.node_id for spec in scenario.nodes if spec.join_at is None}
    for event in scenario.events:
        if isinstance(event, (Crash, Leave)):
            t0.discard(event.node)
    return tuple(sorted(t0))


def view_sequences(runner: ScenarioRunner,
                   node_ids: Sequence[str]) -> dict[str, list[list[str]]]:
    """Deduplicated control-channel membership-set sequence per node.

    Reads the membership layer's install log *after* the run (the runner
    object keeps its Morpheus nodes alive), deduplicating consecutive
    identical member sets: install *times* and view ids are
    timing-dependent, the succession of memberships is not.
    """
    sequences: dict[str, list[list[str]]] = {}
    for node_id in node_ids:
        morpheus = runner.morpheus[node_id]
        membership = morpheus.control_channel.session_named("membership")
        sequence: list[list[str]] = []
        for _when, _view_id, members, _departed in membership.install_log:
            entry = list(members)
            if not sequence or sequence[-1] != entry:
                sequence.append(entry)
        sequences[node_id] = sequence
    return sequences


def _payload(result: ScenarioResult,
             views: dict[str, list[list[str]]],
             stable: Sequence[str]) -> dict:
    return {
        "texts": {node: list(result.texts.get(node, ()))
                  for node in stable},
        "views": views,
        "control_views": {node: list(result.control_views.get(node, ()))
                          for node in stable},
        "deployed": {node: result.deployed.get(node)
                     for node in stable},
        "counters": {
            "delivered_packets": result.delivered_packets,
            "lost_packets": result.lost_packets,
            "per_node": {node: result.stats.get(node, {})
                         for node in stable},
        },
        "reconfigurations": len(result.reconfigurations),
        "trace": list(result.trace),
    }


@dataclass
class ConformanceReport:
    """The outcome of one sim-vs-live replay, with full diff payloads."""

    scenario: str
    seed: int
    time_scale: float
    stable: tuple[str, ...]
    mismatches: tuple[str, ...]
    sim: dict
    live: dict

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self) -> str:
        return json.dumps({
            "scenario": self.scenario,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "stable_nodes": list(self.stable),
            "mismatches": list(self.mismatches),
            "sim": self.sim,
            "live": self.live,
        }, indent=2, sort_keys=True, default=str)


def _first_divergence(a: list, b: list) -> str:
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return f"first divergence at [{index}]: {left!r} != {right!r}"
    return f"lengths differ: {len(a)} vs {len(b)}"


def run_conformance(case: ConformanceCase, seed: int = 0,
                    time_scale: float = DEFAULT_TIME_SCALE
                    ) -> ConformanceReport:
    """Replay one case on both backends and diff the outcomes."""
    scenario = case.build()
    stable = case.stable or stable_members(scenario)

    sim_runner = ScenarioRunner(scenario, seed=seed)
    sim_result = sim_runner.run()
    sim_views = view_sequences(sim_runner, stable)

    live_runner = LiveScenarioRunner(case.build(), seed=seed,
                                     time_scale=time_scale)
    live_result = live_runner.run()
    live_views = view_sequences(live_runner, stable)

    mismatches: list[str] = []
    for node in stable:
        sim_texts = list(sim_result.texts.get(node, ()))
        live_texts = list(live_result.texts.get(node, ()))
        if sim_texts != live_texts:
            mismatches.append(
                f"{node}: delivery history diverges — "
                f"{_first_divergence(sim_texts, live_texts)}")
        if sim_views[node] != live_views[node]:
            mismatches.append(
                f"{node}: view sequence diverges — "
                f"{_first_divergence(sim_views[node], live_views[node])}")
        sim_final = list(sim_result.control_views.get(node, ()))
        live_final = list(live_result.control_views.get(node, ()))
        if sim_final != live_final:
            mismatches.append(f"{node}: final control view "
                              f"{live_final} != oracle {sim_final}")
        if sim_result.deployed.get(node) != live_result.deployed.get(node):
            mismatches.append(
                f"{node}: deployed config "
                f"{live_result.deployed.get(node)!r} != oracle "
                f"{sim_result.deployed.get(node)!r}")
    if live_result.delivered_packets <= 0:
        mismatches.append("live run delivered no packets at all")
    for node in stable:
        if live_result.stats.get(node, {}).get("sent_total", 0) <= 0:
            mismatches.append(f"{node}: live node sent no packets")

    return ConformanceReport(
        scenario=scenario.name, seed=seed, time_scale=time_scale,
        stable=tuple(stable), mismatches=tuple(mismatches),
        sim=_payload(sim_result, sim_views, stable),
        live=_payload(live_result, live_views, stable))


def write_divergence_trace(report: ConformanceReport,
                           directory: str) -> Optional[Path]:
    """Persist a failing report as a JSON artifact; returns its path."""
    if report.ok:
        return None
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{report.scenario}-seed{report.seed}.json"
    path.write_text(report.to_json())
    return path
