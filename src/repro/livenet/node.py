"""Live devices: one UDP endpoint per node, same surface as ``SimNode``.

A :class:`LiveNode` is the :class:`~repro.kernel.transport.TransportEndpoint`
of the asyncio backend: it owns the node's protocol
:class:`~repro.kernel.scheduler.Kernel` (clocked by the shared
:class:`~repro.livenet.clock.WallClock`), the bound-port demultiplexer,
per-NIC traffic counters, and — for mobile nodes — a battery.  Everything
above the transport seam (Morpheus, templates, scenario machinery) is
written against this duck-typed surface and cannot tell the two backends
apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.kernel.packet import Packet
from repro.kernel.scheduler import Kernel
from repro.kernel.transport import PacketReceiver
from repro.simnet.energy import Battery
from repro.simnet.node import NodeKind
from repro.simnet.stats import NodeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.livenet.network import LiveNetwork


class LiveNode:
    """One device of the live system, reachable at a real UDP address.

    Created through :meth:`repro.livenet.network.LiveNetwork.add_node`
    (after its endpoint has been opened); not intended to be constructed
    directly.
    """

    def __init__(self, node_id: str, kind: NodeKind, network: "LiveNetwork",
                 battery: Optional[Battery] = None) -> None:
        self.node_id = node_id
        self.kind = kind
        self.network = network
        self.kernel = Kernel(clock=network.engine, name=node_id)
        self.stats = NodeStats(node_id)
        self.battery = battery
        self.crashed = False
        self._ports: dict[str, PacketReceiver] = {}

    # -- classification ---------------------------------------------------------

    @property
    def is_fixed(self) -> bool:
        return self.kind is NodeKind.FIXED

    @property
    def is_mobile(self) -> bool:
        return self.kind is NodeKind.MOBILE

    @property
    def alive(self) -> bool:
        """False once crashed or (while on the wireless segment)
        battery-depleted — the same liveness rule as the simulator."""
        if self.crashed:
            return False
        if self.is_mobile and self.battery is not None \
                and not self.battery.alive:
            return False
        return True

    # -- port demultiplexing ---------------------------------------------------

    def bind_port(self, port: str, receiver: PacketReceiver) -> None:
        """Register ``receiver`` for packets addressed to ``port``."""
        if port in self._ports:
            raise ValueError(f"port {port!r} already bound on {self.node_id}")
        self._ports[port] = receiver

    def unbind_port(self, port: str) -> None:
        """Release ``port``; unknown ports are ignored."""
        self._ports.pop(port, None)

    @property
    def bound_ports(self) -> tuple[str, ...]:
        return tuple(sorted(self._ports))

    # -- I/O (network-internal entry points) -------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` through the live network."""
        self.network.transmit(self, packet)

    def _on_packet(self, packet: Packet) -> None:
        receiver = self._ports.get(packet.port)
        if receiver is None:
            self.stats.record_dropped()
            return
        receiver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveNode {self.node_id} ({self.kind.value})>"
