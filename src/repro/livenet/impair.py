"""Loopback impairment shim: tc-style egress shaping inside the transport.

Localhost UDP is, for these workloads, effectively instant and lossless —
useless for replaying scenarios whose whole point is loss, latency and
partitions.  This shim reproduces the simulator's link model at the live
transport's egress: every locally-routed datagram is charged the same
per-hop delay (:meth:`LinkParams.delay_for`) and passed through the same
seeded :class:`~repro.simnet.loss.LossModel` draws the simulator would
apply, using the same fixed/mobile hop topology
(:meth:`~repro.simnet.network.Network._hops_between`'s rules).  The
delayed send is scheduled on the :class:`~repro.livenet.clock.WallClock`,
so impairment delays live in virtual time and compress with the run's
``time_scale``.

The shim deliberately *shares* the :class:`LinkParams` objects with its
:class:`~repro.livenet.network.LiveNetwork`: a live loss-model swap
(``set_wireless_loss``) changes subsequent draws here exactly as it does
in the simulator.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.network import LinkParams
from repro.simnet.node import NodeKind


class LoopbackImpairments:
    """Deterministic seeded loss/delay planning for locally-routed frames.

    Args:
        wired: LAN-segment link parameters (shared with the network).
        wireless: wireless-hop link parameters (shared with the network).
    """

    def __init__(self, wired: LinkParams, wireless: LinkParams) -> None:
        self.wired = wired
        self.wireless = wireless

    def hops_between(self, src_kind: NodeKind,
                     dst_kind: NodeKind) -> list[LinkParams]:
        """The link hops a packet crosses, by endpoint segment.

        Same topology rules as the simulator: fixed↔fixed stays on the
        wire, crossing the access point adds a wireless hop each side of
        it, mobile↔mobile relays through the AP (two wireless hops).
        """
        if src_kind is NodeKind.FIXED and dst_kind is NodeKind.FIXED:
            return [self.wired]
        if src_kind is NodeKind.FIXED and dst_kind is NodeKind.MOBILE:
            return [self.wired, self.wireless]
        if src_kind is NodeKind.MOBILE and dst_kind is NodeKind.FIXED:
            return [self.wireless, self.wired]
        return [self.wireless, self.wireless]

    def plan(self, src_kind: NodeKind, dst_kind: NodeKind,
             size_bytes: int) -> Optional[float]:
        """Loss/delay decision for one packet.

        Returns the total virtual delay in seconds, or ``None`` when a
        hop's loss model eats the packet.  One loss draw and one delay
        charge per hop, in hop order — the simulator's exact sequence.
        """
        delay = 0.0
        for link in self.hops_between(src_kind, dst_kind):
            if link.loss.is_lost(size_bytes):
                return None
            delay += link.delay_for(size_bytes)
        return delay
