"""Real asyncio UDP transport backend: the stack as a deployable library.

The same protocol kernel that runs against the deterministic simulator
(:mod:`repro.simnet`) binds here to real localhost sockets:

* :class:`~repro.livenet.clock.WallClock` — a wall-clock scheduler adapter
  driving the kernel's one-shot/backoff timer primitives on an asyncio
  loop, with an optional ``time_scale`` so virtual-second scenarios
  compress into fast real-time runs;
* :mod:`repro.livenet.frame` — the datagram frame putting ``Packet``
  metadata plus the PR 7 codec's ``WirePayload`` blobs directly on the
  wire (varint-framed header over :mod:`repro.kernel.codec`);
* :class:`~repro.livenet.network.LiveNetwork` /
  :class:`~repro.livenet.node.LiveNode` — the asyncio counterpart of
  ``Network``/``SimNode``, satisfying the same
  :class:`~repro.kernel.transport.Transport` seam;
* :class:`~repro.livenet.impair.LoopbackImpairments` — deterministic
  seeded loss/delay injection inside the transport (tc-style egress
  shaping), so canned scenarios replay against real sockets;
* :class:`~repro.livenet.runner.LiveScenarioRunner` — replays declarative
  scenarios over sockets, keeping the simulated twin as the conformance
  oracle (:mod:`repro.livenet.conformance`).
"""

from repro.livenet.clock import WallClock
from repro.livenet.frame import (FRAME_MAGIC, FRAME_VERSION,
                                 MAX_DATAGRAM_BYTES, decode_frame,
                                 encode_frame, resolve_event_class)
from repro.livenet.impair import LoopbackImpairments
from repro.livenet.network import LiveNetwork
from repro.livenet.node import LiveNode
from repro.livenet.runner import LiveScenarioRunner, run_scenario_live

__all__ = [
    "WallClock",
    "FRAME_MAGIC", "FRAME_VERSION", "MAX_DATAGRAM_BYTES",
    "decode_frame", "encode_frame", "resolve_event_class",
    "LoopbackImpairments",
    "LiveNetwork", "LiveNode",
    "LiveScenarioRunner", "run_scenario_live",
]
