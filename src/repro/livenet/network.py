"""The live network: real UDP datagram endpoints behind the Transport seam.

:class:`LiveNetwork` mirrors :class:`repro.simnet.network.Network`'s whole
mutation and query surface — node registry, handoffs, crashes, partitions,
loss-model swaps, topology listeners, delivery counters — but moves packets
as real datagrams: every node owns an asyncio UDP socket
(:meth:`open_endpoint`), outgoing packets are serialized by
:mod:`repro.livenet.frame`, and locally-routed frames pass through the
:class:`~repro.livenet.impair.LoopbackImpairments` shim (seeded loss draws
and per-hop delays scheduled on the shared
:class:`~repro.livenet.clock.WallClock`).

Peers come in two flavours:

* **local** — a :class:`~repro.livenet.node.LiveNode` registered via
  :meth:`add_node` (after :meth:`open_endpoint`); the conformance harness
  runs whole groups this way, in one process, with impairments on;
* **remote** — an address announced via :meth:`register_peer`; the
  multi-process demo runs one local node per process and sends everything
  else straight to its peers' sockets (impairments off — the wire is
  real).

Crash/partition/liveness checks are applied at both egress and ingress,
matching the simulator's send-time and delivery-time checks, so in-flight
frames die exactly where a simulated packet would.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Iterable, Optional

from repro.kernel.codec import CodecError
from repro.kernel.packet import Packet
from repro.livenet.clock import WallClock
from repro.livenet.frame import decode_frame, encode_frame
from repro.livenet.impair import LoopbackImpairments
from repro.livenet.node import LiveNode
from repro.simnet.energy import Battery
from repro.simnet.loss import LossModel
from repro.simnet.network import (LinkParams, TopologyChange,
                                  TopologyListener, default_wired,
                                  default_wireless)
from repro.simnet.node import NodeKind
from repro.simnet.stats import NodeStats, aggregate


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """Receives one node's datagrams and hands them to the network."""

    def __init__(self, network: "LiveNetwork", node_id: str) -> None:
        self.network = network
        self.node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        self.network._on_datagram(self.node_id, data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.network.socket_errors += 1


class LiveNetwork:
    """Asyncio UDP network satisfying the kernel's Transport protocol.

    Args:
        engine: the shared :class:`WallClock` (the run's virtual timeline).
        seed: seed for the network's private random source.
        wired / wireless: link parameters used by the impairment shim (and
            read by the context retrievers, exactly as on the simulator).
        impaired: apply the loopback impairment shim to locally-routed
            frames; the multi-process demo turns this off.
        host: interface to bind endpoints on (loopback by default).
        native_multicast_wired / wireless_broadcast: native-multicast
            legality flags, mirroring the simulator's.
    """

    def __init__(self, engine: WallClock, seed: int = 0,
                 wired: Optional[LinkParams] = None,
                 wireless: Optional[LinkParams] = None,
                 impaired: bool = True,
                 host: str = "127.0.0.1",
                 native_multicast_wired: bool = False,
                 wireless_broadcast: bool = False) -> None:
        self.engine = engine
        self.rng = random.Random(seed)
        self.wired = wired if wired is not None else default_wired()
        self.wireless = wireless if wireless is not None else default_wireless()
        self.impaired = impaired
        self.host = host
        self.native_multicast_wired = native_multicast_wired
        self.wireless_broadcast = wireless_broadcast
        self.impairments = LoopbackImpairments(self.wired, self.wireless)
        self.nodes: dict[str, LiveNode] = {}
        #: Nodes that left for good (stats retained for reporting).
        self.departed: dict[str, LiveNode] = {}
        self._partitions: Optional[list[set[str]]] = None
        #: Packets lost to impairment draws, partitions, or dead receivers.
        self.lost_packets = 0
        #: Packets delivered to a node's NIC.
        self.delivered_packets = 0
        #: Datagrams dropped by the frame decoder (malformed input).
        self.decode_errors = 0
        #: Socket-level errors reported by the event loop.
        self.socket_errors = 0
        #: Bumped on every runtime topology mutation.
        self.topology_epoch = 0
        self._topology_listeners: list[TopologyListener] = []
        self._addresses: dict[str, tuple[str, int]] = {}
        self._transports: dict[str, asyncio.DatagramTransport] = {}

    # -- endpoints ------------------------------------------------------------

    async def open_endpoint(self, node_id: str,
                            port: int = 0) -> tuple[str, int]:
        """Open ``node_id``'s UDP socket; returns the bound ``(host, port)``.

        Must run before :meth:`add_node` registers the node — sockets are
        created asynchronously, nodes synchronously, so a scenario opens
        every endpoint (future joiners included) up front and the rest of
        the run stays synchronous.  Attaches the clock to the running loop
        on first use.
        """
        if node_id in self._transports:
            raise ValueError(f"endpoint for {node_id!r} already open")
        loop = asyncio.get_running_loop()
        if not self.engine.attached:
            self.engine.attach(loop)
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _NodeDatagramProtocol(self, node_id),
            local_addr=(self.host, port))
        sockname = transport.get_extra_info("sockname")
        address = (sockname[0], sockname[1])
        self._transports[node_id] = transport
        self._addresses[node_id] = address
        return address

    def register_peer(self, node_id: str, host: str, port: int) -> None:
        """Announce a remote peer's address (multi-process runs)."""
        if node_id in self._transports:
            raise ValueError(f"{node_id!r} is a local endpoint here")
        self._addresses[node_id] = (host, port)

    def address_of(self, node_id: str) -> tuple[str, int]:
        return self._addresses[node_id]

    async def close(self) -> None:
        """Close every local socket and disarm the clock's wakeup."""
        for transport in self._transports.values():
            transport.close()
        self.engine.shutdown()
        # One loop turn lets the transports run their close callbacks.
        await asyncio.sleep(0)

    # -- topology -------------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind,
                 battery: Optional[Battery] = None) -> LiveNode:
        """Register a node on its (already open) endpoint."""
        if node_id in self.nodes or node_id in self.departed:
            raise ValueError(f"duplicate node id {node_id!r}")
        if node_id not in self._transports:
            raise RuntimeError(
                f"no endpoint open for {node_id!r}; await "
                "open_endpoint() before add_node()")
        if kind is NodeKind.MOBILE and battery is None:
            battery = Battery()
        node = LiveNode(node_id, kind, self, battery=battery)
        self.nodes[node_id] = node
        self._notify("join", node_id, f"as {kind.value}")
        return node

    def add_fixed_node(self, node_id: str) -> LiveNode:
        return self.add_node(node_id, NodeKind.FIXED)

    def add_mobile_node(self, node_id: str,
                        battery: Optional[Battery] = None) -> LiveNode:
        return self.add_node(node_id, NodeKind.MOBILE, battery=battery)

    def node(self, node_id: str) -> LiveNode:
        return self.nodes[node_id]

    def node_ids(self) -> list[str]:
        return sorted(self.nodes)

    def fixed_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_fixed)

    def mobile_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_mobile)

    # -- runtime topology mutation (mirrors Network) ---------------------------

    def subscribe_topology(self, listener: TopologyListener) -> None:
        self._topology_listeners.append(listener)

    def unsubscribe_topology(self, listener: TopologyListener) -> None:
        if listener in self._topology_listeners:
            self._topology_listeners.remove(listener)

    def _notify(self, kind: str, node_id: Optional[str],
                detail: str = "") -> None:
        self.topology_epoch += 1
        change = TopologyChange(kind, node_id, detail, self.topology_epoch)
        for listener in list(self._topology_listeners):
            listener(change)

    def move_node(self, node_id: str, kind: NodeKind) -> LiveNode:
        node = self.nodes[node_id]
        if node.kind is kind:
            return node
        node.kind = kind
        if kind is NodeKind.MOBILE and node.battery is None:
            node.battery = Battery()
        self._notify("move", node_id, f"to {kind.value}")
        return node

    def remove_node(self, node_id: str) -> None:
        node = self.nodes.pop(node_id)
        node.crashed = True
        self.departed[node_id] = node
        self._notify("remove", node_id)

    def set_wireless_loss(self, loss: LossModel) -> None:
        self.wireless.loss = loss
        self._notify("loss", None, f"wireless {loss!r}")

    def set_wired_loss(self, loss: LossModel) -> None:
        self.wired.loss = loss
        self._notify("loss", None, f"wired {loss!r}")

    # -- failure injection -----------------------------------------------------

    def crash_node(self, node_id: str) -> None:
        self.nodes[node_id].crashed = True
        self._notify("crash", node_id)

    def recover_node(self, node_id: str) -> None:
        self.nodes[node_id].crashed = False
        self._notify("recover", node_id)

    def partition(self, *groups: Iterable[str]) -> None:
        self._partitions = [set(group) for group in groups]
        rendered = " | ".join(
            ",".join(sorted(group)) for group in self._partitions)
        self._notify("partition", None, rendered)

    def heal_partition(self) -> None:
        self._partitions = None
        self._notify("heal", None)

    def _reachable(self, src: str, dst: str) -> bool:
        if self._partitions is None:
            return True
        for group in self._partitions:
            if src in group:
                return dst in group
        return False

    # -- transmission ----------------------------------------------------------

    def transmit(self, sender: LiveNode, packet: Packet) -> None:
        """Send ``packet``: count it, charge energy, frame it, route it."""
        if not sender.alive:
            sender.stats.record_dropped()
            return
        packet.sent_at = self.engine.now()
        sender.stats.record_sent(packet)
        if sender.is_mobile and sender.battery is not None:
            sender.battery.consume_tx(packet.size_bytes, self.engine.now())
        if packet.is_multicast:
            self._check_multicast_legal(sender, packet)
            for dst in packet.dst:
                if dst == sender.node_id:
                    continue
                self._route_one(sender, packet.copy_for(dst), dst)
        else:
            self._route_one(sender, packet, packet.dst)

    def _check_multicast_legal(self, sender: LiveNode,
                               packet: Packet) -> None:
        receivers = [d for d in packet.dst if d != sender.node_id]
        if not receivers:
            raise ValueError(
                f"native multicast from {sender.node_id} has no receivers "
                f"(dst={packet.dst!r})")
        # Remote peers' kinds are unknown here; legality is judged on the
        # locally-visible members (the conformance harness runs everything
        # locally, so it sees the simulator's exact rule).
        dst_nodes = [self.nodes[d] for d in packet.dst if d in self.nodes]
        all_fixed = sender.is_fixed and all(n.is_fixed for n in dst_nodes)
        all_mobile = sender.is_mobile and all(n.is_mobile for n in dst_nodes)
        if all_fixed and self.native_multicast_wired:
            return
        if all_mobile and self.wireless_broadcast:
            return
        raise ValueError(
            f"native multicast from {sender.node_id} to {packet.dst} is not "
            "available on this topology")

    def _route_one(self, sender: LiveNode, packet: Packet,
                   dst_id: str) -> None:
        local = self.nodes.get(dst_id)
        if local is None and dst_id not in self._addresses:
            self.lost_packets += 1  # departed or unknown destination
            return
        if not self._reachable(sender.node_id, dst_id):
            self.lost_packets += 1
            return
        try:
            frame = encode_frame(packet)
        except CodecError:
            self.lost_packets += 1
            return
        if local is not None and self.impaired:
            plan = self.impairments.plan(sender.kind, local.kind,
                                         packet.size_bytes)
            if plan is None:
                self.lost_packets += 1
                return
            src_id = sender.node_id
            self.engine.call_later(
                plan, lambda: self._send_frame(src_id, dst_id, frame))
        else:
            self._send_frame(sender.node_id, dst_id, frame)

    def _send_frame(self, src_id: str, dst_id: str, frame: bytes) -> None:
        transport = self._transports.get(src_id)
        address = self._addresses.get(dst_id)
        if transport is None or transport.is_closing() or address is None:
            self.lost_packets += 1
            return
        transport.sendto(frame, address)

    # -- reception -------------------------------------------------------------

    def _on_datagram(self, node_id: str, data: bytes, addr) -> None:
        try:
            packet = decode_frame(data)
        except CodecError:
            self.decode_errors += 1
            return
        node = self.nodes.get(node_id)
        if node is None:
            self.lost_packets += 1  # departed while the frame was in flight
            return
        if not node.alive or not self._reachable(packet.src, node.node_id):
            self.lost_packets += 1
            node.stats.record_dropped()
            return
        self.delivered_packets += 1
        node.stats.record_received(packet)
        if node.is_mobile and node.battery is not None:
            node.battery.consume_rx(packet.size_bytes, self.engine.now())
        node._on_packet(packet)

    # -- reporting -------------------------------------------------------------

    def stats_of(self, node_id: str) -> NodeStats:
        node = self.nodes.get(node_id)
        if node is None:
            node = self.departed[node_id]
        return node.stats

    def total_stats(self) -> dict:
        everyone = list(self.nodes.values()) + list(self.departed.values())
        return aggregate([node.stats for node in everyone])

    def reset_stats(self) -> None:
        for node in list(self.nodes.values()) + list(self.departed.values()):
            node.stats.reset()
        self.lost_packets = 0
        self.delivered_packets = 0
