"""Wall-clock scheduler adapter: kernel timers on an asyncio event loop.

The kernel only ever talks to a :class:`~repro.kernel.clock.Clock`
(``now``/``call_later``), so binding the stack to real time is a clock
implementation, not a kernel change.  :class:`WallClock` keeps its own
``(when, seq)``-ordered heap — the exact total order
:class:`~repro.simnet.engine.SimEngine` fires in, same-instant entries
FIFO by sequence number — and arms **one** asyncio timer at the heap
head, re-arming as the head moves.  That keeps rearm/cancel semantics
(periodic rearm-on-fire, backoff advance, lazy cancellation) identical to
the simulated engine's, which the conformance suite depends on.

Two knobs make it testable and fast:

* ``time_source`` — the real monotonic time function.  Tests inject a
  hand-cranked fake and drive :meth:`poll` directly; live runs default to
  the event loop's clock.
* ``time_scale`` — virtual seconds per real second.  Scenarios are
  written in virtual seconds (heartbeats of 1 s, horizons of 60–90 s); a
  scale of 10 replays them 10× faster without touching a single protocol
  period, because every conversion to real time happens here.

Virtual time is **anchored lazily**: :meth:`now` reads 0 until
:meth:`start` (called by :meth:`run_until`) pins virtual 0 to the
current real instant.  Setup — opening sockets, booting nodes,
scheduling a scenario — therefore happens entirely at virtual t=0, just
as it does on the simulated engine.  Without the anchor, a slow
synchronous boot would silently consume virtual seconds before the
first timer ever fired, skewing every heartbeat/suspicion deadline of
the run (scaled 10×, a 300 ms boot is 3 virtual seconds — enough to
push a failure detector past its margin and fracture the group).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Callable, Optional


class _WallEntry:
    """One scheduled callback; supports lazy cancellation."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_WallEntry") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class WallClock:
    """A :class:`~repro.kernel.clock.Clock` backed by real monotonic time.

    Args:
        time_source: monotonic seconds function.  ``None`` (the default)
            binds to the event loop's clock on :meth:`attach`, falling
            back to :func:`time.monotonic` if never attached.
        time_scale: virtual seconds per real second (> 0).  ``1.0`` runs
            scenarios in real time; larger values compress them.
    """

    def __init__(self, time_source: Optional[Callable[[], float]] = None,
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._source = time_source
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._heap: list[_WallEntry] = []
        self._seq = itertools.count()
        self._real_base: Optional[float] = None
        self._wakeup: Optional[asyncio.TimerHandle] = None
        self._wakeup_when: float = 0.0
        #: Callbacks fired so far (the engine-parity diagnostic counter).
        self.fired_count = 0

    # -- time -----------------------------------------------------------------

    def start(self) -> None:
        """Pin virtual 0 to the current real instant (idempotent).

        Until started, :meth:`now` reads 0 and no loop timer is armed:
        everything that happens during setup happens at virtual t=0,
        exactly like setup on the simulated engine.
        """
        if self._real_base is not None:
            return
        if self._source is None:
            self._source = time.monotonic
        self._real_base = self._source()
        if self._loop is not None:
            self._rearm()

    @property
    def started(self) -> bool:
        return self._real_base is not None

    def now(self) -> float:
        """Current virtual time: scaled monotonic seconds since
        :meth:`start` (0 while not started)."""
        if self._real_base is None:
            return 0.0
        return (self._source() - self._real_base) * self.time_scale

    # -- scheduling -----------------------------------------------------------

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> _WallEntry:
        """Schedule ``callback`` after ``delay`` *virtual* seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now() + delay, callback)

    def call_at(self, when: float,
                callback: Callable[[], None]) -> _WallEntry:
        """Schedule ``callback`` at virtual instant ``when`` (past = asap)."""
        entry = _WallEntry(when, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        if self._loop is not None:
            self._rearm()
        return entry

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks."""
        return sum(1 for entry in self._heap if not entry.cancelled)

    # -- firing ---------------------------------------------------------------

    def poll(self) -> int:
        """Fire every due entry in ``(when, seq)`` order; return the count.

        The async wakeup path and fake-clock tests share this drain, so
        both observe the exact same firing order the simulated engine
        would produce for the same schedule.
        """
        fired = 0
        heap = self._heap
        now = self.now()
        while heap and heap[0].when <= now:
            entry = heapq.heappop(heap)
            if entry.cancelled:
                continue
            entry.callback()
            fired += 1
            self.fired_count += 1
            now = self.now()
        return fired

    # -- asyncio integration --------------------------------------------------

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind to ``loop``: due entries now fire from loop timers.

        Idempotent for the same loop; binding a second loop is an error
        (a clock is one timeline).
        """
        if self._loop is not None:
            if self._loop is not loop:
                raise RuntimeError("WallClock is already attached to "
                                   "another event loop")
            return
        self._loop = loop
        if self._source is None:
            self._source = loop.time
        self._rearm()

    @property
    def attached(self) -> bool:
        return self._loop is not None

    def _rearm(self) -> None:
        if self._real_base is None:
            return  # not started: nothing may fire yet, so arm nothing
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            if self._wakeup is not None:
                self._wakeup.cancel()
                self._wakeup = None
            return
        head_when = heap[0].when
        if self._wakeup is not None:
            if self._wakeup_when <= head_when:
                return  # armed early enough; a spurious wakeup re-arms
            self._wakeup.cancel()
        delay_real = max(0.0, (head_when - self.now()) / self.time_scale)
        self._wakeup_when = head_when
        self._wakeup = self._loop.call_later(delay_real, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self.poll()
        self._rearm()

    async def run_until(self, deadline: float) -> None:
        """Sleep (really) until virtual ``deadline``, letting timers fire.

        Starts the clock (see :meth:`start`) on entry: virtual time
        begins to flow only once the run does.
        """
        self.start()
        self._rearm()
        while True:
            remaining = deadline - self.now()
            if remaining <= 0:
                return
            await asyncio.sleep(remaining / self.time_scale)

    def shutdown(self) -> None:
        """Cancel the armed wakeup (end of run; pending entries are kept)."""
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
