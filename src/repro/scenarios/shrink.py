"""Delta-debugging shrinker: minimize a failing scenario to a reproducer.

A fuzz failure is only useful once a human can read it.  Given a scenario
whose run violates an invariant, :func:`shrink_scenario` searches for a
*locally minimal* variant that still fails in the same way, by repeatedly
re-running candidate scenarios with pieces removed:

1. **events** — classic ddmin over the event schedule (drop complements of
   progressively finer chunks, then single events, to a fixpoint);
2. **workload** — drop whole bursts, then halve the surviving bursts'
   message counts;
3. **nodes** — drop one node at a time, cascading the removal through
   events (their targets), partition groups and bursts;
4. **horizon** — pull the run's end forward to the last scheduled
   activity plus the settle tail.

"Fails in the same way" means: the candidate's violation list shares at
least one violation *category* (the ``kind:`` prefix, e.g.
``view-agreement``) with the original failure — a shrink step may not
silently wander from a membership bug to an unrelated counter bug.

The result is written as a replayable corpus file
(:func:`write_corpus_file`) under ``tests/scenarios/corpus/``; the
corpus-replay test suite re-runs every checked-in file under both engines
forever after.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.scenarios.scenario import (Leave, Partition, Scenario,
                                      ScenarioEvent)

CORPUS_FORMAT = 1


def violation_categories(violations: Sequence[str]) -> set[str]:
    """The ``kind:`` prefixes of a violation list."""
    return {v.split(":", 1)[0] for v in violations}


@dataclass
class ShrinkOutcome:
    """A locally-minimal failing scenario and the search's bookkeeping."""

    scenario: Scenario
    violations: tuple[str, ...]
    tests_run: int


class _Budget:
    """Caps oracle invocations; shrinking must terminate predictably."""

    def __init__(self, max_tests: int) -> None:
        self.max_tests = max_tests
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.max_tests


def _still_fails(scenario: Scenario, oracle, categories: set[str],
                 budget: _Budget) -> Optional[tuple[str, ...]]:
    """Violations of ``scenario`` if it fails in the same way, else None."""
    if budget.exhausted:
        return None
    try:
        scenario.validate()
    except ValueError:
        return None
    budget.used += 1
    violations = tuple(oracle(scenario))
    if violations and violation_categories(violations) & categories:
        return violations
    return None


def _ddmin_events(scenario: Scenario, violations: tuple[str, ...],
                  oracle, categories: set[str], budget: _Budget,
                  log) -> tuple[Scenario, tuple[str, ...]]:
    """Minimize the event schedule by removing complement chunks."""
    events = list(scenario.events)
    granularity = 2
    while len(events) >= 1 and not budget.exhausted:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events):
            candidate_events = events[:start] + events[start + chunk:]
            candidate = replace(scenario, events=tuple(candidate_events))
            result = _still_fails(candidate, oracle, categories, budget)
            if result is not None:
                events = candidate_events
                scenario, violations = candidate, result
                granularity = max(granularity - 1, 2)
                reduced = True
                log(f"shrink: events -> {len(events)}")
                break
            start += chunk
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(granularity * 2, len(events))
    return scenario, violations


def _shrink_workload(scenario: Scenario, violations: tuple[str, ...],
                     oracle, categories: set[str], budget: _Budget,
                     log) -> tuple[Scenario, tuple[str, ...]]:
    # Drop whole bursts — all of them if the failure survives: the
    # category match already guarantees a candidate cannot "pass" by
    # trivially silencing a delivery violation with an empty workload.
    index = 0
    while index < len(scenario.workload):
        bursts = list(scenario.workload)
        del bursts[index]
        candidate = replace(scenario, workload=tuple(bursts))
        result = _still_fails(candidate, oracle, categories, budget)
        if result is not None:
            scenario, violations = candidate, result
            log(f"shrink: bursts -> {len(bursts)}")
        else:
            index += 1
    # Halve surviving counts.
    for index, burst in enumerate(scenario.workload):
        count = burst.count
        while count > 1:
            count = max(1, count // 2)
            bursts = list(scenario.workload)
            bursts[index] = replace(burst, count=count)
            candidate = replace(scenario, workload=tuple(bursts))
            result = _still_fails(candidate, oracle, categories, budget)
            if result is None:
                break
            scenario, violations = candidate, result
            burst = bursts[index]
            log(f"shrink: burst {burst.prefix} count -> {count}")
    return scenario, violations


def _without_node(scenario: Scenario, node_id: str) -> Optional[Scenario]:
    """``scenario`` minus one node, cascaded through every reference."""
    nodes = tuple(s for s in scenario.nodes if s.node_id != node_id)
    if not nodes:
        return None
    events: list[ScenarioEvent] = []
    for event in scenario.events:
        if getattr(event, "node", None) == node_id:
            continue
        if isinstance(event, Partition):
            groups = tuple(
                tuple(m for m in group if m != node_id)
                for group in event.groups)
            groups = tuple(group for group in groups if group)
            if len(groups) < 2:
                continue
            event = replace(event, groups=groups)
        events.append(event)
    workload = tuple(b for b in scenario.workload if b.sender != node_id)
    return replace(scenario, nodes=nodes, events=tuple(events),
                   workload=workload)


def _shrink_nodes(scenario: Scenario, violations: tuple[str, ...],
                  oracle, categories: set[str], budget: _Budget,
                  log) -> tuple[Scenario, tuple[str, ...]]:
    index = 0
    while index < len(scenario.nodes):
        node_id = scenario.nodes[index].node_id
        candidate = _without_node(scenario, node_id)
        result = None
        if candidate is not None:
            result = _still_fails(candidate, oracle, categories, budget)
        if result is not None:
            scenario, violations = candidate, result
            log(f"shrink: nodes -> {len(scenario.nodes)} (dropped "
                f"{node_id})")
        else:
            index += 1
    return scenario, violations


def _shrink_horizon(scenario: Scenario, violations: tuple[str, ...],
                    oracle, categories: set[str], budget: _Budget,
                    log) -> tuple[Scenario, tuple[str, ...]]:
    last = 1.0
    for event in scenario.events:
        last = max(last, event.at)
        if isinstance(event, Leave):
            last = max(last, event.at + event.depart_after)
    for burst in scenario.workload:
        last = max(last, burst.start + burst.count * burst.interval)
    for spec in scenario.nodes:
        if spec.join_at is not None:
            last = max(last, spec.join_at)
    for settle in (60.0, 45.0, 30.0):
        horizon = round(last + settle, 1)
        if horizon >= scenario.duration_s:
            continue
        candidate = replace(scenario, duration_s=horizon)
        result = _still_fails(candidate, oracle, categories, budget)
        if result is not None:
            scenario, violations = candidate, result
            log(f"shrink: horizon -> {horizon}s")
            break
    return scenario, violations


def shrink_scenario(scenario: Scenario, run_seed: int,
                    violations: Sequence[str], parity: bool = False,
                    max_tests: int = 200,
                    oracle: Optional[Callable[[Scenario], list]] = None,
                    log: Callable[[str], None] = lambda line: None
                    ) -> ShrinkOutcome:
    """Minimize ``scenario`` while it keeps failing in the same way.

    ``oracle`` defaults to :func:`repro.scenarios.fuzz.fuzz_oracle` bound
    to ``run_seed`` (and the parity replay when the original failure was
    one); tests may pass a custom oracle.  ``max_tests`` caps the number
    of candidate runs.
    """
    if oracle is None:
        from repro.scenarios.fuzz import fuzz_oracle

        def oracle(candidate: Scenario) -> list:
            return fuzz_oracle(candidate, run_seed, parity=parity)

    categories = violation_categories(violations)
    budget = _Budget(max_tests)
    violations = tuple(violations)
    previous = None
    while previous != (scenario, violations) and not budget.exhausted:
        previous = (scenario, violations)
        scenario, violations = _ddmin_events(
            scenario, violations, oracle, categories, budget, log)
        scenario, violations = _shrink_workload(
            scenario, violations, oracle, categories, budget, log)
        scenario, violations = _shrink_nodes(
            scenario, violations, oracle, categories, budget, log)
    scenario, violations = _shrink_horizon(
        scenario, violations, oracle, categories, budget, log)
    return ShrinkOutcome(scenario=scenario, violations=violations,
                         tests_run=budget.used)


# ---------------------------------------------------------------------------
# Corpus files
# ---------------------------------------------------------------------------

def write_corpus_file(corpus_dir: str, scenario: Scenario, run_seed: int,
                      violations: Sequence[str], parity: bool = False) -> str:
    """Write a shrunk reproducer as a replayable corpus JSON file.

    The file name derives from the scenario name and the leading violation
    category, so a corpus directory reads as an index of known bug
    classes.  Returns the path written.
    """
    from repro.scenarios.fuzz import scenario_to_dict
    categories = sorted(violation_categories(violations))
    slug = re.sub(r"[^a-z0-9]+", "_",
                  f"{categories[0] if categories else 'fail'}_{scenario.name}"
                  .lower()).strip("_")
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{slug}.json")
    payload = {
        "format": CORPUS_FORMAT,
        "run_seed": run_seed,
        "violations": list(violations),
        "check_parity": parity,
        "scenario": scenario_to_dict(scenario),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus_file(path: str) -> dict:
    """Read a corpus file; returns the raw payload dict (validated
    scenario under ``"scenario_obj"``)."""
    from repro.scenarios.fuzz import scenario_from_dict
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{path}: unsupported corpus format "
                         f"{payload.get('format')!r}")
    payload["scenario_obj"] = scenario_from_dict(payload["scenario"])
    return payload
