"""Canned dynamic-topology scenarios.

Each builder returns a :class:`~repro.scenarios.scenario.Scenario` sized
for interactive runs; the keyword arguments let tests scale them down and
benchmarks scale them up.  The five scenarios cover the event classes that
a static topology cannot exercise:

* :func:`commuter_handoff` — a device leaves the office LAN for the
  wireless cell mid-chat and docks back later (plain ↔ Mecho);
* :func:`flash_crowd_join` — mobile devices join a running wired group in
  quick succession (control-group admission + data redeployment per wave);
* :func:`degrading_channel_fec` — interference degrades the wireless cell,
  crossing the ARQ→FEC threshold, then clears (loss-model swap);
* :func:`churn_storm` — crashes, a recovery and a graceful leave in quick
  succession (exclusion, re-admission, departure);
* :func:`partition_heal` — the cell is cut off from the LAN and later
  reconnected (split views, stranger-driven merge, redeployment);
* :func:`energy_rotation` — an all-mobile cell on battery power rotates
  the relay to the fullest device while members dock, crash and recover
  (the energy-aware adaptation of §1, under churn).
"""

from __future__ import annotations

from repro.scenarios.scenario import (ChatBurst, Crash, Handoff, Heal, Leave,
                                      NodeSpec, Partition, Recover, Scenario,
                                      SetLoss, bernoulli)


def commuter_handoff(*, messages: int = 100, out_at: float = 20.0,
                     back_at: float = 45.0,
                     duration_s: float = 65.0) -> Scenario:
    """A commuter's laptop undocks (FIXED→MOBILE) and later docks back.

    The group starts homogeneous on the plain stack; the handoff makes it
    hybrid, Core deploys Mecho, and the return handoff restores plain —
    two live reconfigurations under a continuous chat stream.
    """
    return Scenario(
        name="commuter_handoff",
        duration_s=duration_s,
        nodes=(NodeSpec("commuter", "fixed"),
               NodeSpec("fixed-0", "fixed"),
               NodeSpec("fixed-1", "fixed")),
        events=(Handoff(out_at, node="commuter", to="mobile"),
                Handoff(back_at, node="commuter", to="fixed")),
        workload=(ChatBurst(start=1.0, sender="commuter", count=messages,
                            interval=0.5),),
        wireless=bernoulli(0.03),
    )


def flash_crowd_join(*, joiners: int = 3, first_join_at: float = 15.0,
                     join_spacing: float = 4.0, messages: int = 100,
                     duration_s: float = 60.0) -> Scenario:
    """Mobile devices join a running wired group in quick succession.

    Every admission grows the control group and makes the membership
    hybrid(er); the Core coordinator folds each wave into the data channel
    by redeploying the grown configuration.
    """
    late = tuple(
        NodeSpec(f"mobile-{index}", "mobile",
                 join_at=first_join_at + index * join_spacing)
        for index in range(joiners))
    return Scenario(
        name="flash_crowd_join",
        duration_s=duration_s,
        nodes=(NodeSpec("fixed-0", "fixed"),
               NodeSpec("fixed-1", "fixed")) + late,
        workload=(ChatBurst(start=1.0, sender="fixed-0", count=messages,
                            interval=0.5),),
    )


def degrading_channel_fec(*, messages: int = 200, degrade_at: float = 25.0,
                          clear_at: float = 60.0, high_loss: float = 0.2,
                          duration_s: float = 90.0) -> Scenario:
    """Interference degrades the cell across the ARQ→FEC crossover.

    Runs the :class:`~repro.core.policy.LossAdaptivePolicy`: the swapped
    loss model moves the disseminated ``link_quality`` attribute over the
    threshold, FEC deploys, and the clearing channel brings ARQ back.
    """
    return Scenario(
        name="degrading_channel_fec",
        duration_s=duration_s,
        nodes=(NodeSpec("mobile-0", "mobile"),
               NodeSpec("fixed-0", "fixed"),
               NodeSpec("fixed-1", "fixed"),
               NodeSpec("fixed-2", "fixed")),
        events=(SetLoss(degrade_at, segment="wireless",
                        link=bernoulli(high_loss)),
                SetLoss(clear_at, segment="wireless", link=bernoulli(0.01))),
        workload=(ChatBurst(start=1.0, sender="mobile-0", count=messages,
                            interval=0.25),),
        policy="loss_adaptive",
        wireless=bernoulli(0.01),
    )


def churn_storm(*, messages: int = 120, duration_s: float = 70.0,
                members: int = 5) -> Scenario:
    """Back-to-back crashes, one recovery and a graceful leave.

    Exercises exclusion flushes (including the restart when a second crash
    lands mid-flush), singleton re-admission after recovery, and the
    leave/ban path — all under a continuous chat stream from a survivor.

    ``members`` scales the group for the 10–100 node benchmark sweeps: the
    canonical five nodes (and the churn events on them) are kept verbatim,
    and the remainder is filled with bystander fixed/mobile members who
    live through every flush — so the reconfiguration work grows with the
    group while the event schedule stays identical across sizes.
    """
    if members < 5:
        raise ValueError(f"churn_storm needs >= 5 members, got {members}")
    extra = members - 5
    extra_fixed = extra // 2
    bystanders = tuple(
        NodeSpec(f"fixed-{2 + index}", "fixed")
        for index in range(extra_fixed)
    ) + tuple(
        NodeSpec(f"mobile-{3 + index}", "mobile")
        for index in range(extra - extra_fixed))
    return Scenario(
        name="churn_storm",
        duration_s=duration_s,
        nodes=(NodeSpec("fixed-0", "fixed"),
               NodeSpec("fixed-1", "fixed"),
               NodeSpec("mobile-0", "mobile"),
               NodeSpec("mobile-1", "mobile"),
               NodeSpec("mobile-2", "mobile")) + bystanders,
        events=(Crash(15.0, node="mobile-1"),
                Crash(18.0, node="mobile-2"),
                Recover(30.0, node="mobile-1"),
                Leave(45.0, node="fixed-1")),
        workload=(ChatBurst(start=1.0, sender="fixed-0", count=messages,
                            interval=0.5),),
        heartbeat_interval=1.0,
    )


def partition_heal(*, messages: int = 130, split_at: float = 20.0,
                   heal_at: float = 35.0,
                   duration_s: float = 75.0) -> Scenario:
    """The wireless cell is cut off from the LAN, then reconnected.

    Each side shrinks to its own view and keeps running; after the heal,
    stranger beacons merge the sides back into one group and the Core
    coordinator redeploys for the reunited membership.
    """
    return Scenario(
        name="partition_heal",
        duration_s=duration_s,
        nodes=(NodeSpec("fixed-0", "fixed"),
               NodeSpec("fixed-1", "fixed"),
               NodeSpec("mobile-0", "mobile"),
               NodeSpec("mobile-1", "mobile")),
        events=(Partition(split_at, groups=(("fixed-0", "fixed-1"),
                                            ("mobile-0", "mobile-1"))),
                Heal(heal_at)),
        workload=(ChatBurst(start=1.0, sender="fixed-0", count=messages,
                            interval=0.5),),
        heartbeat_interval=1.0,
    )


def energy_rotation(*, messages: int = 100, duration_s: float = 75.0,
                    batteries: tuple = (260.0, 310.0, 230.0, 350.0),
                    joiner_battery: float = 330.0) -> Scenario:
    """An all-mobile ad hoc cell on battery power, rotating the relay.

    Runs the ``rotating`` policy
    (:class:`~repro.core.policy.ThresholdBatteryRotationPolicy`): relaying
    costs the most energy, so the current relay's disseminated ``battery``
    attribute sinks fastest; once it trails the fullest device by the
    hysteresis gap the coordinator hands the relay role over — the
    network-lifetime adaptation the paper cites from energy-aware
    multicasting.  Churn rides along: one device docks to the wire
    mid-run (and undocks later), another crashes and recovers, and a
    freshly charged device joins late — each a context change the
    rotation decision must absorb.
    """
    nodes = tuple(
        NodeSpec(f"mobile-{index}", "mobile", battery_mj=float(level))
        for index, level in enumerate(batteries))
    joiner = NodeSpec(f"mobile-{len(batteries)}", "mobile", join_at=25.0,
                      battery_mj=float(joiner_battery))
    return Scenario(
        name="energy_rotation",
        duration_s=duration_s,
        nodes=nodes + (joiner,),
        events=(Handoff(20.0, node="mobile-1", to="fixed"),
                Crash(35.0, node="mobile-2"),
                Recover(45.0, node="mobile-2"),
                Handoff(55.0, node="mobile-1", to="mobile")),
        workload=(ChatBurst(start=1.0, sender="mobile-0", count=messages,
                            interval=0.5),),
        policy="rotating",
        heartbeat_interval=1.0,
        wireless=bernoulli(0.02),
    )


#: Name → builder registry of the canned scenarios.
CANNED = {
    "commuter_handoff": commuter_handoff,
    "flash_crowd_join": flash_crowd_join,
    "degrading_channel_fec": degrading_channel_fec,
    "churn_storm": churn_storm,
    "partition_heal": partition_heal,
    "energy_rotation": energy_rotation,
}


def canned(name: str, **overrides) -> Scenario:
    """Build a canned scenario by name (``**overrides`` reach the builder)."""
    try:
        builder = CANNED[name]
    except KeyError:
        raise ValueError(f"unknown canned scenario {name!r}; "
                         f"have {sorted(CANNED)}") from None
    return builder(**overrides)
