"""Seeded scenario fuzzing: property testing over the event grammar.

The determinism suite exercises five hand-written scenarios; the stale-view
class of membership bugs was found in them *by accident*.  This module
turns the suite into a search: a seeded generator draws valid
:class:`~repro.scenarios.scenario.Scenario` objects over the full event
grammar (handoffs, crashes, recoveries, leaves, loss swaps, partitions,
heals, chat bursts), every generated run is checked against a set of
always-on invariants, and a failing run is handed to the delta-debugging
shrinker (:mod:`repro.scenarios.shrink`) which minimizes it to a
replayable corpus file.

The invariants (installed through the
:class:`~repro.scenarios.runner.ScenarioRunner` ``invariants`` hook):

* **view agreement** — after the settle tail, every connected survivor of
  a partition component reports a control view equal to exactly the
  component's survivors;
* **delivery safety** — no node ever delivers a chat message twice, and
  per-sender burst indices are delivered in strictly increasing order
  (the reliable layer's FIFO contract); with ``ordering=("total",)``
  stacks, any two nodes additionally agree on the relative order of the
  messages they both delivered;
* **counter consistency** — network-level delivery accounting matches the
  per-NIC receive counters, and no packets are delivered or lost that
  were never sent;
* **engine parity** — on a sampled subset of runs the scenario is
  replayed on the reference heap scheduler
  (:class:`~repro.simnet.engine.HeapSimEngine`) and the two
  :class:`~repro.scenarios.runner.ScenarioResult` records must compare
  equal (the timer wheel batches expiry, it must never reorder it).
  Flat scenarios on the same sample are also replayed on the sharded
  facade (:class:`~repro.simnet.shard.ShardedSimEngine`, two shards) —
  single-group sharded runs must be byte-identical to sequential ones.

Everything is deterministic: one ``(seed, index, mix)`` triple fully
determines the generated scenario *and* its run seed, so a fuzz failure
reported by CI replays bit-identically on a laptop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.federation.runner import FED_ALWAYS_ON
from repro.scenarios.runner import (InvariantViolation, ScenarioResult,
                                    ScenarioRunner, run_scenario)
from repro.scenarios.scenario import (ChatBurst, Crash, Handoff, Heal, Leave,
                                      LinkSpec, MergeCell, NodeSpec,
                                      Partition, Recover, Scenario,
                                      ScenarioEvent, SetLoss, SplitCell,
                                      bernoulli, gilbert_elliott)
from repro.simnet.engine import HeapSimEngine
from repro.simnet.shard import ShardedSimEngine

#: Concrete event types of the grammar, by class name (serialization).
EVENT_TYPES = {cls.__name__: cls for cls in
               (Handoff, Crash, Recover, Leave, SetLoss, Partition, Heal,
                SplitCell, MergeCell)}


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzConfig:
    """Shape of the random scenarios one fuzz campaign draws.

    ``weights`` steers the event-kind distribution — the preset
    :data:`MIXES` make churn-heavy, partition-heavy and loss-heavy
    campaigns reachable without touching the grammar.  ``settle_s`` is the
    quiet tail after the last scheduled event/burst in which the group
    must converge before the invariants are checked; it is sized for the
    worst capped probe back-off plus a flush
    (:data:`repro.protocols.membership._PROBE_MAX_TICKS`).
    """

    min_nodes: int = 3
    max_nodes: int = 7
    max_joiners: int = 2
    min_events: int = 2
    max_events: int = 8
    max_bursts: int = 3
    event_window_s: float = 55.0
    #: Sized for the worst capped probe back-off (32 s at the default
    #: retry interval) plus two flush/merge rounds: merge chains after a
    #: late heal can legitimately need more than one probe cycle.
    settle_s: float = 75.0
    max_loss: float = 0.25
    #: Probability that a generated scenario stacks total order on top of
    #: the reliable layer (exercises the cross-node ordering invariant).
    ordering_p: float = 0.2
    #: Probability that a generated scenario carries a random declarative
    #: rule set (and, half the time, a governor) instead of the named
    #: policy — the ``--policy-fuzz`` campaign.  Zero keeps the draw
    #: stream byte-identical to pre-rules campaigns, so existing corpus
    #: entries regenerate unchanged.
    rules_p: float = 0.0
    #: Probability that a generated scenario runs federated (multiple
    #: cells, thresholds, SplitCell/MergeCell events, backlog and
    #: reconciliation draws).  Zero keeps the draw stream byte-identical
    #: to pre-federation campaigns, so existing corpus entries
    #: regenerate unchanged.
    federation_p: float = 0.0
    weights: tuple[tuple[str, float], ...] = (
        ("handoff", 2.0), ("crash", 2.0), ("recover", 2.0), ("leave", 1.0),
        ("setloss", 1.5), ("partition", 1.0), ("heal", 2.0))


#: Preset weight profiles; ``--mix`` on the CLI selects one.
MIXES: dict[str, FuzzConfig] = {
    "uniform": FuzzConfig(),
    "churn": FuzzConfig(weights=(
        ("handoff", 1.0), ("crash", 4.0), ("recover", 4.0), ("leave", 2.0),
        ("setloss", 0.5), ("partition", 0.5), ("heal", 1.0))),
    "partition": FuzzConfig(weights=(
        ("handoff", 1.0), ("crash", 1.0), ("recover", 1.5), ("leave", 0.5),
        ("setloss", 0.5), ("partition", 4.0), ("heal", 5.0))),
    "loss": FuzzConfig(max_loss=0.3, weights=(
        ("handoff", 1.5), ("crash", 0.75), ("recover", 1.0), ("leave", 0.5),
        ("setloss", 5.0), ("partition", 0.5), ("heal", 1.0))),
    "federation": FuzzConfig(federation_p=1.0, min_nodes=4, max_nodes=9,
                             weights=(
        ("handoff", 1.5), ("crash", 2.0), ("recover", 2.0), ("leave", 1.5),
        ("setloss", 1.0), ("partition", 0.75), ("heal", 1.5))),
}


class _GroupState:
    """What the generator knows about the group while drawing events."""

    def __init__(self, node_ids: Sequence[str], joiners: dict[str, float],
                 anchor: str) -> None:
        self.all_ids = tuple(node_ids)
        self.joiners = dict(joiners)      # id -> join_at
        self.anchor = anchor
        self.crashed: set[str] = set()
        self.left: set[str] = set()
        self.partitioned = False

    def present(self, at: float) -> list[str]:
        return [n for n in self.all_ids
                if n not in self.left and self.joiners.get(n, 0.0) < at]

    def alive(self, at: float) -> list[str]:
        return [n for n in self.present(at) if n not in self.crashed]

    def churnable(self, at: float) -> list[str]:
        """Nodes a crash/leave may target: alive, and never the anchor
        (one member always survives, so the group never dies out)."""
        return [n for n in self.alive(at) if n != self.anchor]


def _draw_loss(rng: random.Random, max_loss: float) -> LinkSpec:
    kind = rng.choices(("none", "bernoulli", "gilbert"),
                       weights=(1.0, 3.0, 1.0))[0]
    if kind == "none":
        return LinkSpec()
    if kind == "bernoulli":
        return bernoulli(round(rng.uniform(0.01, max_loss), 3))
    return gilbert_elliott(
        p_good=round(rng.uniform(0.0, 0.02), 3),
        p_bad=round(rng.uniform(0.1, max_loss + 0.15), 3),
        p_good_to_bad=round(rng.uniform(0.005, 0.05), 3),
        p_bad_to_good=round(rng.uniform(0.1, 0.4), 3))


def _draw_event(rng: random.Random, at: float, state: _GroupState,
                config: FuzzConfig) -> Optional[ScenarioEvent]:
    """One event at ``at``, of a kind applicable to the current state."""
    applicable: list[tuple[str, float]] = []
    for kind, weight in config.weights:
        if weight <= 0:
            continue
        if kind == "handoff" and not state.present(at):
            continue
        if kind == "crash" and not state.churnable(at):
            continue
        if kind == "recover" and not state.crashed:
            continue
        if kind == "leave" and (len(state.churnable(at)) < 2 or
                                len(state.alive(at)) < 3):
            continue  # keep at least two live members in the group
        if kind == "heal" and not state.partitioned:
            continue
        applicable.append((kind, weight))
    if not applicable:
        return None
    kinds, weights = zip(*applicable)
    kind = rng.choices(kinds, weights=weights)[0]
    if kind == "handoff":
        node = rng.choice(state.present(at))
        return Handoff(at, node=node, to=rng.choice(("fixed", "mobile")))
    if kind == "crash":
        node = rng.choice(state.churnable(at))
        state.crashed.add(node)
        return Crash(at, node=node)
    if kind == "recover":
        node = rng.choice(sorted(state.crashed))
        state.crashed.discard(node)
        return Recover(at, node=node)
    if kind == "leave":
        node = rng.choice(state.churnable(at))
        state.left.add(node)
        return Leave(at, node=node, depart_after=5.0)
    if kind == "setloss":
        return SetLoss(at, segment=rng.choice(("wired", "wireless")),
                       link=_draw_loss(rng, config.max_loss))
    if kind == "partition":
        ids = list(state.all_ids)
        rng.shuffle(ids)
        split = rng.randint(1, len(ids) - 1)
        state.partitioned = True
        return Partition(at, groups=(tuple(sorted(ids[:split])),
                                     tuple(sorted(ids[split:]))))
    state.partitioned = False
    return Heal(at)


def _draw_rules(rng: random.Random) -> tuple[tuple, tuple]:
    """A random-but-valid declarative rule set (plus optional governor).

    Every draw ends in a rule that always produces a plan, so a governed
    engine can only ever *defer* adaptation, never leave the coordinator
    without a decision path.
    """
    rules: list[tuple[str, tuple]] = []
    shape = rng.random()
    if shape < 0.15:
        # Degenerate-but-valid: the group pins itself to the plain stack.
        rules.append(("plain", ()))
    else:
        if rng.random() < 0.6:
            rules.append(("loss_adaptive", (
                ("threshold", round(rng.uniform(0.03, 0.15), 3)),
                ("hysteresis", round(rng.uniform(0.0, 0.05), 3)),
                ("k", rng.choice((4, 8))),
                ("m", rng.choice((1, 2))))))
        if rng.random() < 0.25:
            # Energy-aware draw; only acts when every member carries a
            # battery (generate_scenario equips the nodes when this rule
            # is drawn), otherwise it defers to the tail rule.
            rules.append(("battery_rotation", (
                ("hysteresis", round(rng.uniform(0.02, 0.15), 3)),)))
        rules.append(("hybrid_mecho", ()))
    governor: tuple = ()
    if rng.random() < 0.5:
        governor = (("budget", rng.randint(1, 4)),
                    ("flap_limit", rng.randint(1, 3)),
                    ("window", float(rng.choice((10.0, 20.0, 40.0)))),
                    ("cooldown", float(rng.choice((15.0, 30.0, 60.0)))))
    return tuple(rules), governor


def generate_scenario(seed: int, index: int, mix: str = "uniform",
                      config: Optional[FuzzConfig] = None) -> Scenario:
    """Draw one valid scenario, fully determined by ``(seed, index, mix)``.

    String seeding keeps the stream hash-randomization-independent, like
    the runner's derived RNGs — a corpus entry regenerates anywhere.
    """
    if config is None:
        config = MIXES[mix]
    rng = random.Random(f"scenario-fuzz:{seed}:{index}:{mix}")
    total = rng.randint(config.min_nodes, config.max_nodes)
    n_joiners = rng.randint(0, min(config.max_joiners, total - 2))
    node_ids = [f"n{i:02d}" for i in range(total)]
    joiner_ids = rng.sample(node_ids, n_joiners)
    event_lo, event_hi = 4.0, 4.0 + config.event_window_s
    nodes = []
    joiners: dict[str, float] = {}
    for node_id in node_ids:
        join_at = None
        if node_id in joiner_ids:
            join_at = round(rng.uniform(event_lo, event_hi * 0.6), 1)
            joiners[node_id] = join_at
        nodes.append(NodeSpec(node_id, rng.choice(("fixed", "mobile")),
                              join_at=join_at))
    initial = [n for n in node_ids if n not in joiners]
    state = _GroupState(node_ids, joiners, anchor=rng.choice(initial))

    times = sorted(round(rng.uniform(event_lo, event_hi), 1)
                   for _ in range(rng.randint(config.min_events,
                                              config.max_events)))
    events = []
    for at in times:
        event = _draw_event(rng, at, state, config)
        if event is not None:
            events.append(event)

    bursts = []
    for i in range(rng.randint(1, config.max_bursts)):
        # The first burst always flows from the anchor: every run carries
        # traffic from a member that survives to the horizon.
        sender = state.anchor if i == 0 else rng.choice(initial)
        bursts.append(ChatBurst(
            start=round(rng.uniform(1.0, event_hi * 0.8), 1),
            sender=sender, count=rng.randint(10, 40),
            interval=rng.choice((0.2, 0.25, 0.4, 0.5)), prefix=f"b{i}"))

    ordering = ("total",) if rng.random() < config.ordering_p else ()
    # Short-circuit keeps the draw stream untouched when rules_p is zero,
    # so pre-rules corpus entries regenerate byte-identically.
    rules: tuple = ()
    governor: tuple = ()
    if config.rules_p > 0 and rng.random() < config.rules_p:
        rules, governor = _draw_rules(rng)
        if any(name == "battery_rotation" for name, _ in rules):
            # The rotation rule needs battery coverage across the whole
            # group to act; equip every node with a finite charge so the
            # energy path is actually exercised.
            nodes = [replace(spec,
                             battery_mj=float(rng.randint(150, 400)))
                     for spec in nodes]
    # Same short-circuit pattern for federation: pre-federation corpus
    # entries regenerate byte-identically under federation_p == 0.
    cells = 0
    cell_size_max = 0
    cell_size_min = 0
    backlog_n = 0
    reconcile = False
    if config.federation_p > 0 and rng.random() < config.federation_p:
        cells = rng.randint(1, min(3, len(initial)))
        if rng.random() < 0.4:
            cell_size_max = rng.randint(3, 6)
        if rng.random() < 0.4:
            cell_size_min = 2
        backlog_n = rng.choice((0, 5, 10))
        reconcile = rng.random() < 0.5
        for _ in range(rng.randint(0, 2)):
            at = round(rng.uniform(event_lo, event_hi), 1)
            # Unnamed: the runner resolves the largest/smallest cell in
            # force at fire time (and skip-traces when not applicable).
            if rng.random() < 0.5:
                events.append(SplitCell(at))
            else:
                events.append(MergeCell(at))
        events.sort(key=lambda e: e.at)
    horizon = max([event_hi] + [b.start + b.count * b.interval
                                for b in bursts])
    return Scenario(
        name=f"fuzz-{mix}-{seed}-{index}",
        duration_s=round(horizon + config.settle_s, 1),
        nodes=tuple(nodes),
        events=tuple(events),
        workload=tuple(bursts),
        ordering=ordering,
        rules=rules,
        governor=governor,
        cells=cells,
        cell_size_max=cell_size_max,
        cell_size_min=cell_size_min,
        backlog_n=backlog_n,
        reconcile=reconcile,
        wireless=bernoulli(0.02),
        heartbeat_interval=1.0,
    )


def run_seed_for(seed: int, index: int) -> int:
    """The run seed paired with generated scenario ``(seed, index)``."""
    return random.Random(f"scenario-fuzz-run:{seed}:{index}").randrange(1 << 30)


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------

def final_components(scenario: Scenario) -> list[set[str]]:
    """Partition components in force at the horizon (all ids when whole)."""
    groups: Optional[tuple[tuple[str, ...], ...]] = None
    for event in sorted(scenario.events, key=lambda e: e.at):
        if isinstance(event, Partition):
            groups = event.groups
        elif isinstance(event, Heal):
            groups = None
    everyone = set(scenario.node_ids())
    if groups is None:
        return [everyone]
    components = [set(group) for group in groups]
    uncovered = everyone - set().union(*components)
    # A node in no group is unreachable from every group: its own island.
    components.extend({node} for node in sorted(uncovered))
    return components


def check_view_agreement(runner: ScenarioRunner,
                         result: ScenarioResult) -> list[str]:
    """Connected survivors of each component agree on exactly the
    component's survivor set as their control view.

    A joiner that never entered any view is not yet a member: the join
    design solicits admission indefinitely and installs nothing until
    admitted, so an isolated joiner (nobody in its component to admit
    it) legitimately ends the run viewless.  Such nodes are outside the
    agreement check — but when the component *does* hold established
    members, a forever-unadmitted joiner is a liveness violation of its
    own (``join-liveness``).
    """
    violations = []
    network = runner.network
    survivors = {node_id for node_id, node in network.nodes.items()
                 if node.alive}
    never_joined = {
        node_id for node_id, node in runner.morpheus.items()
        if node.control_channel.session_named("membership").view is None}
    # Federated runs scope views per cell: a node's control group is its
    # cell, so the expectation intersects the component's established
    # survivors with the node's cellmates.  Flat runs (no cell
    # directory, or everyone in the single cell) reduce to the full set.
    directory = getattr(runner, "cells", None)
    for component in final_components(runner.scenario):
        members = sorted(survivors & component)
        established = [m for m in members if m not in never_joined]
        expected = tuple(established)
        for node_id in established:
            expected_here = expected
            if directory is not None:
                cell = directory.cell_of(node_id)
                if cell is not None:
                    cellmates = set(directory.members_of(cell))
                    expected_here = tuple(
                        m for m in established
                        if m in cellmates or m == node_id)
            view = result.control_views.get(node_id)
            if view != expected_here:
                violations.append(
                    f"view-agreement: {node_id} ended with control view "
                    f"{view}, expected {expected_here}")
        if established:
            for node_id in members:
                if node_id not in never_joined:
                    continue
                admitters = established
                if directory is not None:
                    cell = directory.cell_of(node_id)
                    if cell is not None:
                        # A joining node solicits only its own cell; if
                        # no cellmate shares its component, nobody can
                        # admit it and the run legitimately ends with it
                        # still soliciting.
                        cellmates = set(directory.members_of(cell))
                        admitters = [m for m in established
                                     if m in cellmates]
                if admitters:
                    violations.append(
                        f"join-liveness: {node_id} was never admitted "
                        f"although its cell has established members "
                        f"{tuple(admitters)}")
    return violations


def _burst_index(text: str) -> Optional[tuple[str, int]]:
    prefix, sep, index = text.rpartition("-")
    if sep and prefix and index.isdigit():
        return prefix, int(index)
    return None


def check_delivery(runner: ScenarioRunner,
                   result: ScenarioResult) -> list[str]:
    """No duplicate deliveries; per-sender burst indices strictly increase
    (reliable FIFO); under total order, common deliveries agree pairwise."""
    violations = []
    sequences: dict[str, list[tuple[str, str]]] = {}
    for node_id in sorted(runner.morpheus):
        history = runner.morpheus[node_id].chat.history
        seen: set[tuple[str, str]] = set()
        high: dict[tuple[str, str], int] = {}
        sequence: list[tuple[str, str]] = []
        for delivery in history:
            key = (delivery.source, delivery.text)
            if key in seen:
                violations.append(
                    f"delivery-dup: {node_id} delivered {delivery.text!r} "
                    f"from {delivery.source} twice")
                continue
            seen.add(key)
            if getattr(delivery, "marker", ""):
                # Repair/federation deliveries (backlog, anti-entropy,
                # cross-cell injections) arrive outside the cell's total
                # order by design; the duplicate check above still
                # covers them, and cross-cell FIFO has its own
                # federation invariant keyed by sequence number.
                continue
            sequence.append(key)
            parsed = _burst_index(delivery.text)
            if parsed is None:
                continue
            prefix, index = parsed
            stream = (delivery.source, prefix)
            if index <= high.get(stream, -1):
                violations.append(
                    f"delivery-order: {node_id} delivered "
                    f"{delivery.text!r} from {delivery.source} after index "
                    f"{high[stream]} of the same stream")
            else:
                high[stream] = index
        sequences[node_id] = sequence
    if "total" in runner.scenario.ordering:
        nodes = sorted(sequences)
        for i, first in enumerate(nodes):
            for second in nodes[i + 1:]:
                common = set(sequences[first]) & set(sequences[second])
                a = [x for x in sequences[first] if x in common]
                b = [x for x in sequences[second] if x in common]
                if a != b:
                    violations.append(
                        f"total-order: {first} and {second} disagree on "
                        "the relative order of commonly delivered messages")
    return violations


def check_counters(runner: ScenarioRunner,
                   result: ScenarioResult) -> list[str]:
    """Network delivery accounting matches the per-NIC counters."""
    violations = []
    recv_total = sum(s.get("recv_total", 0) for s in result.stats.values())
    if recv_total != result.delivered_packets:
        violations.append(
            f"counter: per-NIC receive total {recv_total} != network "
            f"delivered_packets {result.delivered_packets}")
    sent_total = sum(s.get("sent_total", 0) for s in result.stats.values())
    outcome = result.delivered_packets + result.lost_packets
    if outcome > sent_total:
        violations.append(
            f"counter: {outcome} packets delivered+lost but only "
            f"{sent_total} ever sent")
    return violations


#: The always-on invariant set the fuzzer installs on every run.  The
#: federation checks (cross-cell no-dup, per-stream FIFO) hold vacuously
#: on flat histories, so they ride along unconditionally.
ALWAYS_ON = (check_view_agreement, check_delivery,
             check_counters) + FED_ALWAYS_ON


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def fuzz_oracle(scenario: Scenario, run_seed: int,
                parity: bool = False) -> list[str]:
    """Run ``scenario`` under the invariant set; return its violations.

    With ``parity=True`` the scenario is additionally replayed on the
    reference heap engine and the two results compared for equality.
    The shrinker uses this as its test function.
    """
    try:
        # run_scenario dispatches federated scenarios (cells > 0) to the
        # FederationRunner; flat scenarios run exactly as before.
        result = run_scenario(scenario, seed=run_seed,
                              invariants=ALWAYS_ON)
    except InvariantViolation as exc:
        return list(exc.violations)
    if parity:
        try:
            heap = run_scenario(scenario, seed=run_seed,
                                engine_factory=HeapSimEngine)
        except InvariantViolation:
            # The federation runner enforces its always-on checks even
            # without installed invariants; a replay that trips them
            # where the primary run did not is itself a divergence.
            return ["engine-parity: wheel and heap engines diverged on "
                    "the same scenario"]
        if heap != result:
            return ["engine-parity: wheel and heap engines diverged on "
                    "the same scenario"]
        if scenario.cells == 0:
            # Flat scenarios must be byte-identical on the sharded
            # facade: one shard group shares the control engine's
            # sequence stream, so even engine_events must agree.
            # (Federated runs own their engines per cell — skip.)
            try:
                sharded = run_scenario(
                    scenario, seed=run_seed,
                    engine_factory=lambda: ShardedSimEngine(shards=2))
            except InvariantViolation:
                return ["sharded-parity: sharded facade diverged from "
                        "the sequential engine"]
            if sharded != result:
                return ["sharded-parity: sharded facade diverged from "
                        "the sequential engine"]
    return []


@dataclass
class FuzzOutcome:
    """One generated run's verdict (and its shrink, when it failed)."""

    index: int
    scenario: Scenario
    run_seed: int
    violations: tuple[str, ...] = ()
    parity_checked: bool = False
    shrunk: Optional[Scenario] = None
    shrunk_violations: tuple[str, ...] = ()
    corpus_path: Optional[str] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)


def run_fuzz(seed: int, runs: int, mix: str = "uniform",
             config: Optional[FuzzConfig] = None,
             parity_every: int = 5,
             shrink_failures: bool = False,
             corpus_dir: Optional[str] = None,
             max_shrink_tests: int = 200,
             log: Callable[[str], None] = lambda line: None) -> list[FuzzOutcome]:
    """The fuzz campaign: generate, run, check, shrink, emit corpus.

    ``parity_every`` samples every N-th run for the wheel/heap replay
    (0 disables).  With ``shrink_failures`` every failing run is minimized
    with :func:`repro.scenarios.shrink.shrink_scenario` and — when
    ``corpus_dir`` is given — written there as a replayable corpus file.
    """
    from repro.scenarios.shrink import (shrink_scenario,
                                        violation_categories,
                                        write_corpus_file)
    outcomes = []
    for index in range(runs):
        scenario = generate_scenario(seed, index, mix=mix, config=config)
        run_seed = run_seed_for(seed, index)
        parity = parity_every > 0 and index % parity_every == 0
        violations = fuzz_oracle(scenario, run_seed, parity=parity)
        outcome = FuzzOutcome(index=index, scenario=scenario,
                              run_seed=run_seed,
                              violations=tuple(violations),
                              parity_checked=parity)
        if violations:
            log(f"run {index}: FAIL {scenario.name} "
                f"({len(scenario.events)} events) — {violations[0]}")
            if shrink_failures:
                # The heap replay doubles every candidate's cost; shrink
                # with it only when parity is what actually failed.
                parity_failed = "engine-parity" in \
                    violation_categories(violations)
                shrunk = shrink_scenario(
                    scenario, run_seed, violations, parity=parity_failed,
                    max_tests=max_shrink_tests, log=log)
                outcome.shrunk = shrunk.scenario
                outcome.shrunk_violations = tuple(shrunk.violations)
                if corpus_dir is not None:
                    outcome.corpus_path = write_corpus_file(
                        corpus_dir, shrunk.scenario, run_seed,
                        shrunk.violations, parity=parity_failed)
                    log(f"run {index}: shrunk to "
                        f"{len(shrunk.scenario.events)} events, corpus at "
                        f"{outcome.corpus_path}")
        else:
            log(f"run {index}: ok {scenario.name} "
                f"({len(scenario.nodes)} nodes, {len(scenario.events)} "
                f"events{', parity' if parity else ''})")
        outcomes.append(outcome)
    return outcomes


# ---------------------------------------------------------------------------
# Serialization (corpus files)
# ---------------------------------------------------------------------------

def _link_to_dict(link: LinkSpec) -> dict:
    return {"model": link.model, "params": [list(p) for p in link.params]}


def _link_from_dict(data: dict) -> LinkSpec:
    return LinkSpec(data["model"],
                    tuple((name, value) for name, value in data["params"]))


def _event_to_dict(event: ScenarioEvent) -> dict:
    data: dict = {"type": type(event).__name__, "at": event.at}
    if isinstance(event, (Handoff, Crash, Recover, Leave)):
        data["node"] = event.node
    if isinstance(event, Handoff):
        data["to"] = event.to
    if isinstance(event, Leave):
        data["depart_after"] = event.depart_after
    if isinstance(event, SetLoss):
        data["segment"] = event.segment
        data["link"] = _link_to_dict(event.link)
    if isinstance(event, Partition):
        data["groups"] = [list(group) for group in event.groups]
    if isinstance(event, (SplitCell, MergeCell)):
        data["cell"] = event.cell
    if isinstance(event, MergeCell):
        data["into"] = event.into
    return data


def _event_from_dict(data: dict) -> ScenarioEvent:
    cls = EVENT_TYPES[data["type"]]
    kwargs = {key: value for key, value in data.items() if key != "type"}
    if "link" in kwargs:
        kwargs["link"] = _link_from_dict(kwargs["link"])
    if "groups" in kwargs:
        kwargs["groups"] = tuple(tuple(group) for group in kwargs["groups"])
    return cls(**kwargs)


def scenario_to_dict(scenario: Scenario) -> dict:
    """Plain-JSON shape of a scenario (corpus files, artifacts)."""
    return {
        "name": scenario.name,
        "duration_s": scenario.duration_s,
        "nodes": [{"node_id": spec.node_id, "kind": spec.kind,
                   "join_at": spec.join_at, "battery_mj": spec.battery_mj}
                  for spec in scenario.nodes],
        "events": [_event_to_dict(event) for event in scenario.events],
        "workload": [{"start": burst.start, "sender": burst.sender,
                      "count": burst.count, "interval": burst.interval,
                      "prefix": burst.prefix}
                     for burst in scenario.workload],
        "policy": scenario.policy,
        "policy_options": [list(p) for p in scenario.policy_options],
        "rules": [[name, [list(p) for p in params]]
                  for name, params in scenario.rules],
        "governor": [list(p) for p in scenario.governor],
        "cells": scenario.cells,
        "cell_size_max": scenario.cell_size_max,
        "cell_size_min": scenario.cell_size_min,
        "backlog_n": scenario.backlog_n,
        "reconcile": scenario.reconcile,
        "ordering": list(scenario.ordering),
        "wired": _link_to_dict(scenario.wired),
        "wireless": _link_to_dict(scenario.wireless),
        "publish_interval": scenario.publish_interval,
        "evaluate_interval": scenario.evaluate_interval,
        "heartbeat_interval": scenario.heartbeat_interval,
        "nack_interval": scenario.nack_interval,
    }


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild (and validate) a scenario from its JSON shape."""
    scenario = Scenario(
        name=data["name"],
        duration_s=data["duration_s"],
        nodes=tuple(NodeSpec(**spec) for spec in data["nodes"]),
        events=tuple(_event_from_dict(event) for event in data["events"]),
        workload=tuple(ChatBurst(**burst) for burst in data["workload"]),
        policy=data.get("policy", "hybrid"),
        policy_options=tuple(tuple(p) for p in data.get("policy_options", [])),
        rules=tuple((name, tuple(tuple(p) for p in params))
                    for name, params in data.get("rules", [])),
        governor=tuple(tuple(p) for p in data.get("governor", [])),
        cells=data.get("cells", 0),
        cell_size_max=data.get("cell_size_max", 0),
        cell_size_min=data.get("cell_size_min", 0),
        backlog_n=data.get("backlog_n", 0),
        reconcile=data.get("reconcile", False),
        ordering=tuple(data.get("ordering", [])),
        wired=_link_from_dict(data["wired"]),
        wireless=_link_from_dict(data["wireless"]),
        publish_interval=data["publish_interval"],
        evaluate_interval=data["evaluate_interval"],
        heartbeat_interval=data["heartbeat_interval"],
        nack_interval=data["nack_interval"],
    )
    scenario.validate()
    return scenario
