"""Multi-segment scenario composition over the sharded engine.

A *segment* is an ordinary :class:`~repro.scenarios.scenario.Scenario`
whose node population is disjoint from every other segment's — its own
membership group, its own workload, its own churn schedule.  This module
composes N segments into one simulated world three interchangeable ways:

* **sequential** — every segment on one plain ``SimEngine``
  (:class:`ShardedScenarioRunner` with ``engine_factory=SimEngine``);
* **sharded in-process** — the same runner over a
  :class:`~repro.simnet.shard.ShardedSimEngine` facade with one shard
  group per segment (conservative windows between control barriers);
* **worker processes** — :func:`run_segments_parallel` runs each segment
  solo in a forked worker, the lookahead-infinity specialization of the
  conservative discipline (disjoint segments never exchange packets, so
  no null messages are needed at all), and merges the picklable results.

The determinism contract across all three is *per-segment projection
equality* (:func:`projection` / :func:`merge_solo_results`): every
node-scoped field — delivered texts, NIC counters, control views,
deployed configs, stack history — plus the order-independent global
counters must be identical.  Full ``ScenarioResult`` equality is not the
contract here because same-instant callbacks of *different* segments
have no defined mutual order (they share no state); the single-group
case, where total order is defined, is held to byte-identical equality
by the sharded parity tests.

What makes segment runs composition-invariant (same behavior solo,
combined-sequential, or sharded):

* per-sender loss streams (:mod:`repro.simnet.loss`), seeded by
  ``seed:segment-kind:sender`` — never by scenario name or draw
  interleaving;
* per-node protocol RNGs (gossip) seeded by node id;
* one shared engine sequence stream per run, so a segment's entries keep
  their relative ``(when, seq)`` order however the other segments'
  allocations interleave.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Callable, Optional, Sequence

from repro.scenarios.runner import (InvariantCheck, ScenarioResult,
                                    ScenarioRunner, run_scenario)
from repro.scenarios.scenario import (Crash, Handoff, Leave, Recover,
                                      Scenario)
from repro.simnet.shard import ShardPlan, ShardedSimEngine

#: Event types a segment may carry.  Network-global events (loss swaps,
#: partitions, heals, cell reshapes) act on shared state and would couple
#: segments; composing them is a modelling error, rejected loudly.
_SEGMENT_EVENTS = (Handoff, Crash, Recover, Leave)


def relabel_scenario(scenario: Scenario, prefix: str,
                     name: Optional[str] = None) -> Scenario:
    """Clone ``scenario`` with every node id prefixed by ``prefix``.

    Used to stamp copies of one template scenario into id-disjoint
    segments.  Rejects network-global events (see ``_SEGMENT_EVENTS``).
    """
    nodes = tuple(dataclasses.replace(spec, node_id=f"{prefix}{spec.node_id}")
                  for spec in scenario.nodes)
    events = []
    for event in scenario.events:
        if not isinstance(event, _SEGMENT_EVENTS):
            raise ValueError(
                f"{type(event).__name__} is network-global and cannot be "
                "scoped to a segment")
        events.append(dataclasses.replace(
            event, node=f"{prefix}{event.node}"))
    workload = tuple(dataclasses.replace(
        burst, sender=f"{prefix}{burst.sender}")
        for burst in scenario.workload)
    return dataclasses.replace(
        scenario, name=name if name is not None else scenario.name,
        nodes=nodes, events=tuple(events), workload=workload)


def _check_segments(segments: Sequence[Scenario]) -> None:
    if not segments:
        raise ValueError("at least one segment is required")
    seen: set[str] = set()
    for segment in segments:
        segment.validate()
        if segment.cells > 0:
            raise ValueError(
                f"segment {segment.name!r} is federated; run federation "
                "inside one segment is not supported yet")
        ids = {spec.node_id for spec in segment.nodes}
        overlap = seen & ids
        if overlap:
            raise ValueError(
                f"segments share node ids: {sorted(overlap)}")
        seen |= ids
        for event in segment.events:
            if not isinstance(event, _SEGMENT_EVENTS):
                raise ValueError(
                    f"segment {segment.name!r} carries network-global "
                    f"event {type(event).__name__}")


class ShardedScenarioRunner(ScenarioRunner):
    """Run N disjoint segments as one composed simulation.

    Each segment boots its own membership group; the network is
    partitioned along segment lines (defense in depth — a stray
    cross-segment packet becomes a loud loss instead of silent
    coupling).  With the default ``engine_factory`` the composed world
    runs on a :class:`ShardedSimEngine` whose plan maps one shard group
    per segment; passing ``SimEngine`` instead runs the identical
    composition on one sequential engine — the differential baseline the
    parity gate compares against.
    """

    def __init__(self, segments: Sequence[Scenario], seed: int = 0,
                 engine_factory: Optional[Callable[[], object]] = None,
                 shards: int = 1,
                 invariants: Sequence[InvariantCheck] = (),
                 batched: bool = True,
                 name: str = "sharded") -> None:
        _check_segments(segments)
        self.segments = tuple(segments)
        self._segment_nodes: tuple[frozenset[str], ...] = tuple(
            frozenset(spec.node_id for spec in segment.nodes)
            for segment in self.segments)
        combined = Scenario(
            name=name,
            duration_s=max(segment.duration_s for segment in self.segments),
            nodes=tuple(spec for segment in self.segments
                        for spec in segment.nodes))
        if engine_factory is None:
            plan = ShardPlan(self._segment_nodes, shard_count=shards)
            engine_factory = lambda: ShardedSimEngine(plan=plan)  # noqa: E731
        super().__init__(combined, seed=seed, engine_factory=engine_factory,
                         invariants=invariants, batched=batched)

    # -- segment scoping ----------------------------------------------------

    def segment_of(self, node_id: str) -> int:
        for index, nodes in enumerate(self._segment_nodes):
            if node_id in nodes:
                return index
        raise KeyError(node_id)

    def _populate(self) -> None:
        combined = self.scenario
        for segment in self.segments:
            for spec in segment.nodes:
                if spec.join_at is None:
                    self._add_node(spec)
        # Segment isolation as *network topology*: packets cannot cross
        # segment lines even if a protocol bug ever addressed one.
        # Installed before any Morpheus stack boots (and so subscribes to
        # topology news) — it is setup, not an observable event.
        self.network.partition(*self._segment_nodes)
        for segment in self.segments:
            self.scenario = segment
            try:
                initial = segment.initial_members()
                for node_id in initial:
                    self._boot_morpheus(node_id, initial, joining=False)
            finally:
                self.scenario = combined
        self.network.subscribe_topology(self._on_topology)

    def _schedule(self) -> None:
        for index, segment in enumerate(self.segments):
            for spec in segment.joiners():
                self.engine.call_at(
                    spec.join_at,
                    lambda s=spec, i=index: self._join_segment(i, s))
            for event_index, event in enumerate(segment.events):
                self.engine.call_at(
                    event.at,
                    lambda e=event, j=event_index: self._apply(e, j))
            combined = self.scenario
            self.scenario = segment
            try:
                for burst in segment.workload:
                    self._schedule_burst(burst)
            finally:
                self.scenario = combined

    def _join_segment(self, index: int, spec) -> None:
        """A joiner boots against its *segment's* live members and knobs."""
        combined = self.scenario
        self.scenario = self.segments[index]
        try:
            self._add_node(spec)
            live = (set(self.morpheus) & set(self.network.nodes)
                    & self._segment_nodes[index])
            members = sorted(live | {spec.node_id})
            self._boot_morpheus(spec.node_id, members, joining=True)
        finally:
            self.scenario = combined

    def _on_reconfigured(self, coordinator: str, name: str) -> None:
        """Segment-scoped stack snapshots.

        The flat runner snapshots every node on any reconfiguration; in a
        composed run a reconfiguration is segment-local news, and
        snapshotting other segments' nodes would make their histories
        depend on cross-segment timing coincidences — exactly what the
        composition contract forbids.
        """
        now = self.engine.now()
        self._reconfigs.append((now, coordinator, name))
        self._trace.append(f"{now:9.3f}s reconfigured to {name} "
                           f"(coordinator {coordinator})")
        segment = self.segment_of(coordinator)
        for node_id in sorted(self._segment_nodes[segment]):
            node = self.morpheus.get(node_id)
            if node is not None:
                self._stack_history[node_id].append(
                    (now, tuple(node.current_stack())))


def check_segment_isolation(runner: ShardedScenarioRunner,
                            result: ScenarioResult) -> list:
    """Invariant: no node's control view leaks across its segment line."""
    violations = []
    for node_id, view in result.control_views.items():
        segment = runner.segment_of(node_id)
        allowed = runner._segment_nodes[segment]
        strays = [member for member in view if member not in allowed]
        if strays:
            violations.append(
                f"{node_id} (segment {segment}) sees foreign members "
                f"{strays}")
    return violations


# ---------------------------------------------------------------------------
# Worker-process execution (the actual parallelism)
# ---------------------------------------------------------------------------

def _run_segment(args: tuple[Scenario, int]) -> ScenarioResult:
    scenario, seed = args
    return run_scenario(scenario, seed=seed)


def run_segments_parallel(segments: Sequence[Scenario], seed: int = 0,
                          workers: int = 1) -> list[ScenarioResult]:
    """Run each segment solo, fanned out over ``workers`` processes.

    Disjoint segments have infinite lookahead — the conservative
    discipline degenerates to "no synchronization at all", so each
    worker runs a plain :class:`ScenarioRunner` at full speed and ships
    back its :class:`ScenarioResult` (plain tuples and dicts — nothing
    live crosses the process boundary).  Results come back in segment
    order regardless of completion order.
    """
    _check_segments(segments)
    jobs = [(segment, seed) for segment in segments]
    if workers <= 1:
        return [_run_segment(job) for job in jobs]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    with context.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(_run_segment, jobs)


# ---------------------------------------------------------------------------
# The cross-mode determinism contract
# ---------------------------------------------------------------------------

def projection(result: ScenarioResult) -> dict:
    """Canonical composition-invariant view of a composed run's result.

    Node-scoped fields verbatim; order-sensitive global logs as sorted
    multisets (same-instant callbacks of different segments have no
    defined mutual order); engine bookkeeping (``engine_events``,
    ``topology_epoch``) excluded — batching flush counts and the
    isolation partition differ by composition mode by construction.
    """
    return {
        "texts": dict(result.texts),
        "stats": dict(result.stats),
        "control_views": dict(result.control_views),
        "deployed": dict(result.deployed),
        "stack_history": dict(result.stack_history),
        "reconfigurations": tuple(sorted(result.reconfigurations)),
        "delivered_packets": result.delivered_packets,
        "lost_packets": result.lost_packets,
        "timer_events": result.timer_events,
    }


def merge_solo_results(results: Sequence[ScenarioResult]) -> dict:
    """Merge solo per-segment results into the same projection shape."""
    merged: dict = {
        "texts": {}, "stats": {}, "control_views": {}, "deployed": {},
        "stack_history": {}, "reconfigurations": [],
        "delivered_packets": 0, "lost_packets": 0, "timer_events": 0,
    }
    for result in results:
        merged["texts"].update(result.texts)
        merged["stats"].update(result.stats)
        merged["control_views"].update(result.control_views)
        merged["deployed"].update(result.deployed)
        merged["stack_history"].update(result.stack_history)
        merged["reconfigurations"].extend(result.reconfigurations)
        merged["delivered_packets"] += result.delivered_packets
        merged["lost_packets"] += result.lost_packets
        merged["timer_events"] += result.timer_events
    merged["reconfigurations"] = tuple(sorted(merged["reconfigurations"]))
    return merged
