"""Declarative dynamic-topology scenarios.

The paper's premise is that the communication stack should *re-adapt when
context changes* — yet a static testbed only ever exercises adaptation to
conditions chosen before t=0.  A :class:`Scenario` describes a whole
dynamic run declaratively: the topology (including nodes that join later),
a timed schedule of topology events (segment handoffs, churn, loss-model
swaps, partitions) and the chat workload phases.  The
:class:`~repro.scenarios.runner.ScenarioRunner` executes the schedule on
the simulation timeline, so every event lands at a deterministic virtual
instant and a scenario replayed with the same seed reproduces its run
exactly.

Everything here is plain data with validation — no simulator state — so
scenarios can be built, inspected, compared and stored independently of
any run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

VALID_KINDS = ("fixed", "mobile")
VALID_SEGMENTS = ("wired", "wireless")
VALID_LOSS_MODELS = ("none", "bernoulli", "gilbert_elliott")
VALID_POLICIES = ("hybrid", "loss_adaptive", "rotating")
VALID_ORDERINGS = ("causal", "total")


@dataclass(frozen=True)
class LinkSpec:
    """A loss model by description, buildable deterministically per run.

    ``model`` is ``"none"``, ``"bernoulli"`` (params: ``probability``) or
    ``"gilbert_elliott"`` (params: ``p_good``, ``p_bad``,
    ``p_good_to_bad``, ``p_bad_to_good``).
    """

    model: str = "none"
    params: tuple[tuple[str, float], ...] = ()

    def validate(self, where: str) -> None:
        if self.model not in VALID_LOSS_MODELS:
            raise ValueError(
                f"{where}: unknown loss model {self.model!r} "
                f"(expected one of {VALID_LOSS_MODELS})")

    def as_dict(self) -> dict[str, float]:
        return dict(self.params)


def bernoulli(probability: float) -> LinkSpec:
    """Shorthand for an independent-loss link description."""
    return LinkSpec("bernoulli", (("probability", probability),))


def gilbert_elliott(**params: float) -> LinkSpec:
    """Shorthand for a bursty two-state link description."""
    return LinkSpec("gilbert_elliott", tuple(sorted(params.items())))


@dataclass(frozen=True)
class NodeSpec:
    """One device of the scenario.

    ``join_at`` of ``None`` means present from t=0; otherwise the node is
    created — and its Morpheus stack boots in joiner mode — at that virtual
    time.
    """

    node_id: str
    kind: str = "fixed"
    join_at: Optional[float] = None
    battery_mj: Optional[float] = None


@dataclass(frozen=True)
class ScenarioEvent:
    """Base of every scheduled topology event; ``at`` is virtual seconds."""

    at: float


@dataclass(frozen=True)
class Handoff(ScenarioEvent):
    """Move ``node`` to the other segment (``to``: ``fixed``/``mobile``)."""

    node: str = ""
    to: str = "mobile"


@dataclass(frozen=True)
class Crash(ScenarioEvent):
    """Fail-stop ``node`` (recoverable via :class:`Recover`)."""

    node: str = ""


@dataclass(frozen=True)
class Recover(ScenarioEvent):
    """Bring a crashed ``node`` back; the membership layer re-admits it."""

    node: str = ""


@dataclass(frozen=True)
class Leave(ScenarioEvent):
    """Graceful departure: leave flushes run, then — ``depart_after``
    seconds later — the node is removed from the network for good."""

    node: str = ""
    depart_after: float = 5.0


@dataclass(frozen=True)
class SetLoss(ScenarioEvent):
    """Swap one segment's loss model live (``segment``:
    ``wired``/``wireless``)."""

    segment: str = "wireless"
    link: LinkSpec = field(default_factory=LinkSpec)


@dataclass(frozen=True)
class Partition(ScenarioEvent):
    """Split the network into isolated groups of node ids."""

    groups: tuple[tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class Heal(ScenarioEvent):
    """Remove any partition."""


@dataclass(frozen=True)
class SplitCell(ScenarioEvent):
    """Federation: split a cell in two (``cell`` empty = the largest).

    Only valid in federated scenarios (``cells > 0``).  An explicit split
    bypasses the size thresholds but still runs through the cell
    governor's flap damping.
    """

    cell: str = ""


@dataclass(frozen=True)
class MergeCell(ScenarioEvent):
    """Federation: merge a cell into another (empty = smallest two)."""

    cell: str = ""
    into: str = ""


@dataclass(frozen=True)
class ChatBurst:
    """One workload phase: ``count`` paced messages from ``sender``."""

    start: float
    sender: str
    count: int = 50
    interval: float = 0.5
    prefix: str = "m"


@dataclass(frozen=True)
class Scenario:
    """A complete dynamic-topology run description."""

    name: str
    duration_s: float
    nodes: tuple[NodeSpec, ...]
    events: tuple[ScenarioEvent, ...] = ()
    workload: tuple[ChatBurst, ...] = ()
    policy: str = "hybrid"
    policy_options: tuple[tuple[str, float], ...] = ()
    #: Declarative rule set overriding ``policy`` when non-empty: ordered
    #: ``(rule_name, ((param, value), ...))`` pairs resolved against the
    #: core rule registry at boot.  The fuzzer draws random-but-valid
    #: rule sets through this field.
    rules: tuple[tuple[str, tuple[tuple[str, float], ...]], ...] = ()
    #: Adaptation-governor parameters for the rule engine (``budget``,
    #: ``flap_limit``, ``window``, ``cooldown``); empty means ungoverned.
    governor: tuple[tuple[str, float], ...] = ()
    #: Ordering layers for the data stack (``"causal"``/``"total"``); the
    #: fuzzer uses it to exercise the reliable+total delivery invariants.
    ordering: tuple[str, ...] = ()
    wired: LinkSpec = field(default_factory=LinkSpec)
    wireless: LinkSpec = field(default_factory=LinkSpec)
    publish_interval: float = 2.0
    evaluate_interval: float = 2.0
    heartbeat_interval: float = 5.0
    nack_interval: float = 0.25
    #: Federation: number of initial cells.  0 (the default) runs the flat
    #: single-group stack; ≥ 1 runs the federation runner — ``cells=1``
    #: with the thresholds below at 0 is the 1-cell special case whose
    #: behaviour is asserted identical to the flat stack.
    cells: int = 0
    #: Split a cell when live membership exceeds this (0 = never).
    cell_size_max: int = 0
    #: Merge a cell away when live membership falls below this (0 = never).
    cell_size_min: int = 0
    #: Gateway-served admission backlog depth (0 = no state transfer).
    backlog_n: int = 0
    #: Run the chat anti-entropy pass when a view gains joiners.
    reconcile: bool = False

    # -- structure queries --------------------------------------------------

    def node_ids(self) -> tuple[str, ...]:
        return tuple(spec.node_id for spec in self.nodes)

    def initial_members(self) -> tuple[str, ...]:
        """Nodes present from t=0, sorted."""
        return tuple(sorted(spec.node_id for spec in self.nodes
                            if spec.join_at is None))

    def joiners(self) -> tuple[NodeSpec, ...]:
        """Late joiners, in join order (ties broken by id)."""
        late = [spec for spec in self.nodes if spec.join_at is not None]
        return tuple(sorted(late, key=lambda s: (s.join_at, s.node_id)))

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.duration_s <= 0:
            raise ValueError(f"non-positive duration: {self.duration_s}")
        if self.policy not in VALID_POLICIES:
            raise ValueError(f"unknown policy {self.policy!r} "
                             f"(expected one of {VALID_POLICIES})")
        for layer in self.ordering:
            if layer not in VALID_ORDERINGS:
                raise ValueError(f"unknown ordering layer {layer!r} "
                                 f"(expected one of {VALID_ORDERINGS})")
        for entry in self.rules:
            if not (isinstance(entry, tuple) and len(entry) == 2 and
                    isinstance(entry[0], str) and entry[0]):
                raise ValueError(
                    f"malformed rule entry {entry!r} (expected "
                    "(name, ((param, value), ...)))")
            for param in entry[1]:
                if not (isinstance(param, tuple) and len(param) == 2 and
                        isinstance(param[0], str)):
                    raise ValueError(
                        f"malformed rule parameter {param!r} in "
                        f"rule {entry[0]!r}")
        for param in self.governor:
            if not (isinstance(param, tuple) and len(param) == 2 and
                    isinstance(param[0], str)):
                raise ValueError(
                    f"malformed governor parameter {param!r}")
        if not self.initial_members():
            raise ValueError("scenario needs at least one t=0 node")
        if self.cells < 0:
            raise ValueError(f"negative cell count: {self.cells}")
        if self.cells == 0 and (self.cell_size_max or self.cell_size_min or
                                self.backlog_n or self.reconcile):
            raise ValueError(
                "cell thresholds / backlog / reconcile require a federated "
                "scenario (cells >= 1)")
        if self.cells > len(self.initial_members()):
            raise ValueError(
                f"{self.cells} cells but only "
                f"{len(self.initial_members())} t=0 nodes")
        seen: set[str] = set()
        for spec in self.nodes:
            if spec.node_id in seen:
                raise ValueError(f"duplicate node id {spec.node_id!r}")
            seen.add(spec.node_id)
            if spec.kind not in VALID_KINDS:
                raise ValueError(
                    f"node {spec.node_id!r}: unknown kind {spec.kind!r}")
            if spec.join_at is not None and \
                    not 0.0 < spec.join_at < self.duration_s:
                raise ValueError(
                    f"node {spec.node_id!r}: join_at {spec.join_at} outside "
                    f"(0, {self.duration_s})")
        self.wired.validate(f"scenario {self.name!r} wired link")
        self.wireless.validate(f"scenario {self.name!r} wireless link")
        for event in self.events:
            self._validate_event(event, seen)
        for burst in self.workload:
            if burst.sender not in seen:
                raise ValueError(f"workload sender {burst.sender!r} unknown")
            if burst.count <= 0 or burst.interval <= 0:
                raise ValueError(
                    f"workload burst at {burst.start}: count and interval "
                    "must be positive")
            if not 0.0 <= burst.start < self.duration_s:
                raise ValueError(
                    f"workload burst start {burst.start} outside the run")

    def _validate_event(self, event: ScenarioEvent, known: set[str]) -> None:
        where = f"event at {event.at}s"
        executable = (Handoff, Crash, Recover, Leave, SetLoss, Partition,
                      Heal, SplitCell, MergeCell)
        if not isinstance(event, executable):
            # Fail fast: the runner only knows these concrete event types.
            raise ValueError(
                f"{where}: {type(event).__name__} is not an executable "
                "scenario event")
        if isinstance(event, (SplitCell, MergeCell)) and self.cells <= 0:
            raise ValueError(
                f"{where}: {type(event).__name__} requires a federated "
                "scenario (cells >= 1)")
        if not 0.0 <= event.at <= self.duration_s:
            raise ValueError(f"{where}: outside [0, {self.duration_s}]")
        node = getattr(event, "node", None)
        if node is not None and node not in known:
            raise ValueError(f"{where}: unknown node {node!r}")
        if isinstance(event, Handoff) and event.to not in VALID_KINDS:
            raise ValueError(f"{where}: unknown handoff target {event.to!r}")
        if isinstance(event, SetLoss):
            if event.segment not in VALID_SEGMENTS:
                raise ValueError(
                    f"{where}: unknown segment {event.segment!r}")
            event.link.validate(where)
        if isinstance(event, Partition):
            if len(event.groups) < 2:
                raise ValueError(f"{where}: a partition needs ≥ 2 groups")
            for group in event.groups:
                for member in group:
                    if member not in known:
                        raise ValueError(
                            f"{where}: unknown node {member!r} in partition")
