"""Dynamic-topology scenarios: declarative schedules of context change.

The subsystem that turns every static experiment into a family of dynamic
ones: a :class:`Scenario` declares the topology (including mid-run
joiners), a timed schedule of events — segment handoffs, churn, loss-model
swaps, partitions — and the workload; the :class:`ScenarioRunner` executes
it deterministically on the simulation timeline while the full Morpheus
pipeline (Cocaditem dissemination → policy → flush → stack swap) adapts
live.  :mod:`repro.scenarios.library` ships the canned scenarios.
"""

from repro.scenarios.fuzz import (ALWAYS_ON, MIXES, FuzzConfig, FuzzOutcome,
                                  fuzz_oracle, generate_scenario, run_fuzz,
                                  run_seed_for, scenario_from_dict,
                                  scenario_to_dict)
from repro.scenarios.library import (CANNED, canned, churn_storm,
                                     commuter_handoff, degrading_channel_fec,
                                     energy_rotation, flash_crowd_join,
                                     partition_heal)
from repro.scenarios.runner import (InvariantViolation, ScenarioResult,
                                    ScenarioRunner, build_loss_model,
                                    run_scenario)
from repro.scenarios.scenario import (ChatBurst, Crash, Handoff, Heal,
                                      Leave, LinkSpec, NodeSpec, Partition,
                                      Recover, Scenario, ScenarioEvent,
                                      SetLoss, bernoulli, gilbert_elliott)
from repro.scenarios.shrink import (ShrinkOutcome, load_corpus_file,
                                    shrink_scenario, write_corpus_file)

__all__ = [
    "CANNED", "canned", "churn_storm", "commuter_handoff",
    "degrading_channel_fec", "energy_rotation", "flash_crowd_join",
    "partition_heal",
    "InvariantViolation", "ScenarioResult", "ScenarioRunner",
    "build_loss_model", "run_scenario",
    "ChatBurst", "Crash", "Handoff", "Heal", "Leave", "LinkSpec",
    "NodeSpec", "Partition", "Recover", "Scenario", "ScenarioEvent",
    "SetLoss", "bernoulli", "gilbert_elliott",
    "ALWAYS_ON", "MIXES", "FuzzConfig", "FuzzOutcome", "fuzz_oracle",
    "generate_scenario", "run_fuzz", "run_seed_for", "scenario_from_dict",
    "scenario_to_dict",
    "ShrinkOutcome", "load_corpus_file", "shrink_scenario",
    "write_corpus_file",
]
