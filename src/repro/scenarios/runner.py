"""Scenario execution: a declarative schedule on the simulation timeline.

The :class:`ScenarioRunner` builds the simulated network from a
:class:`~repro.scenarios.scenario.Scenario`, boots one Morpheus node per
t=0 member, schedules every topology event and workload burst at its
virtual instant, and runs the engine to the scenario horizon.  Everything
it records lands in a :class:`ScenarioResult` built from plain tuples and
dicts, so two results compare with ``==`` — the determinism contract is
*result equality under equal seeds*.

Event semantics on the live system:

* **handoff** — :meth:`Network.move_node`; the context layer disseminates
  the changed ``device_type`` immediately (event-driven republish) and the
  Core coordinator's policy reconfigures the stack;
* **join** — the node and its Morpheus stack are created mid-run in joiner
  mode; the control group admits it and the coordinator redeploys the data
  configuration with the grown membership;
* **leave** — graceful leave flushes on both channels, then the node is
  removed from the network;
* **crash / recover** — fail-stop and return; the membership layer excludes
  and later re-admits the node;
* **loss swap / partition / heal** — network-level context changes that the
  policies observe through the disseminated attributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.morpheus import MorpheusNode
from repro.kernel.group import scoped_name
from repro.simnet.energy import Battery
from repro.core.rules import (PolicyEngine, build_rule, governor_from_params)
from repro.core.policy import (HybridMechoPolicy, LossAdaptivePolicy, Policy,
                               ThresholdBatteryRotationPolicy)
from repro.simnet.engine import SimEngine
from repro.simnet.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.simnet.network import LinkParams, Network, TopologyChange
from repro.simnet.node import NodeKind
from repro.scenarios.scenario import (ChatBurst, Crash, Handoff, Heal, Leave,
                                      LinkSpec, Partition, Recover, Scenario,
                                      ScenarioEvent, SetLoss)


def build_loss_model(spec: LinkSpec, rng: random.Random,
                     seed_base: str | None = None) -> LossModel:
    """Instantiate the loss model a :class:`LinkSpec` describes.

    ``seed_base`` enables per-sender draw streams (see
    :mod:`repro.simnet.loss`): the simulated network spawns one stream per
    sending node, keyed only by seed/segment/sender — deliberately *not*
    by scenario name — so a node's loss draws are identical whether its
    segment runs solo, combined in one engine, or on a shard.
    """
    params = spec.as_dict()
    if spec.model == "bernoulli":
        return BernoulliLoss(params.get("probability", 0.0), rng,
                             seed_base=seed_base)
    if spec.model == "gilbert_elliott":
        return GilbertElliottLoss(rng, seed_base=seed_base, **params)
    return NoLoss()


class InvariantViolation(AssertionError):
    """A completed run broke at least one always-on invariant.

    Raised by :meth:`ScenarioRunner.run` when invariant checks were
    installed and any of them reported violations.  Carries the finished
    :class:`ScenarioResult` so the caller (the fuzzer, a test) can inspect
    and shrink the run that failed.
    """

    def __init__(self, violations: Sequence[str],
                 result: "ScenarioResult") -> None:
        super().__init__("; ".join(violations))
        self.violations = tuple(violations)
        self.result = result


#: An invariant check: called with the finished runner (network, morpheus
#: nodes and scenario still live) and the collected result; returns a list
#: of human-readable violation strings — empty when the invariant holds.
InvariantCheck = Callable[["ScenarioRunner", "ScenarioResult"], list]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced; ``==`` is the determinism
    contract (two runs with equal seeds must compare equal)."""

    name: str
    seed: int
    duration_s: float
    #: Formatted topology-change and reconfiguration log, time-ordered.
    trace: tuple[str, ...] = ()
    #: Completed group-wide reconfigurations: (time, coordinator, config).
    reconfigurations: tuple[tuple[float, str, str], ...] = ()
    #: Data-stack composition per node over time: (time, layer names).
    stack_history: dict[str, tuple[tuple[float, tuple[str, ...]], ...]] = \
        field(default_factory=dict)
    #: Chat deliveries per node, in delivery order.
    texts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: NIC counter snapshot per node (departed nodes included).
    stats: dict[str, dict] = field(default_factory=dict)
    #: Final control-group membership as each surviving node sees it.
    control_views: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Final deployed configuration name per surviving node.
    deployed: dict[str, str] = field(default_factory=dict)
    #: Federation: final cell rosters (empty for flat single-group runs).
    cells: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Federation: final gateway per cell.
    gateways: dict[str, str] = field(default_factory=dict)
    delivered_packets: int = 0
    lost_packets: int = 0
    engine_events: int = 0
    #: Kernel timer-event dispatches summed over all nodes — the share of
    #: ``engine_events`` attributable to timer ticks (probe retries,
    #: heartbeats, NACK rounds).  The timer-wheel benchmark tracks this.
    timer_events: int = 0
    topology_epoch: int = 0

    def reconfiguration_count(self) -> int:
        return len(self.reconfigurations)

    def stacks_of(self, node_id: str) -> tuple[tuple[str, ...], ...]:
        """Distinct successive stack compositions one node ran."""
        history = self.stack_history.get(node_id, ())
        compositions: list[tuple[str, ...]] = []
        for _, stack in history:
            if not compositions or compositions[-1] != stack:
                compositions.append(stack)
        return tuple(compositions)

    def summary(self) -> dict:
        """Compact shape for tables and benchmarks."""
        sent = sum(s.get("sent_total", 0) for s in self.stats.values())
        return {
            "scenario": self.name,
            "nodes": len(self.stats),
            "events": len(self.trace),
            "reconfigurations": self.reconfiguration_count(),
            "sent": sent,
            "delivered": self.delivered_packets,
            "lost": self.lost_packets,
        }


class ScenarioRunner:
    """Executes one :class:`Scenario` deterministically.

    Args:
        scenario: the declarative run description (validated on entry).
        seed: run seed — feeds the network RNG and every loss model built
            for the run, each through a stable per-purpose derivation.
        engine_factory: constructor of the discrete-event engine; defaults
            to :class:`~repro.simnet.engine.SimEngine`.  The timer-wheel
            benchmark passes the reference heap scheduler here to prove
            the two engines drive bit-identical runs.
        invariants: checks run after every completed run, while the
            network and Morpheus nodes are still inspectable.  Each is
            called with ``(runner, result)`` and returns a list of
            violation strings; any non-empty list makes :meth:`run` raise
            :class:`InvariantViolation` (carrying the result).  The fuzzer
            installs its always-on invariant set here.
    """

    def __init__(self, scenario: Scenario, seed: int = 0,
                 engine_factory=SimEngine,
                 invariants: Sequence[InvariantCheck] = (),
                 batched: bool = True) -> None:
        scenario.validate()
        self.scenario = scenario
        self.seed = seed
        self.engine_factory = engine_factory
        self.invariants = tuple(invariants)
        #: Same-slot delivery batching; ``False`` is the one-engine-event-
        #: per-delivery escape hatch the batching parity tests compare
        #: against (histories must be byte-identical either way).
        self.batched = batched
        self.engine = None
        self.network: Optional[Network] = None
        self.morpheus: dict[str, MorpheusNode] = {}
        self._trace: list[str] = []
        self._reconfigs: list[tuple[float, str, str]] = []
        self._stack_history: dict[str, list[tuple[float, tuple[str, ...]]]] \
            = {}

    # -- deterministic derived randomness -----------------------------------

    def _rng(self, purpose: str) -> random.Random:
        # String seeding is hash-randomization-independent (seeded through
        # a digest), so derived streams replay across processes.
        return random.Random(f"{self.seed}:{self.scenario.name}:{purpose}")

    # -- construction --------------------------------------------------------

    def _link(self, spec: LinkSpec, segment: str) -> LinkParams:
        loss = build_loss_model(spec, self._rng(f"loss:{segment}"),
                                seed_base=f"{self.seed}:{segment}")
        if segment == "wired":
            return LinkParams(latency_s=0.0005, bandwidth_bps=100e6,
                              loss=loss)
        return LinkParams(latency_s=0.002, bandwidth_bps=11e6, loss=loss)

    def _make_policy(self, group: str = "") -> Policy:
        options = dict(self.scenario.policy_options)
        stack_options = {
            "heartbeat_interval": self.scenario.heartbeat_interval,
            "nack_interval": self.scenario.nack_interval,
            "ordering": tuple(self.scenario.ordering),
        }
        if group:
            # Federation: every template a policy builds for this node
            # keys the suite epoch by the cell's scoped data-group id.
            stack_options["group"] = scoped_name("data", group)
            stack_options["app_params"] = self._app_params()
        if self.scenario.rules:
            # Declarative rule set (the policy-fuzz path): resolve every
            # rule against the registry and govern the engine when the
            # scenario drew governor parameters.
            rules = tuple(build_rule(name, dict(params), stack_options)
                          for name, params in self.scenario.rules)
            return PolicyEngine(
                rules,
                governor=governor_from_params(dict(self.scenario.governor)))
        if self.scenario.policy == "loss_adaptive":
            return LossAdaptivePolicy(stack_options=stack_options, **options)
        if self.scenario.policy == "rotating":
            return ThresholdBatteryRotationPolicy(
                stack_options=stack_options, **options)
        return HybridMechoPolicy(stack_options=stack_options, **options)

    def _build_network(self):
        """Backend hook: construct the run's network on ``self.engine``.

        The live runner (:class:`repro.livenet.runner.LiveScenarioRunner`)
        overrides this (and :meth:`run`) — everything else in the runner
        is written against the shared Transport surface and runs on
        either backend unchanged.
        """
        scenario = self.scenario
        return Network(
            self.engine, seed=self.seed,
            wired=self._link(scenario.wired, "wired"),
            wireless=self._link(scenario.wireless, "wireless"),
            batched=self.batched)

    def _add_node(self, spec) -> None:
        assert self.network is not None
        battery = Battery(capacity_mj=spec.battery_mj) \
            if spec.battery_mj is not None else None
        kind = NodeKind.MOBILE if spec.kind == "mobile" else NodeKind.FIXED
        self.network.add_node(spec.node_id, kind, battery=battery)

    def _app_params(self) -> dict:
        """Extra chat-layer parameters; the federation runner overrides."""
        return {}

    def _boot_morpheus(self, node_id: str, members, joining: bool,
                       group: str = "",
                       adopt: Optional[dict] = None) -> MorpheusNode:
        scenario = self.scenario
        node = MorpheusNode(
            self.network, node_id, members,
            policy=self._make_policy(group=group),
            ordering=tuple(scenario.ordering),
            publish_interval=scenario.publish_interval,
            evaluate_interval=scenario.evaluate_interval,
            heartbeat_interval=scenario.heartbeat_interval,
            nack_interval=scenario.nack_interval,
            joining=joining,
            group=group,
            app_params=self._app_params() if group else None)
        if adopt is not None:
            # Cell re-formation: the node keeps its delivered history and
            # federation sequence numbering across the group change.
            node.chat.adopt(adopt)
        self.morpheus[node_id] = node
        history = self._stack_history.setdefault(node_id, [])
        history.append((self.engine.now(), tuple(node.current_stack())))
        node.core.on_reconfigured = \
            lambda name, n=node_id: self._on_reconfigured(n, name)
        self._after_boot(node)
        return node

    def _after_boot(self, node: MorpheusNode) -> None:
        """Subclass hook after a node instance boots (federation glue)."""

    # -- live hooks ----------------------------------------------------------

    def _on_reconfigured(self, coordinator: str, name: str) -> None:
        now = self.engine.now()
        self._reconfigs.append((now, coordinator, name))
        self._trace.append(f"{now:9.3f}s reconfigured to {name} "
                           f"(coordinator {coordinator})")
        for node_id in sorted(self.morpheus):
            node = self.morpheus[node_id]
            self._stack_history[node_id].append(
                (now, tuple(node.current_stack())))

    def _on_topology(self, change: TopologyChange) -> None:
        self._trace.append(f"{self.engine.now():9.3f}s {change.format()}")

    # -- event application ---------------------------------------------------

    def _apply(self, event: ScenarioEvent, index: int) -> None:
        network = self.network
        assert network is not None
        target = getattr(event, "node", None)
        if target is not None and target not in network.nodes:
            # The target is absent: it departed (a Leave earlier in the
            # schedule removed it) or it has not joined yet (join_at later
            # than this event).  validate() cannot see ordering, so
            # tolerate both here — traced with the actual reason, the same
            # way _depart tolerates a node that already left.
            reason = "departed" if target in network.departed \
                else "not joined yet"
            self._trace.append(
                f"{self.engine.now():9.3f}s skipped "
                f"{type(event).__name__.lower()} {target} ({reason})")
            return
        if isinstance(event, Handoff):
            kind = NodeKind.MOBILE if event.to == "mobile" else NodeKind.FIXED
            network.move_node(event.node, kind)
        elif isinstance(event, Crash):
            network.crash_node(event.node)
        elif isinstance(event, Recover):
            network.recover_node(event.node)
        elif isinstance(event, Leave):
            self.morpheus[event.node].leave()
            self.engine.call_later(
                event.depart_after,
                lambda: self._depart(event.node))
        elif isinstance(event, SetLoss):
            model = build_loss_model(
                event.link, self._rng(f"loss-swap:{index}"),
                seed_base=f"{self.seed}:{event.segment}:swap{index}")
            if event.segment == "wired":
                network.set_wired_loss(model)
            else:
                network.set_wireless_loss(model)
        elif isinstance(event, Partition):
            network.partition(*event.groups)
        elif isinstance(event, Heal):
            network.heal_partition()
        else:  # pragma: no cover - scenario.validate() rejects these
            raise TypeError(f"unknown scenario event {event!r}")

    def _depart(self, node_id: str) -> None:
        if node_id in self.network.nodes:
            self.network.remove_node(node_id)

    def _join(self, spec) -> None:
        self._add_node(spec)
        # Bootstrap peers: the *live* group (left nodes solicit nobody).
        live = set(self.morpheus) & set(self.network.nodes)
        members = sorted(live | {spec.node_id})
        self._boot_morpheus(spec.node_id, members, joining=True)

    # -- the run itself -------------------------------------------------------

    def run(self) -> ScenarioResult:
        self.engine = self.engine_factory()
        self.network = self._build_network()
        self._populate()
        self._schedule()
        self.engine.run_until(self.scenario.duration_s)
        return self._finalize()

    def _populate(self) -> None:
        """Create the t=0 nodes and boot their Morpheus stacks."""
        for spec in self.scenario.nodes:
            if spec.join_at is None:
                self._add_node(spec)
        initial = self.scenario.initial_members()
        for node_id in initial:
            self._boot_morpheus(node_id, initial, joining=False)
        # Trace topology changes from here on (bootstrapping is not news).
        self.network.subscribe_topology(self._on_topology)

    def _schedule(self) -> None:
        """Queue every join, topology event and workload burst."""
        for spec in self.scenario.joiners():
            self.engine.call_at(spec.join_at, lambda s=spec: self._join(s))
        for index, event in enumerate(self.scenario.events):
            self.engine.call_at(event.at,
                                lambda e=event, i=index: self._apply(e, i))
        for burst in self.scenario.workload:
            self._schedule_burst(burst)

    def _finalize(self) -> ScenarioResult:
        """Collect the result and enforce the installed invariants."""
        result = self._collect()
        if self.invariants:
            violations: list[str] = []
            for check in self.invariants:
                violations.extend(check(self, result))
            if violations:
                raise InvariantViolation(violations, result)
        return result

    def _schedule_burst(self, burst: ChatBurst) -> None:
        def send(index: int) -> None:
            sender = self.morpheus.get(burst.sender)
            if sender is not None and sender.node.alive:
                sender.send(f"{burst.prefix}-{index}")

        for index in range(burst.count):
            when = burst.start + index * burst.interval
            if when >= self.scenario.duration_s:
                break
            self.engine.call_at(when, lambda i=index: send(i))

    # -- collection ------------------------------------------------------------

    def _collect(self) -> ScenarioResult:
        network = self.network
        assert network is not None and self.engine is not None
        result = ScenarioResult(
            name=self.scenario.name, seed=self.seed,
            duration_s=self.scenario.duration_s,
            trace=tuple(self._trace),
            reconfigurations=tuple(self._reconfigs),
            stack_history={node_id: tuple(history) for node_id, history
                           in sorted(self._stack_history.items())},
            texts={node_id: tuple(node.chat.texts()) for node_id, node
                   in sorted(self.morpheus.items())},
            stats={node_id: network.stats_of(node_id).snapshot()
                   for node_id in sorted(self._stack_history)},
            control_views={node_id: tuple(node.core.members)
                           for node_id, node in sorted(self.morpheus.items())
                           if node_id in network.nodes},
            deployed={node_id: node.core.deployed_name
                      for node_id, node in sorted(self.morpheus.items())
                      if node_id in network.nodes},
            delivered_packets=network.delivered_packets,
            lost_packets=network.lost_packets,
            engine_events=self.engine.fired_count,
            timer_events=sum(
                node.node.kernel.timer_dispatched_count
                for _, node in sorted(self.morpheus.items())),
            topology_epoch=network.topology_epoch)
        return result


def run_scenario(scenario: Scenario, seed: int = 0,
                 engine_factory=SimEngine,
                 invariants: Sequence[InvariantCheck] = (),
                 batched: bool = True, backend: str = "sim",
                 **live_options) -> ScenarioResult:
    """One-call convenience: build a runner and execute the scenario.

    ``backend`` selects the transport: ``"sim"`` (default) runs on the
    deterministic simulator; ``"live"`` replays the same scenario over
    real asyncio UDP sockets with the loopback impairment shim
    (``**live_options`` — e.g. ``time_scale`` — reach
    :class:`repro.livenet.runner.LiveScenarioRunner`).
    """
    if backend == "live":
        from repro.livenet.runner import LiveScenarioRunner
        return LiveScenarioRunner(scenario, seed=seed,
                                  invariants=invariants,
                                  **live_options).run()
    if backend != "sim":
        raise ValueError(f"unknown backend {backend!r}; "
                         "expected 'sim' or 'live'")
    if scenario.cells > 0:
        from repro.federation.runner import FederationRunner
        return FederationRunner(scenario, seed=seed,
                                engine_factory=engine_factory,
                                invariants=invariants,
                                batched=batched).run()
    return ScenarioRunner(scenario, seed=seed, engine_factory=engine_factory,
                          invariants=invariants, batched=batched).run()
