"""Battery model for mobile devices.

The paper (§1) cites energy-aware multicasting [Wieselthier et al. 2002] as
a reason to adapt: *"when all participants execute in mobile devices, one
can use information about the available battery at each device to increase
the lifetime of the network"*.  This model charges transmission and
reception costs so that (a) Cocaditem's battery retriever has something real
to report and (b) the energy-lifetime ablation can compare relay-selection
policies.

Costs follow the usual first-order radio model: a fixed per-packet
electronics cost plus a per-byte cost, with transmission more expensive than
reception.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnergyParams:
    """Radio energy parameters, loosely scaled to an early-2000s 802.11b NIC."""

    tx_per_packet_mj: float = 0.4
    tx_per_byte_mj: float = 0.002
    rx_per_packet_mj: float = 0.2
    rx_per_byte_mj: float = 0.001


@dataclass
class Battery:
    """A finite energy reserve, in millijoules.

    The default capacity corresponds to a period-appropriate PDA battery
    (≈ 1250 mAh at 3.7 V ≈ 16.6 kJ), enough to survive the paper's
    67-minute chat runs — as the real iPAQs evidently did.  Energy
    experiments pass much smaller capacities explicitly so depletion
    happens within the simulated horizon.

    Attributes:
        capacity_mj: initial charge.
        params: radio cost model.
        level_mj: remaining charge (clamped at zero).
        depleted_at: virtual time of depletion, or ``None`` while alive.
    """

    capacity_mj: float = 16_650_000.0
    params: EnergyParams = field(default_factory=EnergyParams)
    level_mj: float = field(default=-1.0)
    depleted_at: float | None = None
    tx_count: int = 0
    rx_count: int = 0

    def __post_init__(self) -> None:
        if self.level_mj < 0:
            self.level_mj = self.capacity_mj

    @property
    def alive(self) -> bool:
        """True while charge remains."""
        return self.level_mj > 0.0

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of capacity in ``[0, 1]``."""
        if self.capacity_mj <= 0:
            return 0.0
        return max(0.0, self.level_mj / self.capacity_mj)

    def _drain(self, amount_mj: float, now: float) -> None:
        if not self.alive:
            return
        self.level_mj -= amount_mj
        if self.level_mj <= 0.0:
            self.level_mj = 0.0
            self.depleted_at = now

    def consume_tx(self, size_bytes: int, now: float = 0.0) -> None:
        """Charge the cost of transmitting ``size_bytes``."""
        self.tx_count += 1
        cost = self.params.tx_per_packet_mj + self.params.tx_per_byte_mj * size_bytes
        self._drain(cost, now)

    def consume_rx(self, size_bytes: int, now: float = 0.0) -> None:
        """Charge the cost of receiving ``size_bytes``."""
        self.rx_count += 1
        cost = self.params.rx_per_packet_mj + self.params.rx_per_byte_mj * size_bytes
        self._drain(cost, now)
