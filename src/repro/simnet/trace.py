"""Optional packet tracing for debugging experiments.

A :class:`PacketTrace` hooks a network and records every transmission in a
ring buffer; `dump()` renders a compact, time-ordered log.  Tracing is off
by default — experiments that count hundreds of thousands of packets should
not pay for it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.simnet.network import Network
from repro.simnet.node import SimNode
from repro.kernel.packet import Packet


@dataclass(frozen=True)
class TraceEntry:
    """One recorded transmission."""

    time: float
    src: str
    dst: object
    port: str
    event: str
    traffic_class: str
    size_bytes: int

    def format(self) -> str:
        return (f"{self.time:10.4f}s {self.src:>10} -> {str(self.dst):<22} "
                f"{self.port:<10} {self.event:<28} {self.traffic_class:<7} "
                f"{self.size_bytes}B")


class PacketTrace:
    """Records transmissions by wrapping :meth:`Network.transmit`.

    Args:
        network: the network to observe.
        capacity: ring-buffer size; oldest entries are evicted first.
    """

    def __init__(self, network: Network, capacity: int = 10_000) -> None:
        self.network = network
        self.entries: deque[TraceEntry] = deque(maxlen=capacity)
        self._original_transmit = network.transmit
        self._installed = False

    def install(self) -> "PacketTrace":
        """Start recording.  Returns self for chaining."""
        if self._installed:
            return self

        def traced_transmit(sender: SimNode, packet: Packet) -> None:
            self.entries.append(TraceEntry(
                time=self.network.engine.now(), src=sender.node_id,
                dst=packet.dst, port=packet.port,
                event=packet.event_cls.__name__,
                traffic_class=packet.traffic_class,
                size_bytes=packet.size_bytes))
            self._original_transmit(sender, packet)

        self.network.transmit = traced_transmit  # type: ignore[method-assign]
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Stop recording and restore the network."""
        if self._installed:
            self.network.transmit = self._original_transmit  # type: ignore[method-assign]
            self._installed = False

    def dump(self, limit: Optional[int] = None) -> str:
        """Render the newest ``limit`` entries (all when omitted)."""
        entries = list(self.entries)
        if limit is not None:
            entries = entries[-limit:]
        return "\n".join(entry.format() for entry in entries)

    def count(self, event: Optional[str] = None,
              src: Optional[str] = None) -> int:
        """Count recorded transmissions matching the given filters."""
        total = 0
        for entry in self.entries:
            if event is not None and entry.event != event:
                continue
            if src is not None and entry.src != src:
                continue
            total += 1
        return total
