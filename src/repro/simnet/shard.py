"""Sharded simulation — per-segment event loops under conservative lookahead.

The single :class:`~repro.simnet.engine.SimEngine` owns one timeline for
the whole world; that is the scale ceiling ROADMAP direction 1 names.
This module splits the world along a :class:`ShardPlan` — partition-
disjoint node groups, typically one per network segment or partition
component — and runs each group on its own engine, synchronized with the
classic conservative (null-message) discipline:

* **lookahead** is the minimum cross-shard link latency.  An event a
  shard executes at time ``t`` cannot affect another shard before
  ``t + lookahead``, so every shard may safely run the window
  ``[front, front + lookahead)`` before re-synchronizing.  Plans with no
  cross-shard links (disjoint segments, partition components) have
  infinite lookahead and synchronize only at control barriers.
* **control barriers** — scenario events, joiner arrivals, chat bursts —
  live on a *control engine*.  Windows run strictly below the next
  barrier instant; the barrier instant itself is **merge-fired**: the
  facade repeatedly pops the globally smallest ``(when, seq)`` entry
  across the control engine and every shard, so same-instant callbacks
  interleave exactly as on a single engine.
* **one sequence stream** — the control engine and every shard draw
  scheduling sequence numbers from one shared counter, making
  ``(when, seq)`` a *global* total order.  For single-group plans this
  reproduces the sequential engine's tie-breaking bit-for-bit (the
  sharded-vs-sequential parity gate); for multi-group plans results are
  shard-count-invariant and deterministic.
* **cross-shard packets** travel through :class:`CrossShardMailbox`.
  Packets on the wire already carry frozen ``WirePayload`` snapshots
  (the PR 7 copy-on-write path), so nothing alive crosses a shard
  boundary; the mailbox enforces causality (an arrival must not land in
  the destination shard's past — if it ever would, the lookahead bound
  was wrong and :class:`CausalityError` says so loudly) and counts the
  traffic that the crossover benchmark charges against the speedup.

:class:`ShardedSimEngine` presents the same ``now`` / ``call_later`` /
``call_at`` / ``pending`` / ``fired_count`` / ``run_until`` surface as
``SimEngine``, so ``ScenarioRunner(engine_factory=ShardedSimEngine)``
works unchanged — scenarios, invariant hooks, and the ``HeapSimEngine``
differential oracle (pass ``engine_factory=HeapSimEngine`` to build the
facade over reference heaps) all run as before.

True multi-core parallelism comes from
:mod:`repro.scenarios.sharded`, which runs disjoint segments in worker
processes; this facade is the in-process semantic model those runs are
checked against.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence

from .engine import ScheduledCall, SimEngine


class CausalityError(RuntimeError):
    """A cross-shard event would arrive in the destination shard's past.

    Raised by the mailbox when a posted arrival time precedes the
    destination engine's clock — the conservative discipline's invariant
    was violated, which means the plan's lookahead overstates the true
    minimum cross-shard latency.
    """


class ShardPlan:
    """Partition of the simulated node population into disjoint groups.

    ``groups`` are disjoint node-id sets; ``links`` are
    ``(group_a, group_b, min_latency_s)`` triples for every pair of
    groups that can exchange packets.  The smallest link latency is the
    conservative lookahead bound; no links means infinite lookahead
    (fully disjoint segments — the cross-segment-light case where
    sharding wins).
    """

    def __init__(self, groups: Iterable[Iterable[str]],
                 links: Iterable[tuple[int, int, float]] = (),
                 shard_count: int = 1) -> None:
        self.groups: tuple[frozenset[str], ...] = \
            tuple(frozenset(g) for g in groups)
        if not self.groups:
            raise ValueError("a shard plan needs at least one group")
        self.links = tuple((int(a), int(b), float(lat)) for a, b, lat in links)
        self.shard_count = max(1, int(shard_count))
        self._group_of: dict[str, int] = {}
        for index, nodes in enumerate(self.groups):
            for node_id in nodes:
                if node_id in self._group_of:
                    raise ValueError(
                        f"node {node_id!r} appears in more than one group")
                self._group_of[node_id] = index
        for a, b, lat in self.links:
            if not (0 <= a < len(self.groups) and 0 <= b < len(self.groups)):
                raise ValueError(f"link ({a}, {b}) names an unknown group")
            if a == b:
                raise ValueError(f"link ({a}, {b}) is not cross-group")
            if lat <= 0:
                raise ValueError(
                    f"cross-group latency must be positive, got {lat}")

    @property
    def lookahead(self) -> float:
        """Conservative window width: the smallest cross-group latency."""
        if not self.links:
            return math.inf
        return min(lat for _, _, lat in self.links)

    def group_of(self, node_id: str) -> int:
        """Group index hosting ``node_id``.

        A single-group plan is a catch-all — every node id maps to group
        0 even if it was never enumerated (so ``ShardedSimEngine()`` with
        the default plan accepts any scenario).  Multi-group plans are
        strict: an unplanned node is a partitioning bug.
        """
        try:
            return self._group_of[node_id]
        except KeyError:
            if len(self.groups) == 1:
                return 0
            raise KeyError(
                f"node {node_id!r} is not in any shard-plan group") from None

    def assignment(self) -> tuple[tuple[int, ...], ...]:
        """Round-robin hosting of groups onto ``shard_count`` workers."""
        shards: list[list[int]] = [[] for _ in range(self.shard_count)]
        for index in range(len(self.groups)):
            shards[index % self.shard_count].append(index)
        return tuple(tuple(s) for s in shards)

    @classmethod
    def single(cls) -> "ShardPlan":
        """The catch-all one-group plan (sequential-equivalent)."""
        return cls([()])

    @classmethod
    def from_network(cls, network, shard_count: int = 1) -> "ShardPlan":
        """Partition by the network's current partition components.

        Nodes inside a declared partition group form one shard group
        each; nodes outside every group are unreachable from everyone
        (the ``Network.reachable`` contract) and become singleton groups.
        Partitioned components cannot exchange packets, so the plan has
        no cross links and infinite lookahead.  An unpartitioned network
        collapses to the single catch-all group.
        """
        node_ids = list(network.nodes)
        partitions = getattr(network, "_partitions", None)
        if not partitions:
            return cls([node_ids], shard_count=shard_count)
        groups: list[set[str]] = []
        grouped: set[str] = set()
        for component in partitions:
            members = set(component) & set(node_ids)
            if members:
                groups.append(members)
                grouped.update(members)
        for node_id in node_ids:
            if node_id not in grouped:
                groups.append({node_id})
        return cls(groups, shard_count=shard_count)

    @classmethod
    def for_groups(cls, network, groups: Sequence[Iterable[str]],
                   shard_count: int = 1) -> "ShardPlan":
        """Explicit groups over a connected network, links measured.

        For every pair of groups that can reach each other, the minimum
        path latency (sum of per-hop link latencies, both directions) is
        recorded as the pair's link — so :attr:`lookahead` is the
        measured minimum cross-shard link latency the conservative
        discipline needs.
        """
        group_sets = [list(g) for g in groups]
        links: list[tuple[int, int, float]] = []
        for a in range(len(group_sets)):
            for b in range(a + 1, len(group_sets)):
                lat = _min_cross_latency(network, group_sets[a], group_sets[b])
                if lat is not None:
                    links.append((a, b, lat))
        return cls(group_sets, links, shard_count=shard_count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ",".join(str(len(g)) for g in self.groups)
        return (f"<ShardPlan groups=[{sizes}] links={len(self.links)} "
                f"lookahead={self.lookahead} shards={self.shard_count}>")


def _min_cross_latency(network, group_a: Sequence[str],
                       group_b: Sequence[str]) -> Optional[float]:
    """Minimum one-way path latency between any reachable cross pair."""
    best: Optional[float] = None
    for src_id, dst_id in _cross_pairs(group_a, group_b):
        src = network.nodes.get(src_id)
        dst = network.nodes.get(dst_id)
        if src is None or dst is None:
            continue
        if not network.reachable(src_id, dst_id):
            continue
        latency = sum(hop.latency_s for hop in network._hops_between(src, dst))
        if best is None or latency < best:
            best = latency
    return best


def _cross_pairs(group_a, group_b):
    for a in group_a:
        for b in group_b:
            yield a, b
            yield b, a


class CrossShardMailbox:
    """Causality guard + accounting for packets crossing shard boundaries.

    In-process shards share memory, so "posting" a packet is simply
    scheduling its delivery on the destination shard's engine — what
    crosses is the packet's frozen ``WirePayload`` snapshot, never live
    kernel state.  The mailbox's job is the conservative-discipline
    assertion (arrivals must land at or after the destination clock) and
    the traffic ledger the crossover benchmark reads: when cross-shard
    chatter grows, these counters are the measured cost that eats the
    parallel win.
    """

    def __init__(self) -> None:
        self.posted = 0
        self.bytes = 0
        self.by_pair: dict[tuple[int, int], int] = {}

    def post(self, src_group: int, dst_group: int, when: float,
             dst_now: float, size_bytes: int) -> None:
        if when < dst_now:
            raise CausalityError(
                f"cross-shard packet from group {src_group} arrives at "
                f"{when:.6f}s but group {dst_group} already reached "
                f"{dst_now:.6f}s — the plan's lookahead bound is wrong")
        self.posted += 1
        self.bytes += size_bytes
        pair = (src_group, dst_group)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + 1


class ShardedSimEngine:
    """Facade presenting N shard engines + a control engine as one clock.

    Drop-in for ``SimEngine`` where it matters to the scenario layer:
    ``now()``, ``call_later``, ``call_at``, ``reserve_seq``, ``pending``,
    ``fired_count``, ``run_until``, ``run_until_idle``.  Scheduling is
    routed to wherever the caller *stands*: a callback running inside a
    shard's window schedules onto that shard (local causality), anything
    scheduled from outside a run — scenario population, event schedules
    — lands on the control engine and defines the barrier instants.

    ``engine_factory`` builds the sub-engines, so the facade composes
    with the differential oracle: ``ShardedSimEngine`` over
    ``HeapSimEngine`` must be observably identical to the facade over
    timer wheels.
    """

    def __init__(self, plan: Optional[ShardPlan] = None,
                 shards: Optional[int] = None,
                 engine_factory: Callable[[], SimEngine] = SimEngine) -> None:
        self.plan = plan if plan is not None else ShardPlan.single()
        self.shards = shards if shards is not None else self.plan.shard_count
        self._control = engine_factory()
        # One shared sequence stream: (when, seq) totally orders entries
        # across every sub-engine, which is what makes barrier merges (and
        # single-group parity with the sequential engine) exact.
        self._seq = self._control._seq
        self._group_engines: list[SimEngine] = []
        for index in range(len(self.plan.groups)):
            engine = engine_factory()
            engine._seq = self._seq
            engine.shard_group = index
            self._group_engines.append(engine)
        self._control.shard_group = None
        self._all: tuple[SimEngine, ...] = (self._control,
                                            *self._group_engines)
        self._committed = 0.0
        self._active: Optional[SimEngine] = None
        self._merge_active = False
        self.mailbox = CrossShardMailbox()
        #: Diagnostics: conservative windows executed / barrier merges run.
        self.windows = 0
        self.barriers = 0

    # -- Clock surface ------------------------------------------------------

    def now(self) -> float:
        if self._active is not None:
            return self._active._now
        return self._committed

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> ScheduledCall:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        target = self._active if self._active is not None else self._control
        return target.call_at(target._now + delay, callback)

    def call_at(self, when: float,
                callback: Callable[[], None]) -> ScheduledCall:
        target = self._active if self._active is not None else self._control
        return target.call_at(when, callback)

    def reserve_seq(self) -> int:
        return next(self._seq)

    @property
    def pending(self) -> int:
        return sum(engine.pending for engine in self._all)

    @property
    def fired_count(self) -> int:
        return sum(engine.fired_count for engine in self._all)

    @property
    def overflow_scheduled(self) -> int:
        return sum(engine.overflow_scheduled for engine in self._all)

    # -- shard resolution ---------------------------------------------------

    def engine_for(self, node_id: str) -> SimEngine:
        """The shard engine hosting ``node_id``'s timers and deliveries."""
        return self._group_engines[self.plan.group_of(node_id)]

    def cross_post(self, src_engine: SimEngine, dst_engine: SimEngine,
                   when: float, size_bytes: int) -> None:
        """Record (and causality-check) a packet crossing shard bounds."""
        self.mailbox.post(src_engine.shard_group, dst_engine.shard_group,
                          when, dst_engine._now, size_bytes)

    def peek_for(self, engine: SimEngine) -> Optional[tuple[float, int]]:
        """Earliest visible ``(when, seq)`` relevant to ``engine``'s drain.

        Outside a barrier merge this is the engine's own peek (other
        shards' heads are unobservable — disjoint state — and the control
        engine holds nothing before the window bound by construction).
        During a merge every engine sits at the same instant, so the
        drain must yield to an earlier-``seq`` entry on *any* engine to
        reproduce the single-engine interleaving.
        """
        if not self._merge_active:
            return engine.peek_due()
        best: Optional[tuple[float, int]] = None
        for candidate in self._all:
            peeked = candidate.peek_due()
            if peeked is not None and (best is None or peeked < best):
                best = peeked
        return best

    # -- execution ----------------------------------------------------------

    def _run_window(self, engine: SimEngine, bound: float) -> int:
        self._active = engine
        try:
            fired = engine.run_window(bound)
        finally:
            self._active = None
        self.windows += 1
        return fired

    def _merge_instant(self, barrier: float) -> int:
        """Fire every entry due at exactly ``barrier``, in global order.

        Pops the smallest ``(when, seq)`` across the control engine and
        all shards until nothing at the barrier instant remains; fired
        callbacks may schedule more work at the same instant (zero-delay
        cascades), which the loop picks up on the next scan.
        """
        self.barriers += 1
        self._merge_active = True
        engines = self._all
        for engine in engines:
            engine._deadline = barrier
            # Every engine has run out its window below the barrier, so
            # committing the barrier instant to all clocks is safe — and
            # required: a control callback (scenario event, chat burst)
            # touches node kernels whose timers schedule against *their
            # shard's* clock, which must read the barrier time, not the
            # instant of the shard's last fired entry.
            engine.advance_clock(barrier)
        fired = 0
        try:
            while True:
                best_key = None
                best_engine = None
                best_entry = None
                for engine in engines:
                    entry = engine._advance()
                    if entry is None or entry.when > barrier:
                        continue
                    key = (entry.when, entry.seq)
                    if best_key is None or key < best_key:
                        best_key, best_engine, best_entry = key, engine, entry
                if best_engine is None:
                    break
                best_engine._pop_head()
                self._active = best_engine
                try:
                    best_engine._fire(best_entry)
                finally:
                    self._active = None
                fired += 1
        finally:
            self._merge_active = False
            for engine in engines:
                engine._deadline = math.inf
        return fired

    def run_until(self, deadline: float) -> int:
        """Run every callback due up to ``deadline``; time ends there.

        Alternates conservative windows (strictly below the next control
        barrier, chunked by the plan's lookahead when shards are linked)
        with barrier merges, until the deadline barrier itself has been
        merged.
        """
        before = self.fired_count
        lookahead = self.plan.lookahead
        chunked = len(self._group_engines) > 1 and lookahead < math.inf
        while True:
            head = self._control._advance()
            next_control = head.when if head is not None else math.inf
            barrier = min(next_control, deadline)
            if chunked:
                front = self._committed
                while front < barrier:
                    window = min(front + lookahead, barrier)
                    for engine in self._group_engines:
                        self._run_window(engine, window)
                    front = window
            else:
                for engine in self._group_engines:
                    self._run_window(engine, barrier)
            self._merge_instant(barrier)
            self._committed = max(self._committed, barrier)
            if barrier >= deadline:
                break
        for engine in self._all:
            engine._now = max(engine._now, deadline)
        self._committed = max(self._committed, deadline)
        return self.fired_count - before

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no callbacks remain anywhere.  Guards livelock."""
        fired = 0
        while True:
            next_when = math.inf
            for engine in self._all:
                entry = engine._advance()
                if entry is not None and entry.when < next_when:
                    next_when = entry.when
            if next_when is math.inf:
                break
            fired += self.run_until(next_when)
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; livelock?")
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedSimEngine groups={len(self._group_engines)} "
                f"shards={self.shards} t={self._committed:.6f}s "
                f"pending={self.pending}>")
