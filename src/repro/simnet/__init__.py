"""Deterministic discrete-event network simulator.

Substitutes for the paper's physical testbed (PCs on a LAN plus HP iPAQ
PDAs on 802.11b): fixed and mobile nodes, a wired segment bridged to a
wireless cell, per-node traffic counters (the Figure 3 instrument), loss
models, batteries, failure injection, and the bottom-of-stack transport
layer that connects Appia channels to simulated NICs.
"""

from repro.simnet.energy import Battery, EnergyParams
from repro.simnet.engine import HeapSimEngine, ScheduledCall, SimEngine
from repro.simnet.loss import (BernoulliLoss, GilbertElliottLoss, LossModel,
                               NoLoss)
from repro.simnet.network import (LinkParams, Network, TopologyChange,
                                  default_wired, default_wireless)
from repro.simnet.node import NodeKind, SimNode
from repro.kernel.packet import (CONTROL, DATA, PACKET_OVERHEAD_BYTES, Packet)
from repro.simnet.stats import NodeStats, aggregate
from repro.simnet.trace import PacketTrace, TraceEntry
from repro.simnet.transport import SimTransportLayer, SimTransportSession

__all__ = [
    "Battery", "EnergyParams",
    "HeapSimEngine", "ScheduledCall", "SimEngine",
    "BernoulliLoss", "GilbertElliottLoss", "LossModel", "NoLoss",
    "LinkParams", "Network", "TopologyChange", "default_wired",
    "default_wireless",
    "NodeKind", "SimNode",
    "CONTROL", "DATA", "PACKET_OVERHEAD_BYTES", "Packet",
    "NodeStats", "aggregate",
    "PacketTrace", "TraceEntry",
    "SimTransportLayer", "SimTransportSession",
]
