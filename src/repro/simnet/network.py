"""The simulated network: a wired LAN bridged to an 802.11-style cell.

Topology model (matching the paper's hybrid scenario, Figure 2(b)):

* **fixed** nodes sit on a wired LAN segment;
* **mobile** nodes sit in a wireless cell and reach everyone through the
  base station / access point, which bridges to the LAN;
* consequently a mobile→mobile packet crosses two wireless hops, a
  mobile→fixed packet one wireless and one wired hop, and fixed→fixed
  traffic stays on the wire.

Native multicast is available *within* a segment only (the premise of the
paper's Mecho design): the wired LAN may offer IP-multicast to fixed nodes,
and an all-mobile ad hoc cell may offer local broadcast.  There is no native
multicast spanning the access point, which is exactly why a hybrid group
benefits from relaying through a fixed node.

Failure injection: nodes can be crashed and the network can be partitioned
into isolated groups, which the failure-detector and membership tests use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.simnet.energy import Battery
from repro.simnet.engine import SimEngine
from repro.simnet.loss import LossModel, NoLoss
from repro.simnet.node import NodeKind, SimNode
from repro.simnet.packet import Packet
from repro.simnet.stats import NodeStats, aggregate


@dataclass
class LinkParams:
    """Characteristics of one link type (wired segment or wireless hop)."""

    latency_s: float = 0.0005
    bandwidth_bps: float = 100e6
    loss: LossModel = field(default_factory=NoLoss)

    def delay_for(self, size_bytes: int) -> float:
        """Propagation plus serialization delay for a packet."""
        return self.latency_s + (size_bytes * 8.0) / self.bandwidth_bps


def default_wired() -> LinkParams:
    """100 Mbit/s switched Ethernet."""
    return LinkParams(latency_s=0.0005, bandwidth_bps=100e6)


def default_wireless(loss: Optional[LossModel] = None) -> LinkParams:
    """11 Mbit/s 802.11b with optional loss model."""
    return LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                      loss=loss if loss is not None else NoLoss())


class Network:
    """Simulated hybrid network shared by every node of a run.

    Args:
        engine: the simulation engine (shared virtual clock).
        seed: seed for the network's private random source (loss draws made
            through models that take this RNG, jitter if enabled).
        wired: link parameters of the LAN segment.
        wireless: link parameters of one wireless hop.
        native_multicast_wired: whether fixed nodes may use IP-multicast on
            the LAN segment.
        wireless_broadcast: whether an all-mobile cell supports local
            broadcast (ad hoc mode).
    """

    def __init__(self, engine: SimEngine, seed: int = 0,
                 wired: Optional[LinkParams] = None,
                 wireless: Optional[LinkParams] = None,
                 native_multicast_wired: bool = False,
                 wireless_broadcast: bool = False) -> None:
        self.engine = engine
        self.rng = random.Random(seed)
        self.wired = wired if wired is not None else default_wired()
        self.wireless = wireless if wireless is not None else default_wireless()
        self.native_multicast_wired = native_multicast_wired
        self.wireless_broadcast = wireless_broadcast
        self.nodes: dict[str, SimNode] = {}
        self._partitions: Optional[list[set[str]]] = None
        #: Packets lost to link loss models.
        self.lost_packets = 0
        #: Packets delivered to a node's NIC.
        self.delivered_packets = 0

    # -- topology -----------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind,
                 battery: Optional[Battery] = None) -> SimNode:
        """Create and register a node.

        Mobile nodes get a default battery when none is supplied, so energy
        accounting is always meaningful.
        """
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        if kind is NodeKind.MOBILE and battery is None:
            battery = Battery()
        node = SimNode(node_id, kind, self, battery=battery)
        self.nodes[node_id] = node
        return node

    def add_fixed_node(self, node_id: str) -> SimNode:
        """Shorthand for a wired infrastructure host."""
        return self.add_node(node_id, NodeKind.FIXED)

    def add_mobile_node(self, node_id: str,
                        battery: Optional[Battery] = None) -> SimNode:
        """Shorthand for a battery-powered wireless device."""
        return self.add_node(node_id, NodeKind.MOBILE, battery=battery)

    def node(self, node_id: str) -> SimNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def node_ids(self) -> list[str]:
        """All node ids, sorted (deterministic iteration everywhere)."""
        return sorted(self.nodes)

    def fixed_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_fixed)

    def mobile_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_mobile)

    # -- failure injection ------------------------------------------------------

    def crash_node(self, node_id: str) -> None:
        """Silently stop a node: it neither sends nor receives anything."""
        self.nodes[node_id].crashed = True

    def recover_node(self, node_id: str) -> None:
        """Undo :meth:`crash_node`."""
        self.nodes[node_id].crashed = False

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network; only nodes in the same group communicate."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        """Remove any partition."""
        self._partitions = None

    def _reachable(self, src: str, dst: str) -> bool:
        if self._partitions is None:
            return True
        for group in self._partitions:
            if src in group:
                return dst in group
        return False

    # -- transmission -------------------------------------------------------------

    def transmit(self, sender: SimNode, packet: Packet) -> None:
        """Send ``packet`` from ``sender``: count it, charge energy, route it.

        A multicast packet (tuple destination) is *one* transmission —
        that is the whole point of native multicast — but it is only legal
        within a single segment (see module docstring); violations raise
        ``ValueError`` because they indicate a protocol configuration bug.
        """
        if not sender.alive:
            sender.stats.record_dropped()
            return
        packet.sent_at = self.engine.now()
        sender.stats.record_sent(packet)
        if sender.battery is not None:
            sender.battery.consume_tx(packet.size_bytes, self.engine.now())
        if packet.is_multicast:
            self._check_multicast_legal(sender, packet)
            for dst in packet.dst:
                if dst == sender.node_id:
                    continue
                self._route_one(sender, packet.copy_for(dst), dst)
        else:
            self._route_one(sender, packet, packet.dst)

    def _check_multicast_legal(self, sender: SimNode, packet: Packet) -> None:
        dst_nodes = [self.nodes[d] for d in packet.dst if d in self.nodes]
        all_fixed = sender.is_fixed and all(n.is_fixed for n in dst_nodes)
        all_mobile = sender.is_mobile and all(n.is_mobile for n in dst_nodes)
        if all_fixed and self.native_multicast_wired:
            return
        if all_mobile and self.wireless_broadcast:
            return
        raise ValueError(
            f"native multicast from {sender.node_id} to {packet.dst} is not "
            "available on this topology (no multicast across the base "
            "station; enable native_multicast_wired/wireless_broadcast for "
            "single-segment groups)")

    def _route_one(self, sender: SimNode, packet: Packet, dst_id: str) -> None:
        dst = self.nodes.get(dst_id)
        if dst is None:
            self.lost_packets += 1
            return
        if not self._reachable(sender.node_id, dst_id):
            self.lost_packets += 1
            return
        hops = self._hops_between(sender, dst)
        delay = 0.0
        for link in hops:
            if link.loss.is_lost(packet.size_bytes):
                self.lost_packets += 1
                return
            delay += link.delay_for(packet.size_bytes)
        packet.hops = len(hops)
        self.engine.call_later(delay, lambda: self._deliver(dst, packet))

    def _hops_between(self, src: SimNode, dst: SimNode) -> list[LinkParams]:
        if src.is_fixed and dst.is_fixed:
            return [self.wired]
        if src.is_fixed and dst.is_mobile:
            return [self.wired, self.wireless]
        if src.is_mobile and dst.is_fixed:
            return [self.wireless, self.wired]
        return [self.wireless, self.wireless]  # mobile→AP→mobile

    def _deliver(self, dst: SimNode, packet: Packet) -> None:
        if not dst.alive:
            dst.stats.record_dropped()
            return
        if not self._reachable(packet.src, dst.node_id):
            self.lost_packets += 1
            return
        self.delivered_packets += 1
        dst.stats.record_received(packet)
        if dst.battery is not None:
            dst.battery.consume_rx(packet.size_bytes, self.engine.now())
        dst._on_packet(packet)

    # -- reporting ---------------------------------------------------------------

    def stats_of(self, node_id: str) -> NodeStats:
        """Traffic counters of one node."""
        return self.nodes[node_id].stats

    def total_stats(self) -> dict:
        """Aggregated counters across all nodes."""
        return aggregate([node.stats for node in self.nodes.values()])

    def reset_stats(self) -> None:
        """Zero all node counters (between experiment phases)."""
        for node in self.nodes.values():
            node.stats.reset()
        self.lost_packets = 0
        self.delivered_packets = 0
