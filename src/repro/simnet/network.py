"""The simulated network: a wired LAN bridged to an 802.11-style cell.

Topology model (matching the paper's hybrid scenario, Figure 2(b)):

* **fixed** nodes sit on a wired LAN segment;
* **mobile** nodes sit in a wireless cell and reach everyone through the
  base station / access point, which bridges to the LAN;
* consequently a mobile→mobile packet crosses two wireless hops, a
  mobile→fixed packet one wireless and one wired hop, and fixed→fixed
  traffic stays on the wire.

Native multicast is available *within* a segment only (the premise of the
paper's Mecho design): the wired LAN may offer IP-multicast to fixed nodes,
and an all-mobile ad hoc cell may offer local broadcast.  There is no native
multicast spanning the access point, which is exactly why a hybrid group
benefits from relaying through a fixed node.

Failure injection: nodes can be crashed and the network can be partitioned
into isolated groups, which the failure-detector and membership tests use.

Runtime topology mutation: the topology is *not* fixed for a run's
lifetime.  Nodes can hand off between segments (:meth:`Network.move_node`),
join after t=0 (:meth:`Network.add_node` mid-run), depart permanently
(:meth:`Network.remove_node`), and either segment's loss model can be
swapped live (:meth:`Network.set_wireless_loss` /
:meth:`Network.set_wired_loss`).  Every mutation bumps
``Network.topology_epoch`` and notifies subscribed topology listeners with
a :class:`TopologyChange` — the hook the context layer uses for
event-driven (rather than purely periodic) adaptation.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.simnet.energy import Battery
from repro.simnet.engine import SLOT_WIDTH_S, ScheduledCall, SimEngine

#: Reciprocal of the engine slot width (multiply beats divide on hot paths).
_INV_SLOT_WIDTH = 1.0 / SLOT_WIDTH_S
from repro.simnet.loss import LossModel, NoLoss
from repro.simnet.node import NodeKind, SimNode
from repro.kernel.packet import Packet
from repro.simnet.stats import NodeStats, aggregate


@dataclass
class LinkParams:
    """Characteristics of one link type (wired segment or wireless hop)."""

    latency_s: float = 0.0005
    bandwidth_bps: float = 100e6
    loss: LossModel = field(default_factory=NoLoss)

    def delay_for(self, size_bytes: int) -> float:
        """Propagation plus serialization delay for a packet."""
        return self.latency_s + (size_bytes * 8.0) / self.bandwidth_bps


def default_wired() -> LinkParams:
    """100 Mbit/s switched Ethernet."""
    return LinkParams(latency_s=0.0005, bandwidth_bps=100e6)


def default_wireless(loss: Optional[LossModel] = None) -> LinkParams:
    """11 Mbit/s 802.11b with optional loss model."""
    return LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                      loss=loss if loss is not None else NoLoss())


@dataclass(frozen=True)
class TopologyChange:
    """One runtime mutation of the network, as seen by topology listeners.

    Attributes:
        kind: what changed — ``"join"``, ``"move"``, ``"remove"``,
            ``"crash"``, ``"recover"``, ``"loss"``, ``"partition"``,
            ``"heal"``.
        node_id: the affected node, or ``None`` for network-wide changes
            (loss swaps, partitions).
        detail: human-readable specifics (target segment, loss model, …).
        epoch: value of :attr:`Network.topology_epoch` after the change.
    """

    kind: str
    node_id: Optional[str]
    detail: str
    epoch: int

    def format(self) -> str:
        subject = self.node_id if self.node_id is not None else "*"
        return f"{self.kind} {subject} {self.detail}".rstrip()


TopologyListener = Callable[[TopologyChange], None]


class Network:
    """Simulated hybrid network shared by every node of a run.

    Args:
        engine: the simulation engine (shared virtual clock).
        seed: seed for the network's private random source (loss draws made
            through models that take this RNG, jitter if enabled).
        wired: link parameters of the LAN segment.
        wireless: link parameters of one wireless hop.
        native_multicast_wired: whether fixed nodes may use IP-multicast on
            the LAN segment.
        wireless_broadcast: whether an all-mobile cell supports local
            broadcast (ad hoc mode).
    """

    def __init__(self, engine: SimEngine, seed: int = 0,
                 wired: Optional[LinkParams] = None,
                 wireless: Optional[LinkParams] = None,
                 native_multicast_wired: bool = False,
                 wireless_broadcast: bool = False,
                 batched: bool = True) -> None:
        self.engine = engine
        self.rng = random.Random(seed)
        self.wired = wired if wired is not None else default_wired()
        self.wireless = wireless if wireless is not None else default_wireless()
        self.native_multicast_wired = native_multicast_wired
        self.wireless_broadcast = wireless_broadcast
        self.nodes: dict[str, SimNode] = {}
        #: Nodes that left for good (stats retained for reporting).
        self.departed: dict[str, SimNode] = {}
        self._partitions: Optional[list[set[str]]] = None
        #: Packets lost to link loss models, partitions, or dead receivers.
        self.lost_packets = 0
        #: Packets delivered to a node's NIC.
        self.delivered_packets = 0
        #: Bumped on every runtime topology mutation.
        self.topology_epoch = 0
        self._topology_listeners: list[TopologyListener] = []
        #: Same-slot delivery batching (see :class:`_DeliveryBatcher`).
        #: ``batched=False`` is the differential escape hatch: one engine
        #: event per delivery, the pre-batching behaviour, histories
        #: asserted byte-identical by the parity tests.
        self.batched = batched
        #: One delivery batcher per destination engine.  A plain engine
        #: run has exactly one; under a :class:`ShardedSimEngine` facade
        #: each shard drains its own deliveries on its own timeline.
        self._batchers: dict[int, _DeliveryBatcher] = {}
        #: Per-sender loss streams, resolved lazily from a segment's loss
        #: model via its ``spawn`` hook (see :mod:`repro.simnet.loss`):
        #: ``{model: {sender_id: stream}}``.  Per-sender streams make a
        #: node's loss draws independent of how *other* nodes' traffic
        #: interleaves — the property that lets disjoint shard groups (and
        #: worker-process runs) reproduce the combined run's histories.
        self._loss_streams: dict[LossModel, dict[str, LossModel]] = {}
        #: Set when :attr:`engine` is a sharded facade (duck-typed on the
        #: per-node engine resolver) — routing then resolves clocks per
        #: node and crosses shard bounds through the facade's mailbox.
        self._facade = engine if hasattr(engine, "engine_for") else None

    # -- topology -----------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind,
                 battery: Optional[Battery] = None) -> SimNode:
        """Create and register a node.

        Mobile nodes get a default battery when none is supplied, so energy
        accounting is always meaningful.
        """
        if node_id in self.nodes or node_id in self.departed:
            raise ValueError(f"duplicate node id {node_id!r}")
        if kind is NodeKind.MOBILE and battery is None:
            battery = Battery()
        node = SimNode(node_id, kind, self, battery=battery)
        self.nodes[node_id] = node
        self._notify("join", node_id, f"as {kind.value}")
        return node

    def add_fixed_node(self, node_id: str) -> SimNode:
        """Shorthand for a wired infrastructure host."""
        return self.add_node(node_id, NodeKind.FIXED)

    def add_mobile_node(self, node_id: str,
                        battery: Optional[Battery] = None) -> SimNode:
        """Shorthand for a battery-powered wireless device."""
        return self.add_node(node_id, NodeKind.MOBILE, battery=battery)

    def node(self, node_id: str) -> SimNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    # -- runtime topology mutation ------------------------------------------

    def subscribe_topology(self, listener: TopologyListener) -> None:
        """Register ``listener`` for :class:`TopologyChange` notifications.

        Listeners fire synchronously, in subscription order, from within
        the mutating call — deterministic, like everything else here.
        """
        self._topology_listeners.append(listener)

    def unsubscribe_topology(self, listener: TopologyListener) -> None:
        """Remove a previously subscribed listener (unknown ones ignored)."""
        if listener in self._topology_listeners:
            self._topology_listeners.remove(listener)

    def _notify(self, kind: str, node_id: Optional[str],
                detail: str = "") -> None:
        self.topology_epoch += 1
        change = TopologyChange(kind, node_id, detail, self.topology_epoch)
        for listener in list(self._topology_listeners):
            listener(change)

    def move_node(self, node_id: str, kind: NodeKind) -> SimNode:
        """Hand a node off to the other segment (FIXED ↔ MOBILE).

        Models a device leaving the office LAN for the wireless cell (or
        docking back): routing, native-multicast legality and every context
        retriever observe the new segment immediately.  A device moving to
        the wireless cell gets a default battery if it never had one; moving
        to the wire means mains power — the battery object is kept (its
        charge state survives a round trip) but stops draining and stops
        mattering for liveness while docked.
        """
        node = self.nodes[node_id]
        if node.kind is kind:
            return node
        node.kind = kind
        if kind is NodeKind.MOBILE and node.battery is None:
            node.battery = Battery()
        self._notify("move", node_id, f"to {kind.value}")
        return node

    def remove_node(self, node_id: str) -> None:
        """Permanently remove a node (graceful departure or decommission).

        The node stops sending and receiving; packets in flight towards it
        are lost.  Its traffic counters remain queryable through
        :meth:`stats_of` / :meth:`total_stats` so experiment accounting
        still covers its lifetime.
        """
        node = self.nodes.pop(node_id)
        node.crashed = True
        self.departed[node_id] = node
        self._notify("remove", node_id)

    def set_wireless_loss(self, loss: LossModel) -> None:
        """Swap the wireless cell's loss model live (interference onset,
        channel recovery, …)."""
        self.wireless.loss = loss
        self._notify("loss", None, f"wireless {loss!r}")

    def set_wired_loss(self, loss: LossModel) -> None:
        """Swap the LAN segment's loss model live."""
        self.wired.loss = loss
        self._notify("loss", None, f"wired {loss!r}")

    def node_ids(self) -> list[str]:
        """All node ids, sorted (deterministic iteration everywhere)."""
        return sorted(self.nodes)

    def fixed_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_fixed)

    def mobile_ids(self) -> list[str]:
        return sorted(node_id for node_id, node in self.nodes.items()
                      if node.is_mobile)

    # -- failure injection ------------------------------------------------------

    def crash_node(self, node_id: str) -> None:
        """Silently stop a node: it neither sends nor receives anything."""
        self.nodes[node_id].crashed = True
        self._notify("crash", node_id)

    def recover_node(self, node_id: str) -> None:
        """Undo :meth:`crash_node`."""
        self.nodes[node_id].crashed = False
        self._notify("recover", node_id)

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network; only nodes in the same group communicate."""
        self._partitions = [set(group) for group in groups]
        rendered = " | ".join(
            ",".join(sorted(group)) for group in self._partitions)
        self._notify("partition", None, rendered)

    def heal_partition(self) -> None:
        """Remove any partition."""
        self._partitions = None
        self._notify("heal", None)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether packets from ``src`` can currently reach ``dst``
        (partition topology only — loss and crash are separate)."""
        return self._reachable(src, dst)

    def _reachable(self, src: str, dst: str) -> bool:
        if self._partitions is None:
            return True
        for group in self._partitions:
            if src in group:
                return dst in group
        return False

    # -- transmission -------------------------------------------------------------

    def transmit(self, sender: SimNode, packet: Packet) -> None:
        """Send ``packet`` from ``sender``: count it, charge energy, route it.

        A multicast packet (tuple destination) is *one* transmission —
        that is the whole point of native multicast — but it is only legal
        within a single segment (see module docstring); violations raise
        ``ValueError`` because they indicate a protocol configuration bug.
        The per-receiver packets share the transmission's frozen message
        structurally (:meth:`Packet.copy_for` hands each receiver an O(1)
        copy-on-write handle), so fan-out cost is per-packet bookkeeping,
        not per-receiver message copies.
        """
        if not sender.alive:
            sender.stats.record_dropped()
            return
        packet.sent_at = self.engine.now()
        sender.stats.record_sent(packet)
        if sender.is_mobile and sender.battery is not None:
            sender.battery.consume_tx(packet.size_bytes, self.engine.now())
        if packet.is_multicast:
            self._check_multicast_legal(sender, packet)
            for dst in packet.dst:
                if dst == sender.node_id:
                    continue
                self._route_one(sender, packet.copy_for(dst), dst)
        else:
            self._route_one(sender, packet, packet.dst)

    def _check_multicast_legal(self, sender: SimNode, packet: Packet) -> None:
        receivers = [d for d in packet.dst if d != sender.node_id]
        if not receivers:
            raise ValueError(
                f"native multicast from {sender.node_id} has no receivers "
                f"(dst={packet.dst!r}); an empty fan-out is a protocol "
                "configuration bug")
        dst_nodes = [self.nodes[d] for d in packet.dst if d in self.nodes]
        all_fixed = sender.is_fixed and all(n.is_fixed for n in dst_nodes)
        all_mobile = sender.is_mobile and all(n.is_mobile for n in dst_nodes)
        if all_fixed and self.native_multicast_wired:
            return
        if all_mobile and self.wireless_broadcast:
            return
        raise ValueError(
            f"native multicast from {sender.node_id} to {packet.dst} is not "
            "available on this topology (no multicast across the base "
            "station; enable native_multicast_wired/wireless_broadcast for "
            "single-segment groups)")

    def clock_for(self, node_id: str) -> SimEngine:
        """The engine that owns ``node_id``'s timers and deliveries.

        On a plain engine this is the engine itself; under a sharded
        facade it is the shard hosting the node, so every node's kernel
        timers and inbound packets live on its own shard's timeline.
        """
        if self._facade is not None:
            return self._facade.engine_for(node_id)
        return self.engine

    def _sender_loss(self, model: LossModel, sender_id: str) -> LossModel:
        """Resolve ``sender_id``'s private draw stream of ``model``.

        Models without a ``spawn`` hook (or spawned without a seed base)
        keep the legacy single shared stream.
        """
        spawn = getattr(model, "spawn", None)
        if spawn is None:
            return model
        streams = self._loss_streams.get(model)
        if streams is None:
            streams = self._loss_streams[model] = {}
        stream = streams.get(sender_id)
        if stream is None:
            stream = streams[sender_id] = spawn(sender_id)
        return stream

    def _route_one(self, sender: SimNode, packet: Packet, dst_id: str) -> None:
        dst = self.nodes.get(dst_id)
        if dst is None:
            self.lost_packets += 1
            return
        if not self._reachable(sender.node_id, dst_id):
            self.lost_packets += 1
            return
        hops = self._hops_between(sender, dst)
        delay = 0.0
        sender_id = sender.node_id
        for link in hops:
            if self._sender_loss(link.loss, sender_id).is_lost(
                    packet.size_bytes):
                self.lost_packets += 1
                return
            delay += link.delay_for(packet.size_bytes)
        packet.hops = len(hops)
        when = self.engine.now() + delay
        dst_engine = self.clock_for(dst_id)
        if self._facade is not None:
            src_engine = self.clock_for(sender_id)
            if dst_engine is not src_engine:
                # Crossing a shard boundary: the packet's payload is the
                # frozen WirePayload snapshot the COW path produced, so
                # handing it to the peer shard is causality-checked
                # accounting, not a copy.
                self._facade.cross_post(src_engine, dst_engine, when,
                                        packet.size_bytes)
        if not self.batched:
            dst_engine.call_at(when, lambda: self._deliver(dst, packet))
            return
        # Batched path: queue the packet under the exact (when, seq) the
        # unbatched call_at would have used — reserving the seq keeps
        # every other callback's sequence number (and therefore the whole
        # run's history) bit-identical — and keep one flush entry parked
        # at the queue head's instant on the destination's engine.
        seq = self.engine.reserve_seq()
        self._batcher_for(dst_engine).enqueue(when, seq, dst, packet)

    def _batcher_for(self, engine: SimEngine) -> "_DeliveryBatcher":
        batcher = self._batchers.get(id(engine))
        if batcher is None:
            batcher = self._batchers[id(engine)] = \
                _DeliveryBatcher(self, engine)
        return batcher

    def _peek_for(self, engine: SimEngine) -> Optional[tuple[float, int]]:
        """Earliest visible engine entry a drain on ``engine`` must respect.

        Under a facade the barrier merge makes entries on *other* engines
        at the same instant visible too (see the facade's ``peek_for``).
        """
        if self._facade is not None:
            return self._facade.peek_for(engine)
        return engine.peek_due()

    def _hops_between(self, src: SimNode, dst: SimNode) -> list[LinkParams]:
        if src.is_fixed and dst.is_fixed:
            return [self.wired]
        if src.is_fixed and dst.is_mobile:
            return [self.wired, self.wireless]
        if src.is_mobile and dst.is_fixed:
            return [self.wireless, self.wired]
        return [self.wireless, self.wireless]  # mobile→AP→mobile

    def _deliver(self, dst: SimNode, packet: Packet) -> None:
        # Unified mid-flight drop accounting: whether the packet dies
        # because the destination crashed while it was in the air or
        # because a partition was declared under it, it is one network-level
        # loss (``lost_packets``) *and* one drop charged to the receiver
        # (``dropped_packets``) — the two failure modes are
        # indistinguishable to every other observer and must count alike.
        if not dst.alive or not self._reachable(packet.src, dst.node_id):
            self.lost_packets += 1
            dst.stats.record_dropped()
            return
        self.delivered_packets += 1
        dst.stats.record_received(packet)
        if dst.is_mobile and dst.battery is not None:
            dst.battery.consume_rx(packet.size_bytes, self.engine.now())
        dst._on_packet(packet)

    # -- reporting ---------------------------------------------------------------

    def stats_of(self, node_id: str) -> NodeStats:
        """Traffic counters of one node (departed nodes included)."""
        node = self.nodes.get(node_id)
        if node is None:
            node = self.departed[node_id]
        return node.stats

    def total_stats(self) -> dict:
        """Aggregated counters across all nodes, departed ones included."""
        everyone = list(self.nodes.values()) + list(self.departed.values())
        return aggregate([node.stats for node in everyone])

    def reset_stats(self) -> None:
        """Zero all node counters (between experiment phases)."""
        for node in list(self.nodes.values()) + list(self.departed.values()):
            node.stats.reset()
        self.lost_packets = 0
        self.delivered_packets = 0


class _DeliveryBatcher:
    """Same-slot delivery batching for one destination engine.

    One engine event drains a whole wheel slot of queued deliveries: the
    flush entry sits at the queue head's reserved ``(when, seq)``, so the
    engine fires it exactly where the unbatched per-packet callback would
    have fired.  The drain then keeps delivering queued packets as long as
    (a) the next one is due before this flush's slot ends — beyond that,
    wheel entries the peek cannot see could be owed first — (b) no visible
    engine entry outranks it, and (c) it does not cross the active
    ``run_until`` deadline (a *strictly-exclusive* bound during a shard's
    conservative window, so barrier-instant deliveries wait for the
    facade's merge).  Each delivery advances the virtual clock to its
    exact instant, so observers cannot tell batching from the per-event
    path (the differential tests assert byte-identical histories).
    """

    __slots__ = ("network", "engine", "pending", "_flush_call",
                 "_flush_key", "_in_flush")

    def __init__(self, network: Network, engine: SimEngine) -> None:
        self.network = network
        self.engine = engine
        #: In-flight packets awaiting delivery, ordered by ``(when, seq)``
        #: — the exact instant/rank an unbatched ``call_at`` would have
        #: fired them at (the seq is reserved from the engine's counter).
        self.pending: list[tuple[float, int, SimNode, Packet]] = []
        self._flush_call: Optional[ScheduledCall] = None
        self._flush_key: Optional[tuple[float, int]] = None
        self._in_flush = False

    def enqueue(self, when: float, seq: int, dst: SimNode,
                packet: Packet) -> None:
        heapq.heappush(self.pending, (when, seq, dst, packet))
        if not self._in_flush and \
                (self._flush_key is None or (when, seq) < self._flush_key):
            self._schedule_flush(when, seq)

    def _schedule_flush(self, when: float, seq: int) -> None:
        if self._flush_call is not None:
            self._flush_call.cancel()
        self._flush_key = (when, seq)
        self._flush_call = self.engine.schedule_at_seq(
            when, seq, self._flush_deliveries)

    def _flush_deliveries(self) -> None:
        self._flush_call = None
        flush_when = self._flush_key[0]
        self._flush_key = None
        engine = self.engine
        pending = self.pending
        deadline = engine.run_deadline
        exclusive = engine.deadline_exclusive
        slot_end = (int(flush_when * _INV_SLOT_WIDTH) + 1) * SLOT_WIDTH_S
        peek = self.network._peek_for
        advance_clock = engine.advance_clock
        deliver = self.network._deliver
        pop = heapq.heappop
        self._in_flush = True
        try:
            while pending:
                when, seq, dst, packet = pending[0]
                if when >= slot_end or when > deadline or \
                        (exclusive and when >= deadline):
                    break
                nxt = peek(engine)
                if nxt is not None and nxt < (when, seq):
                    break
                pop(pending)
                advance_clock(when)
                deliver(dst, packet)
        finally:
            self._in_flush = False
        if pending:
            head = pending[0]
            self._schedule_flush(head[0], head[1])
