"""Simulated devices: fixed hosts and mobile (battery-powered) devices.

The paper's testbed had *"fixed participants executed in PCs running either
Windows or Linux [and] mobile participants executed in HP iPaq 5550 PDAs
using a 802.11b wireless network"*.  A :class:`SimNode` models either kind:
it owns a protocol :class:`~repro.kernel.scheduler.Kernel` (clocked by the
shared simulation engine), a set of bound ports for packet demultiplexing,
per-NIC traffic counters, and — for mobile nodes — a battery.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.kernel.scheduler import Kernel
from repro.simnet.energy import Battery
from repro.kernel.packet import Packet
from repro.simnet.stats import NodeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import Network

PacketReceiver = Callable[[Packet], None]


class NodeKind(enum.Enum):
    """Device class, the primary context attribute of the paper's example."""

    FIXED = "fixed"
    MOBILE = "mobile"


class SimNode:
    """One device of the distributed system.

    Created through :meth:`repro.simnet.network.Network.add_node`; not
    intended to be constructed directly.

    Attributes:
        node_id: unique identifier (also the address used by transports).
        kind: :class:`NodeKind` — fixed infrastructure host or mobile device.
        kernel: the node's protocol kernel, clocked by the simulation engine.
        stats: NIC traffic counters.
        battery: energy reserve for mobile nodes; ``None`` for fixed hosts.
    """

    def __init__(self, node_id: str, kind: NodeKind, network: "Network",
                 battery: Optional[Battery] = None) -> None:
        self.node_id = node_id
        self.kind = kind
        self.network = network
        # Clocked by the engine that owns this node: the single run engine
        # on a plain network, the node's shard engine under a sharded
        # facade — so a shard's timers never leave its own timeline.
        self.kernel = Kernel(clock=network.clock_for(node_id), name=node_id)
        self.stats = NodeStats(node_id)
        self.battery = battery
        self.crashed = False
        self._ports: dict[str, PacketReceiver] = {}

    # -- classification ---------------------------------------------------------

    @property
    def is_fixed(self) -> bool:
        return self.kind is NodeKind.FIXED

    @property
    def is_mobile(self) -> bool:
        return self.kind is NodeKind.MOBILE

    @property
    def alive(self) -> bool:
        """False once crashed or (while on the wireless segment)
        battery-depleted.

        Battery state only gates liveness for mobile nodes: a device that
        handed off to the wired segment (see
        :meth:`~repro.simnet.network.Network.move_node`) is mains-powered,
        so a drained battery does not stop it.
        """
        if self.crashed:
            return False
        if self.is_mobile and self.battery is not None \
                and not self.battery.alive:
            return False
        return True

    # -- port demultiplexing ---------------------------------------------------

    def bind_port(self, port: str, receiver: PacketReceiver) -> None:
        """Register ``receiver`` for packets addressed to ``port``.

        Raises:
            ValueError: if the port is already bound (two channels with the
                same name on one node is a configuration bug).
        """
        if port in self._ports:
            raise ValueError(f"port {port!r} already bound on {self.node_id}")
        self._ports[port] = receiver

    def unbind_port(self, port: str) -> None:
        """Release ``port``; unknown ports are ignored."""
        self._ports.pop(port, None)

    @property
    def bound_ports(self) -> tuple[str, ...]:
        return tuple(sorted(self._ports))

    # -- I/O (network-internal entry points) -------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` through the simulated network."""
        self.network.transmit(self, packet)

    def _on_packet(self, packet: Packet) -> None:
        receiver = self._ports.get(packet.port)
        if receiver is None:
            self.stats.record_dropped()
            return
        receiver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.node_id} ({self.kind.value})>"
