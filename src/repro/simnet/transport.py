"""The bottom-of-stack transport layer bridging Appia channels to the NIC.

``SimTransportLayer`` plays the role of Appia's UDP transport: DOWN-travelling
:class:`~repro.kernel.events.SendableEvent` instances become packets on the
simulated network; arriving packets are reconstructed into correctly-typed
events and injected upwards.

One transport *session* is shared by every channel of a node (the paper's
control channel and data channels all reach the same NIC), using the
kernel's session-sharing mechanism: the session label ``"transport"`` in XML
descriptions binds each new channel to the node's existing session.

Addressing convention carried by ``SendableEvent.dest``:

* ``"node-id"`` — unicast;
* ``("a", "b", ...)`` — native multicast (one transmission), legal only
  within a segment (see :mod:`repro.simnet.network`).

Wire framing: the outgoing message is frozen with
:meth:`~repro.kernel.message.Message.wire_copy` (an O(1) copy-on-write
handle with mutable payloads snapshotted once per transmission), and the
logical sender travels in the packet's first-class ``logical_src`` field.
Earlier revisions smuggled the sender as a ``("__net_src__", src)``
pseudo-header pushed onto the message stack, which forced a header pop on
every delivery and a deep copy per receiver; the field form keeps the
message structure untouched end to end, so a native-multicast transmission
shares one frozen message across all receivers (each reconstructed event
gets its own O(1) handle via :meth:`Packet.copy_for`).  The byte charge of
the old pseudo-header is preserved by the packet's source-field accounting
(:data:`repro.simnet.packet.SRC_FIELD_OVERHEAD`), so Figure-2/Figure-3 era
counters are reproduced exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.channel import Channel
from repro.kernel.events import (ChannelClose, ChannelInit, Direction, Event,
                                 SendableEvent)
from repro.kernel.layer import Layer
from repro.kernel.registry import register_layer
from repro.kernel.session import Session
from repro.simnet.node import SimNode
from repro.simnet.packet import Packet


class SimTransportSession(Session):
    """Session state: the owning node plus the channels bound through it."""

    def __init__(self, layer: Layer, node: Optional[SimNode] = None) -> None:
        super().__init__(layer)
        self.node = node
        self._channel_by_port: dict[str, Channel] = {}

    def attach_node(self, node: SimNode) -> None:
        """Late-bind the owning node (used when built programmatically)."""
        self.node = node

    # -- event handling ------------------------------------------------------

    def handle(self, event: Event) -> None:
        if isinstance(event, ChannelInit):
            self._on_init(event)
            event.go()
        elif isinstance(event, ChannelClose):
            self._on_close(event)
            event.go()
        elif isinstance(event, SendableEvent) and event.direction is Direction.DOWN:
            self._send(event)
        else:
            event.go()

    def _on_init(self, event: Event) -> None:
        channel = event.channel
        assert channel is not None
        if self.node is None:
            raise RuntimeError(
                "SimTransportSession has no node attached; build the session "
                "through the node facade (or call attach_node)")
        port = channel.name
        self._channel_by_port[port] = channel
        channel.local_address = self.node.node_id
        self.node.bind_port(port, self._incoming)

    def _on_close(self, event: Event) -> None:
        channel = event.channel
        assert channel is not None
        port = channel.name
        if self._channel_by_port.get(port) is channel:
            del self._channel_by_port[port]
            if self.node is not None:
                self.node.unbind_port(port)

    # -- outbound ---------------------------------------------------------------

    def _send(self, event: SendableEvent) -> None:
        assert self.node is not None and event.channel is not None
        if event.dest is None:
            raise ValueError(f"outgoing {event!r} has no destination")
        # The logical source may differ from the transmitting node when a
        # relay forwards on behalf of a sender; it rides the packet field,
        # not the header stack.
        source = event.source if event.source is not None else self.node.node_id
        packet = Packet(src=self.node.node_id, dst=event.dest,
                        port=event.channel.name, event_cls=type(event),
                        message=event.message.wire_copy(),
                        logical_src=source,
                        traffic_class=event.traffic_class)
        self.node.send(packet)

    # -- inbound ----------------------------------------------------------------

    def _incoming(self, packet: Packet) -> None:
        channel = self._channel_by_port.get(packet.port)
        if channel is None:  # pragma: no cover - unbound race, defensive
            return
        # The packet owns its message handle (unicast: frozen at _send;
        # multicast: a per-receiver handle from copy_for), so the event can
        # adopt it directly — zero message copies on the delivery path.
        event = packet.event_cls(message=packet.message,
                                 source=packet.logical_src, dest=packet.dst)
        self.send_up(event, channel=channel)


@register_layer
class SimTransportLayer(Layer):
    """Bottom layer: talks to the node's simulated NIC."""

    layer_name = "sim_transport"
    accepted_events = (SendableEvent,)
    provided_events = (SendableEvent,)
    session_class = SimTransportSession
