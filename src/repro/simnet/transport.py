"""The bottom-of-stack transport layer, bound to the simulated network.

The send/receive logic is backend-neutral and lives in
:mod:`repro.kernel.transport` (:class:`DatagramTransportSession`); this
module contributes only the registered layer descriptor.  Its historical
XML name ``"sim_transport"`` is kept for every checked-in template and
recorded stack history — the descriptor itself is stateless and shared by
the live backend too, because the transport *session* is preset through
the ``"transport"`` binding label and carries the actual endpoint
(a :class:`~repro.simnet.node.SimNode` here, a
:class:`~repro.livenet.node.LiveNode` under :mod:`repro.livenet`).
"""

from __future__ import annotations

from repro.kernel.registry import register_layer
from repro.kernel.transport import (DatagramTransportLayer,
                                    DatagramTransportSession)

#: Alias kept for the public simnet API: the session class is the generic
#: kernel one (it drives any :class:`~repro.kernel.transport
#: .TransportEndpoint`, simulated or live).
SimTransportSession = DatagramTransportSession


@register_layer
class SimTransportLayer(DatagramTransportLayer):
    """Registered transport descriptor (XML name ``"sim_transport"``)."""

    layer_name = "sim_transport"
    session_class = SimTransportSession
