"""Per-node and network-wide traffic counters.

These counters are the measurement instrument of the reproduction: the
paper's Figure 3 is literally ``mobile_node.stats.sent_total`` after a chat
run.  Counters are broken down by traffic class (data/control) and by the
event type that generated the packet, which powers the control-overhead
ablation (footnote 1 of the paper).

Byte accounting rides ``Packet.size_bytes``, which is computed **once per
transmission** from the message's incrementally-maintained size (see
:mod:`repro.kernel.message`) plus framing overheads, and shared by every
per-receiver packet of a multicast — recording a packet here never walks
the header stack.  The charges are unchanged from the seed-era recursive
accounting (the wire-framing rework keeps the old pseudo-header's byte
cost as ``SRC_FIELD_OVERHEAD``), so historical Figure-2/Figure-3 numbers
reproduce exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.packet import CONTROL, DATA, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import Network


@dataclass
class NodeStats:
    """Traffic counters for one node's network interface."""

    node_id: str
    sent_packets: Counter = field(default_factory=Counter)
    sent_bytes: Counter = field(default_factory=Counter)
    sent_wire_bytes: Counter = field(default_factory=Counter)
    recv_packets: Counter = field(default_factory=Counter)
    recv_bytes: Counter = field(default_factory=Counter)
    recv_wire_bytes: Counter = field(default_factory=Counter)
    sent_by_event: Counter = field(default_factory=Counter)
    recv_by_event: Counter = field(default_factory=Counter)
    dropped_packets: int = 0

    # -- recording (called by the network) -----------------------------------

    def record_sent(self, packet: Packet) -> None:
        self.sent_packets[packet.traffic_class] += 1
        self.sent_bytes[packet.traffic_class] += packet.size_bytes
        self.sent_wire_bytes[packet.traffic_class] += packet.wire_bytes
        self.sent_by_event[packet.event_cls.__name__] += 1

    def record_received(self, packet: Packet) -> None:
        self.recv_packets[packet.traffic_class] += 1
        self.recv_bytes[packet.traffic_class] += packet.size_bytes
        self.recv_wire_bytes[packet.traffic_class] += packet.wire_bytes
        self.recv_by_event[packet.event_cls.__name__] += 1

    def record_dropped(self) -> None:
        self.dropped_packets += 1

    # -- reading -----------------------------------------------------------------

    @property
    def sent_total(self) -> int:
        """All messages transmitted — data *and* control (Figure 3 metric)."""
        return sum(self.sent_packets.values())

    @property
    def sent_data(self) -> int:
        return self.sent_packets[DATA]

    @property
    def sent_control(self) -> int:
        return self.sent_packets[CONTROL]

    @property
    def recv_total(self) -> int:
        return sum(self.recv_packets.values())

    @property
    def sent_bytes_total(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def sent_wire_bytes_total(self) -> int:
        """Compact-codec bytes actually sent (vs the legacy charge)."""
        return sum(self.sent_wire_bytes.values())

    def snapshot(self) -> dict:
        """A plain-dict summary, convenient for experiment reports."""
        return {
            "node": self.node_id,
            "sent_total": self.sent_total,
            "sent_data": self.sent_data,
            "sent_control": self.sent_control,
            "sent_bytes": self.sent_bytes_total,
            "sent_wire_bytes": self.sent_wire_bytes_total,
            "recv_total": self.recv_total,
            "dropped": self.dropped_packets,
            "sent_by_event": dict(self.sent_by_event),
        }

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.sent_packets.clear()
        self.sent_bytes.clear()
        self.sent_wire_bytes.clear()
        self.recv_packets.clear()
        self.recv_bytes.clear()
        self.recv_wire_bytes.clear()
        self.sent_by_event.clear()
        self.recv_by_event.clear()
        self.dropped_packets = 0


def aggregate(stats: list[NodeStats]) -> dict:
    """Network-wide totals across ``stats``."""
    total = {
        "sent_total": 0, "sent_data": 0, "sent_control": 0,
        "recv_total": 0, "sent_bytes": 0, "sent_wire_bytes": 0,
        "dropped": 0,
    }
    for node_stats in stats:
        total["sent_total"] += node_stats.sent_total
        total["sent_data"] += node_stats.sent_data
        total["sent_control"] += node_stats.sent_control
        total["recv_total"] += node_stats.recv_total
        total["sent_bytes"] += node_stats.sent_bytes_total
        total["sent_wire_bytes"] += node_stats.sent_wire_bytes_total
        total["dropped"] += node_stats.dropped_packets
    return total
