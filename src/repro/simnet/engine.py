"""Discrete-event simulation engine.

One :class:`SimEngine` drives a whole distributed run: it owns virtual time,
a priority queue of scheduled callbacks, and implements the kernel
:class:`~repro.kernel.clock.Clock` protocol so every node's protocol timers
and every in-flight packet share a single, deterministic timeline.

Determinism contract: callbacks scheduled for the same instant fire in
scheduling order, and nothing in the engine (or in any protocol built on it)
reads the wall clock or unseeded randomness.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "seq", "callback", "cancelled", "_engine")

    def __init__(self, when: float, seq: int, callback: Callable[[], None],
                 engine: Optional["SimEngine"] = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                # Still pending: uncount it.  A cancel after the entry
                # fired (the engine detached itself) is a no-op.
                self._engine._live -= 1
                self._engine = None

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class SimEngine:
    """Virtual clock plus event queue for a simulation run.

    Implements the kernel ``Clock`` protocol (:meth:`now` /
    :meth:`call_later`), so it is passed directly as the ``clock`` of every
    node's :class:`~repro.kernel.scheduler.Kernel`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[ScheduledCall] = []
        self._seq = itertools.count()
        #: Total callbacks executed; exposed for benchmarks and debugging.
        self.fired_count = 0
        #: Scheduled, not-yet-cancelled, not-yet-fired entries.  Maintained
        #: on push/fire/cancel so :attr:`pending` is O(1) — scenario
        #: runners poll it for progress checks, which used to scan the
        #: whole heap each call.
        self._live = 0

    # -- Clock protocol -----------------------------------------------------

    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def call_at(self, when: float,
                callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        entry = ScheduledCall(when, next(self._seq), callback, engine=self)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue  # already uncounted at cancel time
            self._now = max(self._now, entry.when)
            self._live -= 1
            entry._engine = None  # fired: late cancels must not uncount
            entry.callback()
            self.fired_count += 1
            return True
        return False

    def run_until(self, deadline: float) -> int:
        """Run every callback due up to ``deadline``; time ends at deadline."""
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.when > deadline:
                break
            self.step()
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no callbacks remain.  Guards against livelock."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; livelock?")
        return fired

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled callbacks — O(1)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimEngine t={self._now:.6f}s pending={self.pending}>"
