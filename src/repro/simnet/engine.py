"""Discrete-event simulation engine — bucketed timer wheel with heap overflow.

One :class:`SimEngine` drives a whole distributed run: it owns virtual time,
the scheduled-callback queue, and implements the kernel
:class:`~repro.kernel.clock.Clock` protocol so every node's protocol timers
and every in-flight packet share a single, deterministic timeline.

Scheduling structure (the dispatch-loop optimisation the ROADMAP's
"batch timer wheels or slot-based gap scans" item asks for):

* **wheel** — near-future entries land in one of :data:`WHEEL_SLOTS` bucket
  lists of :data:`SLOT_WIDTH_S` seconds each, an O(1) append.  Expiry
  drains a whole slot at once: the bucket is heapified and fired in exact
  ``(when, seq)`` order, so batching is invisible to the semantics.
* **overflow heap** — entries beyond the wheel horizon (a few seconds; the
  long tail: suspect timeouts, probe back-off one-shots) fall back to a
  binary heap and are promoted when the wheel cursor reaches their slot.
* **cancellation** is lazy and O(1) everywhere: a cancelled entry is
  flagged, uncounted, and discarded whenever its bucket is drained.

Determinism contract (unchanged from the heap era, and checked by the
differential tests against :class:`HeapSimEngine`): callbacks scheduled for
the same instant fire in scheduling order, callbacks for different instants
fire in time order, and nothing in the engine (or in any protocol built on
it) reads the wall clock or unseeded randomness.

:class:`HeapSimEngine` is the seed-era single-binary-heap scheduler, kept
as the reference implementation: the timer-wheel benchmark runs whole
scenarios on both engines and asserts bit-identical results
(``benchmarks/bench_timer_wheel.py``), and the engine test suite drives
random schedules through both and compares firing orders.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

#: Width of one wheel slot, in virtual seconds.  A power-of-two reciprocal
#: keeps ``when / width`` exact for the binary-friendly delays protocols
#: use (0.25 s NACK scans, 0.5 s retries, millisecond link latencies).
SLOT_WIDTH_S = 1.0 / 64.0

#: Number of slots; horizon = ``WHEEL_SLOTS * SLOT_WIDTH_S`` = 8 s.  Within
#: the horizon scheduling is an O(1) list append; beyond it entries take
#: the overflow heap (heartbeats at 5 s+ margins, probe back-off, scenario
#: schedules).
WHEEL_SLOTS = 512

#: Slot of virtual time ``t`` is ``int(t * _INV_SLOT_WIDTH)`` — a multiply
#: (exact for the power-of-two width) instead of a division on the hot path.
_INV_SLOT_WIDTH = 1.0 / SLOT_WIDTH_S


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "seq", "callback", "cancelled", "_engine")

    def __init__(self, when: float, seq: int, callback: Callable[[], None],
                 engine: Optional["SimEngine"] = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent, O(1)).

        The entry is only flagged: it stays in its bucket (or heap) until
        the drain naturally discards it — no search, no re-heapify.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                # Still pending: uncount it.  A cancel after the entry
                # fired (the engine detached itself) is a no-op.
                self._engine._live -= 1
                self._engine = None

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class SimEngine:
    """Virtual clock plus timer-wheel event queue for a simulation run.

    Implements the kernel ``Clock`` protocol (:meth:`now` /
    :meth:`call_later`), so it is passed directly as the ``clock`` of every
    node's :class:`~repro.kernel.scheduler.Kernel`.
    """

    def __init__(self) -> None:
        self._init_clock_state()
        # Wheel state.  ``_cursor`` is the absolute (monotonic, unwrapped)
        # index of the slot currently being drained; bucket ``s`` lives at
        # ``_wheel[s % WHEEL_SLOTS]``.  The single-revolution invariant —
        # every entry in the wheel has ``_cursor < slot <= _cursor +
        # WHEEL_SLOTS`` — guarantees a bucket never mixes revolutions.
        self._wheel: list[list[ScheduledCall]] = \
            [[] for _ in range(WHEEL_SLOTS)]
        self._cursor = 0
        #: Entries sitting in wheel buckets (cancelled ones included until
        #: their bucket is drained); lets refill skip the slot scan when
        #: the wheel is empty.
        self._wheel_count = 0
        # The ordered structures hold ``(when, seq, entry)`` triples:
        # comparisons stay on the C tuple path ((when, seq) is unique, so
        # the entry itself is never compared), which is what keeps the
        # per-slot heapify cheaper than the reference heap's per-event
        # Python ``__lt__`` calls.
        #: Current slot's due entries, ordered by ``(when, seq)``.
        self._batch: list[tuple[float, int, ScheduledCall]] = []
        #: Far-future entries, ordered by ``(when, seq)``.
        self._overflow: list[tuple[float, int, ScheduledCall]] = []
        #: Entries that went to the overflow heap (diagnostics/benchmarks).
        self.overflow_scheduled = 0

    def _init_clock_state(self) -> None:
        """State shared with the reference scheduler (clock + counters)."""
        self._now = 0.0
        self._seq = itertools.count()
        #: Total callbacks executed; exposed for benchmarks and debugging.
        self.fired_count = 0
        #: Scheduled, not-yet-cancelled, not-yet-fired entries.  Maintained
        #: on push/fire/cancel so :attr:`pending` is O(1) — scenario
        #: runners poll it for progress checks.
        self._live = 0
        #: Deadline of the active :meth:`run_until`, ``inf`` outside one.
        #: External batchers (the network's same-slot delivery drain) must
        #: not advance work past it — see :attr:`run_deadline`.
        self._deadline = math.inf
        #: When True, :attr:`run_deadline` is an *exclusive* bound: work at
        #: exactly the deadline instant must not run.  Set by
        #: :meth:`run_window` — a sharded engine's conservative window ends
        #: strictly before its bound so the facade can merge-fire the
        #: boundary instant across shards in global ``(when, seq)`` order.
        self.deadline_exclusive = False

    # -- Clock protocol -----------------------------------------------------

    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def call_at(self, when: float,
                callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule_at_seq(when, next(self._seq), callback)

    def reserve_seq(self) -> int:
        """Consume and return the next scheduling sequence number.

        The delivery batcher reserves a seq per queued packet at routing
        time — exactly where the unbatched path's ``call_later`` would have
        consumed it — so the seq stream every *other* callback observes is
        bit-identical with batching on or off, and the reserved ``(when,
        seq)`` pair totally orders the queued packet against engine entries.
        """
        return next(self._seq)

    def schedule_at_seq(self, when: float, seq: int,
                        callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` at ``when`` under a reserved ``seq``.

        Unlike :meth:`call_at` this consumes no new sequence number: the
        entry fires exactly where a callback scheduled when ``seq`` was
        reserved would have fired.  Used to place the batcher's flush at
        its queue head's ``(when, seq)`` without perturbing the seq stream.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        entry = ScheduledCall(when, seq, callback, engine=self)
        slot = int(when * _INV_SLOT_WIDTH)
        if slot <= self._cursor:
            # Due within the slot being drained (or earlier — the cursor
            # may sit ahead of ``now`` right after a refill or a
            # ``run_until`` deadline): join the current batch directly.
            heapq.heappush(self._batch, (when, seq, entry))
        elif slot - self._cursor <= WHEEL_SLOTS:
            self._wheel[slot % WHEEL_SLOTS].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (when, seq, entry))
            self.overflow_scheduled += 1
        self._live += 1
        return entry

    def peek_due(self) -> Optional[tuple[float, int]]:
        """``(when, seq)`` of the earliest *visible* live entry, else None.

        "Visible" means cheaply reachable without disturbing the wheel: the
        current slot's batch.  ``None`` guarantees every remaining entry
        lies at or beyond the current slot's end — the contract the
        delivery batcher needs (it never drains past its own slot), NOT a
        claim that the engine is idle.  O(1) amortized.
        """
        batch = self._batch
        while batch:
            when, seq, entry = batch[0]
            if entry.cancelled:
                heapq.heappop(batch)
                continue
            return (when, seq)
        return None

    def advance_clock(self, when: float) -> None:
        """Advance virtual time to ``when`` (never backwards).

        For external batchers running work the engine itself did not fire:
        the drained callback must observe the instant it was scheduled for.
        Callers are responsible for only advancing to instants no earlier
        than every remaining scheduled entry they could overtake.
        """
        if when > self._now:
            self._now = when

    @property
    def run_deadline(self) -> float:
        """Deadline of the active :meth:`run_until` (``inf`` outside one)."""
        return self._deadline

    # -- wheel internals ------------------------------------------------------

    def _advance(self) -> Optional[ScheduledCall]:
        """Return the earliest live entry, arranging ``_batch`` so that the
        entry is its head; ``None`` when nothing is scheduled."""
        while True:
            batch = self._batch
            while batch:
                entry = batch[0][2]
                if entry.cancelled:
                    heapq.heappop(batch)
                    continue
                return entry
            if not self._refill():
                return None

    def _refill(self) -> bool:
        """Advance the cursor to the next occupied slot and load its batch.

        The next slot is the earlier of the wheel's next non-empty bucket
        and the overflow head's slot; overflow entries due in that slot are
        promoted into the batch, preserving exact ``(when, seq)`` order.
        """
        wheel_slot = None
        if self._wheel_count:
            # Single-revolution invariant: the next occupied bucket is at
            # most WHEEL_SLOTS ahead, so this scan terminates (and in the
            # dense schedules of a live run it terminates immediately).
            wheel = self._wheel
            slot = self._cursor + 1
            while not wheel[slot % WHEEL_SLOTS]:
                slot += 1
            wheel_slot = slot
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            heapq.heappop(overflow)
        overflow_slot = int(overflow[0][0] * _INV_SLOT_WIDTH) if overflow \
            else None
        if wheel_slot is None and overflow_slot is None:
            return False
        if overflow_slot is not None and \
                (wheel_slot is None or overflow_slot < wheel_slot):
            cursor = overflow_slot
        else:
            cursor = wheel_slot
        self._cursor = cursor
        batch = self._batch
        bucket = self._wheel[cursor % WHEEL_SLOTS] if wheel_slot == cursor \
            else None
        if bucket:
            self._wheel[cursor % WHEEL_SLOTS] = []
            self._wheel_count -= len(bucket)
            if batch:
                for entry in bucket:
                    if not entry.cancelled:
                        heapq.heappush(batch, (entry.when, entry.seq, entry))
            else:
                # Batch-fire path: heapify the whole slot in one go.
                batch.extend((entry.when, entry.seq, entry)
                             for entry in bucket if not entry.cancelled)
                heapq.heapify(batch)
        # Promote overflow entries that belong to (or before) this slot.
        slot_end = (cursor + 1) * SLOT_WIDTH_S
        while overflow and overflow[0][0] < slot_end:
            item = heapq.heappop(overflow)
            if not item[2].cancelled:
                heapq.heappush(batch, item)
        return True

    def _scan_live(self) -> list[ScheduledCall]:
        """Every live (scheduled, uncancelled) entry — O(n) debugging aid;
        the exactness tests compare its length against :attr:`pending`."""
        entries = [item[2] for item in self._batch if not item[2].cancelled]
        for bucket in self._wheel:
            entries.extend(e for e in bucket if not e.cancelled)
        entries.extend(item[2] for item in self._overflow
                       if not item[2].cancelled)
        return entries

    # -- execution ------------------------------------------------------------

    def _pop_head(self) -> None:
        """Discard the head entry that :meth:`_advance` just arranged.

        Engine-structure-specific (batch vs single heap); having it as a
        primitive lets :meth:`run_window` and the sharded facade's
        merge-fire loop stay structure-agnostic.
        """
        heapq.heappop(self._batch)

    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False when idle."""
        entry = self._advance()
        if entry is None:
            return False
        self._pop_head()
        self._fire(entry)
        return True

    def _fire(self, entry: ScheduledCall) -> None:
        self._now = max(self._now, entry.when)
        self._live -= 1
        entry._engine = None  # fired: late cancels must not uncount
        entry.callback()
        self.fired_count += 1

    def run_until(self, deadline: float) -> int:
        """Run every callback due up to ``deadline``; time ends at deadline."""
        fired = 0
        self._deadline = deadline
        try:
            while True:
                entry = self._advance()
                if entry is None or entry.when > deadline:
                    break
                heapq.heappop(self._batch)
                self._fire(entry)
                fired += 1
        finally:
            self._deadline = math.inf
        self._now = max(self._now, deadline)
        return fired

    def run_window(self, bound: float) -> int:
        """Run every callback due *strictly before* ``bound``.

        The conservative-sync primitive: a shard granted the window
        ``[now, bound)`` by the facade's lookahead discipline may fire
        everything below the bound, but entries at exactly ``bound`` belong
        to the barrier instant and are merge-fired across shards in global
        ``(when, seq)`` order by the facade.  Unlike :meth:`run_until` this
        does **not** advance the clock to the bound — the facade commits
        time only once every shard has crossed the barrier.
        """
        fired = 0
        self._deadline = bound
        self.deadline_exclusive = True
        try:
            while True:
                entry = self._advance()
                if entry is None or entry.when >= bound:
                    break
                self._pop_head()
                self._fire(entry)
                fired += 1
        finally:
            self._deadline = math.inf
            self.deadline_exclusive = False
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no callbacks remain.  Guards against livelock."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; livelock?")
        return fired

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled callbacks — O(1)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} t={self._now:.6f}s pending={self.pending}>"


class HeapSimEngine(SimEngine):
    """The seed-era scheduler: one binary heap, popped an entry at a time.

    Kept as the reference implementation for differential testing and for
    before/after benchmarking — it must stay observably identical to
    :class:`SimEngine` (same firing order, same ``pending`` accounting)
    while paying O(log n) per operation instead of the wheel's amortized
    O(1) schedule and batched slot expiry.
    """

    def __init__(self) -> None:
        # Deliberately not super().__init__(): the wheel structures would
        # be dead weight here — every method that touches them is
        # overridden to use the single heap.
        self._init_clock_state()
        self._heap: list[ScheduledCall] = []
        self.overflow_scheduled = 0  # structurally always zero on a heap

    def call_at(self, when: float,
                callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule_at_seq(when, next(self._seq), callback)

    def schedule_at_seq(self, when: float, seq: int,
                        callback: Callable[[], None]) -> ScheduledCall:
        """Schedule under a reserved ``seq`` (see :class:`SimEngine`)."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        entry = ScheduledCall(when, seq, callback, engine=self)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def peek_due(self) -> Optional[tuple[float, int]]:
        """``(when, seq)`` of the globally earliest live entry, else None.

        The heap sees everything, so this is strictly more informative than
        the wheel's batch-only peek — but the delivery batcher bounds its
        drain by its own slot's end, and everything the wheel's peek hides
        lies at or beyond that bound, so both engines reach identical
        batching decisions (asserted by the differential tests).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            return (head.when, head.seq)
        return None

    def _advance(self) -> Optional[ScheduledCall]:
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            return head
        return None

    def _pop_head(self) -> None:
        heapq.heappop(self._heap)

    def step(self) -> bool:
        entry = self._advance()
        if entry is None:
            return False
        self._pop_head()
        self._fire(entry)
        return True

    def run_until(self, deadline: float) -> int:
        fired = 0
        self._deadline = deadline
        try:
            while True:
                entry = self._advance()
                if entry is None or entry.when > deadline:
                    break
                self._pop_head()
                self._fire(entry)
                fired += 1
        finally:
            self._deadline = math.inf
        self._now = max(self._now, deadline)
        return fired

    def _scan_live(self) -> list[ScheduledCall]:
        return [e for e in self._heap if not e.cancelled]
