"""Compatibility shim: :class:`Packet` moved to :mod:`repro.kernel.packet`.

The packet type is transport-neutral (the asyncio UDP backend of
:mod:`repro.livenet` serializes the same record the simulator schedules),
so it lives with the kernel now.  Everything historically importable from
here re-exports unchanged.
"""

from repro.kernel.packet import (CONTROL, DATA, PACKET_OVERHEAD_BYTES,
                                 SRC_FIELD_OVERHEAD, Packet)

__all__ = ["CONTROL", "DATA", "PACKET_OVERHEAD_BYTES",
           "SRC_FIELD_OVERHEAD", "Packet"]
