"""Deprecated compatibility shim: :class:`Packet` moved to
:mod:`repro.kernel.packet`.

The packet type is transport-neutral (the asyncio UDP backend of
:mod:`repro.livenet` serializes the same record the simulator schedules),
so it lives with the kernel now.  Everything historically importable from
here re-exports unchanged, but importing this module raises a
:class:`DeprecationWarning` — update imports to ``repro.kernel.packet``.
"""

import warnings

from repro.kernel.packet import (CONTROL, DATA, PACKET_OVERHEAD_BYTES,
                                 SRC_FIELD_OVERHEAD, Packet)

warnings.warn(
    "repro.simnet.packet is deprecated; import from repro.kernel.packet",
    DeprecationWarning, stacklevel=2)

__all__ = ["CONTROL", "DATA", "PACKET_OVERHEAD_BYTES",
           "SRC_FIELD_OVERHEAD", "Packet"]
