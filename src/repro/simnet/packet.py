"""Packets crossing the simulated network.

A packet is the wire form of a :class:`~repro.kernel.events.SendableEvent`:
the event's message (deep-copied at transmission time), the event class (so
the receiving transport can reconstruct a correctly-typed event — the
kernel's route optimization depends on the type), addressing, and the
traffic class used by the experiment counters.

The paper's Figure 3 counts *messages transmitted by the mobile device,
including data and control messages*; the ``traffic_class`` tag lets the
benchmarks report the same total while also breaking it down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.kernel.message import Message

#: Fixed per-packet overhead charged on top of the message size
#: (rough stand-in for UDP/IP + MAC framing).
PACKET_OVERHEAD_BYTES = 28

_packet_ids = itertools.count(1)


DATA = "data"
CONTROL = "control"


@dataclass
class Packet:
    """One simulated datagram.

    Attributes:
        src: sending node identifier.
        dst: destination node identifier, or a tuple of identifiers for a
            native-multicast transmission.
        port: demultiplexing key — by convention the channel name.
        event_cls: the :class:`SendableEvent` subclass to reconstruct on
            delivery.
        message: the carried message (already a private copy).
        traffic_class: ``"data"`` or ``"control"``.
        size_bytes: wire size including per-packet overhead.
        sent_at: virtual time of transmission (set by the network).
        hops: link hops traversed (set by the network; diagnostics).
    """

    src: str
    dst: Any
    port: str
    event_cls: type
    message: Message
    traffic_class: str = DATA
    size_bytes: int = 0
    sent_at: float = 0.0
    hops: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if not self.size_bytes:
            self.size_bytes = self.message.size_bytes + PACKET_OVERHEAD_BYTES

    @property
    def is_multicast(self) -> bool:
        """True when addressed to several receivers in one transmission."""
        return isinstance(self.dst, tuple)

    def copy_for(self, dst: str) -> "Packet":
        """A per-receiver copy with an isolated message buffer."""
        return Packet(src=self.src, dst=dst, port=self.port,
                      event_cls=self.event_cls, message=self.message.copy(),
                      traffic_class=self.traffic_class,
                      size_bytes=self.size_bytes, sent_at=self.sent_at,
                      hops=self.hops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"port={self.port} {self.traffic_class} "
                f"{self.event_cls.__name__} {self.size_bytes}B>")
