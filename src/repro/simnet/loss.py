"""Packet-loss models for simulated links.

The paper's motivation (§2) hinges on loss behaviour: *"the network error
rate may influence the type of error recovery: for small error rates it is
preferable to detect and recover (using retransmissions) while for larger
error rates it is preferable to mask the errors (using forward error
recovery techniques)"*.  These models feed the ARQ-vs-FEC adaptation and the
crossover benchmark.
"""

from __future__ import annotations

import random
from typing import Protocol


class LossModel(Protocol):
    """Decides, per transmission, whether a packet is lost."""

    def is_lost(self, size_bytes: int) -> bool:  # pragma: no cover - protocol
        ...


class NoLoss:
    """A perfect link."""

    def is_lost(self, size_bytes: int) -> bool:
        return False

    def spawn(self, label: str) -> "NoLoss":
        """A perfect link is its own stream for every sender."""
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return "NoLoss()"


class BernoulliLoss:
    """Independent per-packet loss with fixed probability.

    Args:
        probability: loss probability in ``[0, 1]``.
        rng: seeded random source (determinism contract: always pass one
            derived from the experiment seed).
        seed_base: optional string base for :meth:`spawn` — when set, each
            sender gets a private stream seeded ``f"{seed_base}:{label}"``,
            making one node's draws independent of how everyone else's
            traffic interleaves (the property sharded and worker-process
            runs need).  Without it, :meth:`spawn` keeps the legacy single
            shared stream.
    """

    def __init__(self, probability: float, rng: random.Random,
                 seed_base: str | None = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        self.probability = probability
        self._rng = rng
        self.seed_base = seed_base

    def spawn(self, label: str) -> "BernoulliLoss":
        """Per-sender draw stream (self when no ``seed_base`` was given)."""
        if self.seed_base is None:
            return self
        return BernoulliLoss(self.probability,
                             random.Random(f"{self.seed_base}:{label}"))

    def is_lost(self, size_bytes: int) -> bool:
        if self.probability == 0.0:
            return False
        return self._rng.random() < self.probability

    def __repr__(self) -> str:  # pragma: no cover
        return f"BernoulliLoss(p={self.probability})"


class GilbertElliottLoss:
    """Two-state bursty loss (good/bad channel), the classic 802.11 model.

    In the *good* state packets are lost with ``p_good``; in the *bad* state
    with ``p_bad``.  Transitions happen per packet with the given
    probabilities, producing loss bursts whose mean length is
    ``1 / p_bad_to_good``.
    """

    def __init__(self, rng: random.Random,
                 p_good: float = 0.001, p_bad: float = 0.35,
                 p_good_to_bad: float = 0.02,
                 p_bad_to_good: float = 0.25,
                 seed_base: str | None = None) -> None:
        for name, value in (("p_good", p_good), ("p_bad", p_bad),
                            ("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        self._rng = rng
        self.p_good = p_good
        self.p_bad = p_bad
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.in_bad_state = False
        self.seed_base = seed_base

    def spawn(self, label: str) -> "GilbertElliottLoss":
        """Per-sender channel (self when no ``seed_base`` was given).

        Each sender's spawned channel walks its own good/bad state chain:
        bursts model *that sender's* radio conditions, independent of the
        order other senders' packets hit the shared model object.
        """
        if self.seed_base is None:
            return self
        return GilbertElliottLoss(
            random.Random(f"{self.seed_base}:{label}"),
            p_good=self.p_good, p_bad=self.p_bad,
            p_good_to_bad=self.p_good_to_bad,
            p_bad_to_good=self.p_bad_to_good)

    def is_lost(self, size_bytes: int) -> bool:
        # State transition first, then loss draw in the new state.
        if self.in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        probability = self.p_bad if self.in_bad_state else self.p_good
        return self._rng.random() < probability

    def __repr__(self) -> str:  # pragma: no cover
        return (f"GilbertElliottLoss(pg={self.p_good}, pb={self.p_bad}, "
                f"state={'bad' if self.in_bad_state else 'good'})")
