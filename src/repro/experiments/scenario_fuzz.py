"""Scenario fuzzing harness — seeded search over the event grammar.

Generates random (but valid and fully seed-determined) dynamic-topology
scenarios, runs each under the always-on invariant set (view agreement,
delivery safety, counter consistency, sampled wheel/heap engine parity)
and — with ``--shrink`` — minimizes any failure to a locally-minimal,
replayable corpus file.

Run with::

    python -m repro.experiments.scenario_fuzz --seed 7 --runs 50
    python -m repro.experiments.scenario_fuzz --seed 7 --runs 50 --shrink \
        --corpus-dir tests/scenarios/corpus

Exit status is non-zero when any run violated an invariant — CI runs a
bounded smoke of this harness and uploads the shrunk reproducer as an
artifact when it trips.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional

from repro.scenarios.fuzz import MIXES, run_fuzz


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (fully determines every run)")
    parser.add_argument("--runs", type=int, default=25,
                        help="number of scenarios to generate and run")
    parser.add_argument("--mix", choices=sorted(MIXES), default="uniform",
                        help="event-kind weight profile")
    parser.add_argument("--policy-fuzz", action="store_true",
                        help="every scenario draws a random declarative "
                             "rule set (and often a governor) instead of "
                             "the fixed hybrid policy")
    parser.add_argument("--federation", action="store_true",
                        help="every scenario runs federated: multiple "
                             "cells, size thresholds, split/merge events, "
                             "backlog and reconciliation draws")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize failures to a reproducer")
    parser.add_argument("--corpus-dir", type=str, default=None,
                        help="write shrunk reproducers here (implies "
                             "--shrink)")
    parser.add_argument("--parity-every", type=int, default=5,
                        help="replay every N-th run on the heap engine "
                             "(0 disables)")
    parser.add_argument("--max-shrink-tests", type=int, default=200,
                        help="candidate-run budget per shrink")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary")
    args = parser.parse_args(argv)

    log = (lambda line: None) if args.quiet else \
        (lambda line: print(line, file=sys.stderr))
    config = MIXES[args.mix]
    if args.policy_fuzz:
        config = dataclasses.replace(config, rules_p=1.0)
    if args.federation:
        config = dataclasses.replace(config, federation_p=1.0)
    if not args.policy_fuzz and not args.federation:
        config = None
    start = time.perf_counter()
    outcomes = run_fuzz(
        seed=args.seed, runs=args.runs, mix=args.mix, config=config,
        parity_every=args.parity_every,
        shrink_failures=args.shrink or args.corpus_dir is not None,
        corpus_dir=args.corpus_dir,
        max_shrink_tests=args.max_shrink_tests, log=log)
    wall = time.perf_counter() - start

    failures = [outcome for outcome in outcomes if outcome.failed]
    parity_checked = sum(1 for outcome in outcomes if outcome.parity_checked)
    print(f"scenario_fuzz: seed={args.seed} mix={args.mix}"
          f"{' policy-fuzz' if args.policy_fuzz else ''}"
          f"{' federation' if args.federation else ''} "
          f"runs={len(outcomes)} failures={len(failures)} "
          f"parity_checked={parity_checked} wall={wall:.1f}s")
    for outcome in failures:
        print(f"  FAIL run {outcome.index} ({outcome.scenario.name}, "
              f"run_seed={outcome.run_seed}):")
        for violation in outcome.violations:
            print(f"    {violation}")
        if outcome.shrunk is not None:
            print(f"    shrunk: {len(outcome.shrunk.events)} events, "
                  f"{len(outcome.shrunk.nodes)} nodes, "
                  f"{len(outcome.shrunk.workload)} bursts")
        if outcome.corpus_path:
            print(f"    corpus: {outcome.corpus_path}")
    if not failures:
        print("  all invariants green")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
