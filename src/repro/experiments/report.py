"""Small helpers for rendering experiment tables (shared by all benches)."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [max(len(headers[col]),
                  *(len(row[col]) for row in rendered)) if rendered
              else len(headers[col])
              for col in range(len(headers))]
    lines = []
    header_line = "  ".join(header.ljust(widths[col])
                            for col, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(
            cell.rjust(widths[col]) if _numeric(cell) else cell.ljust(widths[col])
            for col, cell in enumerate(row)))
    return "\n".join(lines)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit() and bool(stripped)


def shape_ratio(a: float, b: float) -> float:
    """Safe ratio for shape checks (``a / b`` with zero protection)."""
    return a / b if b else float("inf")
