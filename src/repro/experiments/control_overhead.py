"""Ablation A6 — where the adaptive version's extra traffic goes.

The paper's footnote 1: *"even in the adaptive version there is a small
increase in the traffic due to the need of exchanging more control
information."*  This harness breaks the measured mobile node's transmission
count down by the event type that generated each packet — heartbeats,
context snapshots, Core coordination, membership flushes, NACKs and the
chat data itself — for both the adaptive and the non-adaptive configuration
of a Figure 3 scenario.

Run with: ``python -m repro.experiments.control_overhead``
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.experiments.figure3 import (Figure3Config, ScenarioResult,
                                       run_scenario)
from repro.experiments.report import format_table

EVENT_ROWS = ("ApplicationMessage", "HeartbeatMessage", "ContextMessage",
              "CoreMessage", "MembershipMessage", "NackMessage",
              "RetransmissionMessage")


def run_breakdown(num_nodes: int = 6, messages: int = 2000,
                  seed: int = 42) -> tuple[ScenarioResult, ScenarioResult]:
    """The Figure 3 cell at ``num_nodes``, both configurations."""
    config = Figure3Config(messages=messages, seed=seed)
    adaptive = run_scenario(num_nodes, optimized=True, config=config)
    baseline = run_scenario(num_nodes, optimized=False, config=config)
    return adaptive, baseline


def format_breakdown(adaptive: ScenarioResult,
                     baseline: ScenarioResult) -> str:
    rows = []
    for event in EVENT_ROWS:
        rows.append([event,
                     adaptive.sent_by_event.get(event, 0),
                     baseline.sent_by_event.get(event, 0)])
    rows.append(["TOTAL", adaptive.sent_total, baseline.sent_total])
    header = (f"A6 — mobile node transmission breakdown "
              f"(n={adaptive.nodes}; footnote 1 of the paper)\n")
    return header + format_table(
        ["event type", "adaptive", "non-adaptive"], rows)


def control_fraction(result: ScenarioResult) -> float:
    """Share of the mobile node's transmissions that is control traffic."""
    return result.sent_control / result.sent_total if result.sent_total \
        else 0.0


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--messages", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    adaptive, baseline = run_breakdown(args.nodes, args.messages, args.seed)
    print(format_breakdown(adaptive, baseline))
    print(f"\nadaptive control fraction:     "
          f"{control_fraction(adaptive):.3%}")
    print(f"non-adaptive control fraction: "
          f"{control_fraction(baseline):.3%}")


if __name__ == "__main__":
    main()
