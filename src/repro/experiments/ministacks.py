"""Shared mini-stack builders for the ablation experiments.

The ablations isolate one design axis each (error recovery, dissemination
strategy), so they run reduced stacks: transport + dissemination +
recovery + probe application, without membership dynamics.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.workload import ProbeAppLayer, ProbeSession
from repro.kernel.layer import Layer
from repro.kernel.qos import QoS
from repro.protocols.beb import BestEffortMulticastLayer
from repro.protocols.fec import FecLayer
from repro.protocols.gossip import GossipLayer
from repro.protocols.reliable import ReliableMulticastLayer
from repro.simnet.network import Network
from repro.simnet.transport import SimTransportLayer, SimTransportSession


def build_ministack(network: Network, node_id: str,
                    members: Sequence[str],
                    middle_layers: Sequence[Layer],
                    channel_name: str = "data") -> ProbeSession:
    """transport / ``middle_layers`` / probe-app on one node.

    Returns the probe session (top of stack).
    """
    node = network.node(node_id)
    transport_layer = SimTransportLayer()
    transport_session = SimTransportSession(transport_layer, node=node)
    layers: list[Layer] = [transport_layer, *middle_layers, ProbeAppLayer()]
    qos = QoS(f"mini-{node_id}", layers)
    channel = qos.create_channel(channel_name, node.kernel,
                                 preset_sessions={0: transport_session})
    channel.start()
    probe = channel.sessions[-1]
    assert isinstance(probe, ProbeSession)
    return probe


def arq_stack(members_csv: str, nack_interval: float = 0.2) -> list[Layer]:
    """Detect-and-recover: best-effort multicast + NACK retransmission."""
    return [BestEffortMulticastLayer(members=members_csv),
            ReliableMulticastLayer(members=members_csv,
                                   nack_interval=nack_interval)]


def fec_stack(members_csv: str, k: int = 8, m: int = 2,
              giveup_timeout: float = 5.0,
              nack_interval: float = 0.2) -> list[Layer]:
    """Mask-the-errors: Reed–Solomon parity with an ARQ backstop above.

    This is the composition of
    :func:`repro.core.templates.fec_data_template`: parity reconstruction
    masks most losses before the reliable layer ever notices a gap, and the
    (now rarely exercised) NACK path guarantees delivery of the residue.
    """
    return [BestEffortMulticastLayer(members=members_csv),
            FecLayer(members=members_csv, k=k, m=m,
                     giveup_timeout=giveup_timeout),
            ReliableMulticastLayer(members=members_csv,
                                   nack_interval=nack_interval)]


def flood_stack(members_csv: str) -> list[Layer]:
    """Flooding baseline: plain point-to-point fan-out."""
    return [BestEffortMulticastLayer(members=members_csv)]


def gossip_stack(members_csv: str, fanout: int = 3, rounds: int = 4,
                 seed: int = 0) -> list[Layer]:
    """Epidemic dissemination."""
    return [GossipLayer(members=members_csv, fanout=fanout, rounds=rounds,
                        seed=seed)]
