"""Ablation A2 — error recovery: retransmission (ARQ) vs FEC (paper §2).

Sweeps the wireless loss rate and compares the two recovery strategies the
paper uses to motivate run-time adaptation:

* **ARQ** (detect and recover): reliable layer, NACK + retransmission —
  cheap at low loss, but recovery costs a round trip and the NACK traffic
  grows with the loss rate;
* **FEC** (mask the errors): Reed–Solomon parity — fixed ``m/k`` overhead,
  no recovery round trips.

Reported per loss point: total network transmissions (overhead), delivery
ratio, and mean delivery latency.  Expected shape: ARQ wins on overhead at
small loss; FEC's flat overhead and latency win as loss grows — the
crossover the paper's §2 argues makes static configuration impossible.

Run with: ``python -m repro.experiments.fec_crossover``
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass
from typing import Optional

from repro.apps.workload import PacedSender
from repro.experiments.ministacks import arq_stack, build_ministack, fec_stack
from repro.experiments.report import format_table
from repro.simnet.engine import SimEngine
from repro.simnet.loss import BernoulliLoss
from repro.simnet.network import LinkParams, Network

PAPER_LOSS_POINTS = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40)


@dataclass
class RecoveryResult:
    """Counters for one (loss, strategy) run."""

    loss: float
    strategy: str
    total_sent: int
    delivery_ratio: float
    mean_latency_ms: float
    recovered: int = 0
    nacks: int = 0


def run_recovery(loss: float, strategy: str, *, num_nodes: int = 4,
                 messages: int = 200, rate: float = 20.0, seed: int = 7,
                 k: int = 8, m: int = 2) -> RecoveryResult:
    """One cell of the sweep: a mobile sender behind one lossy wireless hop
    multicasting to ``num_nodes - 1`` fixed receivers."""
    engine = SimEngine()
    wireless = LinkParams(latency_s=0.002, bandwidth_bps=11e6,
                          loss=BernoulliLoss(loss, random.Random(seed)))
    network = Network(engine, seed=seed, wireless=wireless)
    member_ids = ["m0"] + [f"r{index}" for index in range(num_nodes - 1)]
    network.add_mobile_node("m0")
    for node_id in member_ids[1:]:
        network.add_fixed_node(node_id)
    members_csv = ",".join(member_ids)

    probes = {}
    for node_id in member_ids:
        middle = arq_stack(members_csv) if strategy == "arq" \
            else fec_stack(members_csv, k=k, m=m)
        probes[node_id] = build_ministack(network, node_id, member_ids,
                                          middle)

    sender = probes["m0"]
    pacer = PacedSender(engine, sender.send, messages, rate, start=0.5,
                        make_payload=lambda i: ("msg", i))
    last = pacer.schedule_all()
    engine.run_until(last + 15.0)

    receivers = [probes[node_id] for node_id in member_ids[1:]]
    expected = messages * len(receivers)
    delivered = 0
    latencies = []
    for receiver in receivers:
        for delivery in receiver.deliveries:
            delivered += 1
            latency = receiver.latency_of(delivery, sender)
            if latency is not None:
                latencies.append(latency)
    total_sent = network.total_stats()["sent_total"]
    recovered = nacks = 0
    for node_id in member_ids:
        channel = network.node(node_id).kernel.find_channel("data")
        fec_session = channel.session_named("fec")
        reliable_session = channel.session_named("reliable")
        if fec_session is not None:
            recovered += fec_session.recovered_count
        if reliable_session is not None:
            nacks += reliable_session.nacks_sent
    return RecoveryResult(
        loss=loss, strategy=strategy, total_sent=total_sent,
        delivery_ratio=delivered / expected if expected else 1.0,
        mean_latency_ms=(sum(latencies) / len(latencies) * 1000.0)
        if latencies else 0.0,
        recovered=recovered, nacks=nacks)


def run_sweep(loss_points=PAPER_LOSS_POINTS,
              **kwargs) -> list[tuple[RecoveryResult, RecoveryResult]]:
    """ARQ and FEC at every loss point."""
    return [(run_recovery(loss, "arq", **kwargs),
             run_recovery(loss, "fec", **kwargs))
            for loss in loss_points]


def format_sweep(pairs) -> str:
    rows = []
    for arq, fec in pairs:
        rows.append([
            f"{arq.loss:.2f}",
            arq.total_sent, fec.total_sent,
            f"{arq.delivery_ratio:.3f}", f"{fec.delivery_ratio:.3f}",
            f"{arq.mean_latency_ms:.1f}", f"{fec.mean_latency_ms:.1f}",
            arq.nacks, fec.recovered,
        ])
    return ("A2 — error recovery: ARQ (retransmit) vs FEC (mask)\n" +
            format_table(
                ["loss", "arq sent", "fec sent", "arq dlv", "fec dlv",
                 "arq lat(ms)", "fec lat(ms)", "nacks", "fec recovered"],
                rows))


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=200)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    pairs = run_sweep(messages=args.messages, num_nodes=args.nodes,
                      seed=args.seed)
    print(format_sweep(pairs))


if __name__ == "__main__":
    main()
