"""Ablation A4 — energy-aware adaptation and network lifetime (§1, [20]).

*"When all participants execute in mobile devices, one can use information
about the available battery at each device to increase the lifetime of the
network."*  This experiment realizes that claim with the Morpheus stack:

* **plain** — every node multicasts as ``n−1`` point-to-point sends;
* **static relay** — Mecho with a fixed relay (deterministic lowest id),
  concentrating the forwarding burden on one battery;
* **rotating relay** — :class:`ThresholdBatteryRotationPolicy`: Cocaditem
  disseminates battery levels and Core re-selects the relay as batteries
  drain.

Devices start with *heterogeneous* batteries (the lowest-id node weakest).
Metric: **network lifetime** — virtual time until the first battery dies —
plus messages delivered group-wide within the lifetime.  Expected shape:
rotating > plain > static-on-weak-node.

Run with: ``python -m repro.experiments.energy_lifetime``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.core.morpheus import build_morpheus_group
from repro.core.policy import (ReconfigurationPlan, StaticPolicy,
                               ThresholdBatteryRotationPolicy)
from repro.core.templates import mecho_data_template
from repro.experiments.report import format_table
from repro.simnet.energy import Battery
from repro.simnet.engine import SimEngine
from repro.simnet.network import Network

STRATEGIES = ("plain", "static", "rotating")


@dataclass
class LifetimeResult:
    """Outcome of one strategy run."""

    strategy: str
    lifetime_s: float
    first_casualty: str
    delivered_in_lifetime: int
    relay_switches: int


def _build(strategy: str, num_nodes: int, capacity_mj: float, seed: int):
    engine = SimEngine()
    network = Network(engine, seed=seed)
    member_ids = [f"m{index}" for index in range(num_nodes)]
    for index, node_id in enumerate(member_ids):
        # Heterogeneous reserves: the lowest-id device is the weakest.
        fraction = 0.4 if index == 0 else 1.0
        network.add_mobile_node(node_id, battery=Battery(
            capacity_mj=capacity_mj * fraction))
    stack_options = {"heartbeat_interval": 10.0}
    if strategy == "plain":
        policy = None  # HybridMechoPolicy sees a homogeneous group: plain
    elif strategy == "static":
        relay = member_ids[0]
        plan = ReconfigurationPlan(name=f"static:relay={relay}")
        for member in member_ids:
            mode = "wired" if member == relay else "wireless"
            plan.templates[member] = mecho_data_template(
                member_ids, mode=mode, relay=relay, **stack_options)
        policy = StaticPolicy(plan)
    else:
        policy = ThresholdBatteryRotationPolicy(
            hysteresis=0.05, stack_options=stack_options)
    nodes = build_morpheus_group(
        network, policy=policy, publish_interval=5.0, evaluate_interval=5.0,
        heartbeat_interval=10.0)
    return engine, network, nodes


def run_lifetime(strategy: str, *, num_nodes: int = 4, rate: float = 4.0,
                 capacity_mj: float = 4000.0, horizon_s: float = 2000.0,
                 seed: int = 31) -> LifetimeResult:
    """Run one strategy until the first battery dies (or the horizon)."""
    engine, network, nodes = _build(strategy, num_nodes, capacity_mj, seed)
    member_ids = network.node_ids()

    # Everyone chats, round-robin, at an aggregate ``rate`` msg/s.
    interval = 1.0 / rate
    sends = int(horizon_s / interval)
    for index in range(sends):
        sender = nodes[member_ids[index % len(member_ids)]]
        engine.call_at(10.0 + index * interval,
                       lambda s=sender, i=index: s.send(f"e-{i}"))

    lifetime = horizon_s
    casualty = "(none)"
    step = 5.0
    now = 0.0
    while now < horizon_s:
        now = min(now + step, horizon_s)
        engine.run_until(now)
        dead = [node_id for node_id in member_ids
                if not network.node(node_id).battery.alive]
        if dead:
            lifetime = now
            casualty = dead[0]
            break

    delivered = sum(len(node.chat.history) for node in nodes.values())
    switches = max(node.core.reconfigurations_completed
                   for node in nodes.values())
    return LifetimeResult(strategy=strategy, lifetime_s=lifetime,
                          first_casualty=casualty,
                          delivered_in_lifetime=delivered,
                          relay_switches=switches)


def run_all(**kwargs) -> list[LifetimeResult]:
    return [run_lifetime(strategy, **kwargs) for strategy in STRATEGIES]


def format_results(results: list[LifetimeResult]) -> str:
    rows = [[result.strategy, f"{result.lifetime_s:.0f}",
             result.first_casualty, result.delivered_in_lifetime,
             result.relay_switches]
            for result in results]
    return ("A4 — network lifetime under heterogeneous batteries\n" +
            format_table(
                ["strategy", "lifetime (s)", "first casualty",
                 "delivered msgs", "reconfigs"], rows))


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--capacity", type=float, default=4000.0)
    parser.add_argument("--horizon", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args(argv)
    results = run_all(num_nodes=args.nodes, capacity_mj=args.capacity,
                      horizon_s=args.horizon, seed=args.seed)
    print(format_results(results))


if __name__ == "__main__":
    main()
