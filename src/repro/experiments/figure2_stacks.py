"""Figure 2, executable — the two protocol-stack configurations.

The paper's Figure 2 is a diagram: (a) the homogeneous configuration
(application / group communication / network interface on every device) and
(b) the hybrid configuration with Mecho — ``Mecho/Wired`` on the fixed
device, ``Mecho/Wireless`` on the mobile devices.  This harness *deploys*
both configurations through the full Morpheus pipeline and renders the live
stacks, verifying that the running system matches the figure.

Run with: ``python -m repro.experiments.figure2_stacks``
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.core.morpheus import build_morpheus_group
from repro.simnet.engine import SimEngine
from repro.simnet.network import Network


def deploy_stacks(num_mobile: int = 2, seed: int = 17,
                  settle_s: float = 20.0) -> dict[str, dict]:
    """Run the hybrid scenario; capture each node's stack before and after.

    Returns ``{node_id: {"kind", "before", "after", "mecho_mode"}}``.
    """
    engine = SimEngine()
    network = Network(engine, seed=seed)
    network.add_fixed_node("fixed-0")
    for index in range(num_mobile):
        network.add_mobile_node(f"mobile-{index}")
    nodes = build_morpheus_group(network, publish_interval=2.0,
                                 evaluate_interval=2.0)
    captured = {node_id: {"kind": network.node(node_id).kind.value,
                          "before": list(morpheus.current_stack())}
                for node_id, morpheus in nodes.items()}
    engine.run_until(settle_s)
    for node_id, morpheus in nodes.items():
        captured[node_id]["after"] = list(morpheus.current_stack())
        mecho = morpheus.local_module.data_channel.session_named("mecho")
        captured[node_id]["mecho_mode"] = mecho.mode if mecho else None
        captured[node_id]["relay"] = mecho.relay if mecho else None
    return captured


def render(captured: dict[str, dict]) -> str:
    """ASCII rendering of the deployed stacks (cf. the paper's Figure 2)."""
    lines = ["Figure 2 — deployed protocol stacks", ""]
    lines.append("(a) initial, homogeneous configuration:")
    for node_id in sorted(captured):
        info = captured[node_id]
        stack = " / ".join(reversed(info["before"]))
        lines.append(f"  {node_id:>10} ({info['kind']:<6}): {stack}")
    lines.append("")
    lines.append("(b) after adaptation to the hybrid context:")
    for node_id in sorted(captured):
        info = captured[node_id]
        stack = " / ".join(reversed(info["after"]))
        mode = info["mecho_mode"]
        suffix = f"   [mecho/{mode}, relay={info['relay']}]" if mode else ""
        lines.append(f"  {node_id:>10} ({info['kind']:<6}): {stack}{suffix}")
    return "\n".join(lines)


def verify(captured: dict[str, dict]) -> list[str]:
    """Check the deployment against the figure; returns a list of errors."""
    errors = []
    for node_id, info in captured.items():
        if "beb" not in info["before"]:
            errors.append(f"{node_id}: initial stack is not the plain one")
        if "mecho" not in info["after"]:
            errors.append(f"{node_id}: adapted stack lacks Mecho")
        expected_mode = "wired" if info["kind"] == "fixed" else "wireless"
        if info.get("mecho_mode") != expected_mode:
            errors.append(f"{node_id}: mecho mode {info.get('mecho_mode')} "
                          f"!= {expected_mode}")
    return errors


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mobiles", type=int, default=2)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)
    captured = deploy_stacks(num_mobile=args.mobiles, seed=args.seed)
    print(render(captured))
    errors = verify(captured)
    if errors:
        raise SystemExit("\n".join(["VERIFICATION FAILED:"] + errors))
    print("\nVerification: live stacks match Figure 2.")


if __name__ == "__main__":
    main()
