"""Ablation A3 — dissemination at scale: flooding vs epidemic gossip.

The paper's introduction motivates epidemic protocols for large,
geographically distributed groups (citing NEEM): a flooding sender pays
``n−1`` transmissions per multicast, while gossip spreads a bounded
``fanout × rounds`` load over every member.

Reported per group size: the origin's transmissions per multicast, the
maximum per-node transmissions (the hotspot), and the delivery ratio
(gossip is probabilistic).  Expected shape: flooding's origin load grows
linearly with ``n``; gossip's per-node load stays roughly flat while
delivery stays near 1.0 for ``rounds ≈ log₂ n + 2``.

Run with: ``python -m repro.experiments.gossip_scale``
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass
from typing import Optional

from repro.apps.workload import PacedSender
from repro.experiments.ministacks import (build_ministack, flood_stack,
                                          gossip_stack)
from repro.experiments.report import format_table
from repro.simnet.engine import SimEngine
from repro.simnet.network import Network

PAPER_GROUP_SIZES = (8, 16, 32, 64)


@dataclass
class ScaleResult:
    """Counters for one (n, strategy) run."""

    nodes: int
    strategy: str
    origin_sent_per_multicast: float
    max_node_sent_per_multicast: float
    delivery_ratio: float


def run_scale(num_nodes: int, strategy: str, *, messages: int = 30,
              rate: float = 10.0, fanout: int = 3,
              rounds: Optional[int] = None, seed: int = 13) -> ScaleResult:
    """One cell: a fixed-host group of ``num_nodes``, one origin sender."""
    engine = SimEngine()
    network = Network(engine, seed=seed)
    member_ids = [f"n{index:03d}" for index in range(num_nodes)]
    for node_id in member_ids:
        network.add_fixed_node(node_id)
    members_csv = ",".join(member_ids)
    if rounds is None:
        rounds = int(math.ceil(math.log2(max(num_nodes, 2)))) + 2

    probes = {}
    for node_id in member_ids:
        middle = flood_stack(members_csv) if strategy == "flood" \
            else gossip_stack(members_csv, fanout=fanout, rounds=rounds,
                              seed=seed)
        probes[node_id] = build_ministack(network, node_id, member_ids,
                                          middle)

    origin = probes[member_ids[0]]
    pacer = PacedSender(engine, origin.send, messages, rate, start=0.1,
                        make_payload=lambda i: ("g", i))
    last = pacer.schedule_all()
    engine.run_until(last + 10.0)

    receivers = member_ids[1:]
    delivered = sum(len(probes[node_id].deliveries)
                    for node_id in receivers)
    expected = messages * len(receivers)
    per_node_sent = [network.stats_of(node_id).sent_total
                     for node_id in member_ids]
    return ScaleResult(
        nodes=num_nodes, strategy=strategy,
        origin_sent_per_multicast=per_node_sent[0] / messages,
        max_node_sent_per_multicast=max(per_node_sent) / messages,
        delivery_ratio=delivered / expected if expected else 1.0)


def run_sweep(sizes=PAPER_GROUP_SIZES, **kwargs):
    """Flooding and gossip at every group size."""
    return [(run_scale(size, "flood", **kwargs),
             run_scale(size, "gossip", **kwargs)) for size in sizes]


def format_sweep(pairs) -> str:
    rows = []
    for flood, gossip in pairs:
        rows.append([
            flood.nodes,
            f"{flood.origin_sent_per_multicast:.1f}",
            f"{gossip.max_node_sent_per_multicast:.1f}",
            f"{flood.delivery_ratio:.3f}",
            f"{gossip.delivery_ratio:.3f}",
        ])
    return ("A3 — dissemination at scale: flooding vs gossip\n" +
            format_table(
                ["nodes", "flood origin msg/mcast", "gossip max msg/mcast",
                 "flood delivery", "gossip delivery"], rows))


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=30)
    parser.add_argument("--sizes", type=int, nargs="*",
                        default=list(PAPER_GROUP_SIZES))
    parser.add_argument("--fanout", type=int, default=3)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)
    pairs = run_sweep(tuple(args.sizes), messages=args.messages,
                      fanout=args.fanout, seed=args.seed)
    print(format_sweep(pairs))


if __name__ == "__main__":
    main()
