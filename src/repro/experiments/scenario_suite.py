"""Scenario suite — dynamic-topology runs over the full Morpheus pipeline.

Executes every canned scenario (commuter handoff, flash-crowd join,
degrading-channel FEC crossover, churn storm, partition heal) and reports,
per scenario, the topology events applied, the live reconfigurations they
triggered, and the traffic outcome.  This is the dynamic counterpart of
the static figure harnesses: instead of adapting once to conditions fixed
before t=0, the stack re-adapts *while the context changes* — the class of
runs Rodriguez et al. treat as the primary adaptation trigger.

Run with: ``python -m repro.experiments.scenario_suite``
"""

from __future__ import annotations

import argparse
import inspect
import time
from typing import Iterable, Optional

from repro.experiments.report import format_table
from repro.scenarios.library import CANNED, canned
from repro.scenarios.runner import ScenarioResult, run_scenario

#: Group sizes of the churn scale sweep (ROADMAP: "scenario-driven
#: benchmarks at scale" — find the reconfiguration-throughput ceiling).
SWEEP_SIZES = (10, 30, 60, 100)


def run_suite(names: Optional[Iterable[str]] = None,
              seed: int = 0, **overrides) -> list[ScenarioResult]:
    """Run the selected canned scenarios (all of them by default).

    ``overrides`` reach each builder, filtered to the keywords it
    actually accepts (the builders differ: ``messages`` is universal,
    ``joiners`` is flash-crowd-only, …) — so a shared override scales
    every scenario without breaking the ones that don't know it.
    """
    selected = list(names) if names is not None else sorted(CANNED)
    results = []
    for name in selected:
        accepted = inspect.signature(CANNED[name]).parameters
        applicable = {key: value for key, value in overrides.items()
                      if key in accepted}
        results.append(run_scenario(canned(name, **applicable), seed=seed))
    return results


def format_suite(results: list[ScenarioResult]) -> str:
    rows = []
    for result in results:
        summary = result.summary()
        rows.append([
            summary["scenario"], summary["nodes"], summary["events"],
            summary["reconfigurations"], summary["sent"],
            summary["delivered"], summary["lost"],
        ])
    return ("Scenario suite — live adaptation under dynamic topology\n" +
            format_table(
                ["scenario", "nodes", "events", "reconfigs", "sent",
                 "delivered", "lost"], rows))


def format_trace(result: ScenarioResult) -> str:
    header = f"--- {result.name} (seed {result.seed}) ---"
    return "\n".join([header, *result.trace])


def run_churn_sweep(sizes: Iterable[int] = SWEEP_SIZES,
                    seed: int = 0, **overrides) -> list[dict]:
    """Sweep the churn storm over group sizes (10–100 nodes).

    The event schedule is identical at every size (see
    :func:`repro.scenarios.library.churn_storm`); only the group that has
    to live through the flushes grows.  Reports wall-clock and
    engine-events/second per size, the reconfiguration-throughput metric
    the copy-on-write message path is benchmarked on.
    """
    rows = []
    for members in sizes:
        scenario = canned("churn_storm", members=members, **overrides)
        start = time.perf_counter()
        result = run_scenario(scenario, seed=seed)
        wall = time.perf_counter() - start
        summary = result.summary()
        rows.append({
            "nodes": members,
            "wall_s": round(wall, 3),
            "engine_events": result.engine_events,
            "events_per_sec": round(result.engine_events / wall, 1),
            "reconfigurations": result.reconfiguration_count(),
            "sent": summary["sent"],
            "delivered": result.delivered_packets,
            "lost": result.lost_packets,
        })
    return rows


def format_churn_sweep(rows: list[dict]) -> str:
    table_rows = [[row["nodes"], f"{row['wall_s']:.2f}",
                   row["engine_events"], f"{row['events_per_sec']:,.0f}",
                   row["reconfigurations"], row["sent"], row["delivered"]]
                  for row in rows]
    return ("Churn-storm scale sweep — reconfiguration throughput\n" +
            format_table(["nodes", "wall s", "events", "events/s",
                          "reconfigs", "sent", "delivered"], table_rows))


#: Total node counts of the sharded scale sweep — the population a single
#: engine cannot reach in reasonable wall-clock (ROADMAP direction 1).
SHARDED_SWEEP_SIZES = (200, 600, 1200)


def build_churn_segments(total_nodes: int, group_size: int = 50,
                         duration_s: float = 55.0,
                         messages: int = 40) -> list:
    """Segment a ``total_nodes`` population into disjoint churn-storm
    groups of ``group_size`` members each (id-relabelled copies of the
    canned scenario), the cross-segment-light topology the sharded
    engine targets."""
    from repro.scenarios.sharded import relabel_scenario
    count = max(1, total_nodes // group_size)
    template = canned("churn_storm", members=group_size,
                      duration_s=duration_s, messages=messages)
    return [relabel_scenario(template, prefix=f"g{index}-",
                             name=f"churn{index}")
            for index in range(count)]


def run_sharded_sweep(sizes: Iterable[int] = SHARDED_SWEEP_SIZES,
                      group_size: int = 50, workers: int = 1,
                      seed: int = 0) -> list[dict]:
    """Scale the churn storm past the single-engine ceiling.

    Each total size is composed of disjoint ``group_size``-member
    segments run through :func:`repro.scenarios.sharded.
    run_segments_parallel` — per-segment event loops with infinite
    lookahead, fanned over ``workers`` processes.  Results are identical
    for any worker count (the sharded determinism gate); only the
    wall-clock changes.
    """
    from repro.scenarios.sharded import run_segments_parallel
    rows = []
    for total in sizes:
        segments = build_churn_segments(total, group_size=group_size)
        start = time.perf_counter()
        results = run_segments_parallel(segments, seed=seed,
                                        workers=workers)
        wall = time.perf_counter() - start
        events = sum(result.engine_events for result in results)
        rows.append({
            "nodes": len(segments) * group_size,
            "segments": len(segments),
            "workers": workers,
            "wall_s": round(wall, 3),
            "engine_events": events,
            "events_per_sec": round(events / wall, 1),
            "reconfigurations": sum(result.reconfiguration_count()
                                    for result in results),
            "delivered": sum(result.delivered_packets
                             for result in results),
            "lost": sum(result.lost_packets for result in results),
        })
    return rows


def format_sharded_sweep(rows: list[dict]) -> str:
    table_rows = [[row["nodes"], row["segments"], row["workers"],
                   f"{row['wall_s']:.2f}", row["engine_events"],
                   f"{row['events_per_sec']:,.0f}",
                   row["reconfigurations"], row["delivered"]]
                  for row in rows]
    return ("Sharded churn sweep — disjoint segments, per-segment engines\n"
            + format_table(["nodes", "segments", "workers", "wall s",
                            "events", "events/s", "reconfigs", "delivered"],
                           table_rows))


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", nargs="*", default=sorted(CANNED),
                        choices=sorted(CANNED))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", action="store_true",
                        help="also print each run's event trace")
    parser.add_argument("--churn-sweep", type=int, nargs="*", default=None,
                        metavar="N",
                        help="also sweep churn_storm over these group "
                             f"sizes (no sizes = {SWEEP_SIZES})")
    parser.add_argument("--sharded-sweep", type=int, nargs="*", default=None,
                        metavar="N",
                        help="also sweep segmented churn over these total "
                             f"node counts (no sizes = "
                             f"{SHARDED_SWEEP_SIZES})")
    parser.add_argument("--group-size", type=int, default=50,
                        help="members per segment in the sharded sweep")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sharded sweep")
    args = parser.parse_args(argv)
    if args.sharded_sweep is not None:
        # The sharded sweep is the headline; skip the (slow) flat suite
        # unless scenarios were explicitly requested alongside it.
        sizes = tuple(args.sharded_sweep) or SHARDED_SWEEP_SIZES
        print(format_sharded_sweep(run_sharded_sweep(
            sizes, group_size=args.group_size, workers=args.workers,
            seed=args.seed)))
        return
    results = run_suite(args.scenarios, seed=args.seed)
    print(format_suite(results))
    if args.trace:
        for result in results:
            print()
            print(format_trace(result))
    if args.churn_sweep is not None:
        sizes = tuple(args.churn_sweep) or SWEEP_SIZES
        print()
        print(format_churn_sweep(run_churn_sweep(sizes, seed=args.seed)))


if __name__ == "__main__":
    main()
