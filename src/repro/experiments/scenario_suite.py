"""Scenario suite — dynamic-topology runs over the full Morpheus pipeline.

Executes every canned scenario (commuter handoff, flash-crowd join,
degrading-channel FEC crossover, churn storm, partition heal) and reports,
per scenario, the topology events applied, the live reconfigurations they
triggered, and the traffic outcome.  This is the dynamic counterpart of
the static figure harnesses: instead of adapting once to conditions fixed
before t=0, the stack re-adapts *while the context changes* — the class of
runs Rodriguez et al. treat as the primary adaptation trigger.

Run with: ``python -m repro.experiments.scenario_suite``
"""

from __future__ import annotations

import argparse
import inspect
from typing import Iterable, Optional

from repro.experiments.report import format_table
from repro.scenarios.library import CANNED, canned
from repro.scenarios.runner import ScenarioResult, run_scenario


def run_suite(names: Optional[Iterable[str]] = None,
              seed: int = 0, **overrides) -> list[ScenarioResult]:
    """Run the selected canned scenarios (all of them by default).

    ``overrides`` reach each builder, filtered to the keywords it
    actually accepts (the builders differ: ``messages`` is universal,
    ``joiners`` is flash-crowd-only, …) — so a shared override scales
    every scenario without breaking the ones that don't know it.
    """
    selected = list(names) if names is not None else sorted(CANNED)
    results = []
    for name in selected:
        accepted = inspect.signature(CANNED[name]).parameters
        applicable = {key: value for key, value in overrides.items()
                      if key in accepted}
        results.append(run_scenario(canned(name, **applicable), seed=seed))
    return results


def format_suite(results: list[ScenarioResult]) -> str:
    rows = []
    for result in results:
        summary = result.summary()
        rows.append([
            summary["scenario"], summary["nodes"], summary["events"],
            summary["reconfigurations"], summary["sent"],
            summary["delivered"], summary["lost"],
        ])
    return ("Scenario suite — live adaptation under dynamic topology\n" +
            format_table(
                ["scenario", "nodes", "events", "reconfigs", "sent",
                 "delivered", "lost"], rows))


def format_trace(result: ScenarioResult) -> str:
    header = f"--- {result.name} (seed {result.seed}) ---"
    return "\n".join([header, *result.trace])


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", nargs="*", default=sorted(CANNED),
                        choices=sorted(CANNED))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", action="store_true",
                        help="also print each run's event trace")
    args = parser.parse_args(argv)
    results = run_suite(args.scenarios, seed=args.seed)
    print(format_suite(results))
    if args.trace:
        for result in results:
            print()
            print(format_trace(result))


if __name__ == "__main__":
    main()
