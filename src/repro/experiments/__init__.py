"""Experiment harnesses regenerating the paper's figures plus ablations.

Each module is runnable (``python -m repro.experiments.<name>``) and is
also wrapped by a pytest-benchmark file under ``benchmarks/``.  Import the
experiment APIs from their modules directly
(``repro.experiments.figure3`` etc.); this package initialiser stays empty
so ``python -m`` execution does not double-import the harness modules.
"""
