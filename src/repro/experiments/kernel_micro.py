"""Ablation A5 — kernel micro-costs.

The kernel claims two things worth quantifying: (1) event-route
optimization means uninterested layers cost nothing, and (2) run-time
channel instantiation from XML — the mechanism reconfiguration rides on —
is cheap.  This harness measures both with wall-clock micro-benchmarks
(the only experiments in the repository that use real time).

Run with: ``python -m repro.experiments.kernel_micro``
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Optional

from repro.experiments.report import format_table
from repro.kernel import (Direction, Event, Kernel, Layer, QoS,
                          SendableEvent, Session, register_layer,
                          is_registered)
from repro.kernel.xml_config import ChannelTemplate, LayerSpec


class _HotEvent(SendableEvent):
    """The event type the stack under test routes."""


class _ColdEvent(SendableEvent):
    """An event type nobody below the top accepts."""


class _ForwardSession(Session):
    def handle(self, event: Event) -> None:
        event.go()


class _InterestedLayer(Layer):
    layer_name = "micro_interested"
    accepted_events = (_HotEvent, _ColdEvent)
    session_class = _ForwardSession


class _UninterestedLayer(Layer):
    layer_name = "micro_uninterested"
    accepted_events = (_HotEvent,)
    session_class = _ForwardSession


def _register_micro_layers() -> None:
    for cls in (_InterestedLayer, _UninterestedLayer):
        if not is_registered(cls.name()):
            register_layer(cls)


@dataclass
class MicroResult:
    name: str
    value: float
    unit: str


def routing_throughput(depth: int = 8, events: int = 20_000) -> MicroResult:
    """Events routed per second through a ``depth``-layer stack."""
    kernel = Kernel()
    qos = QoS("micro", [_InterestedLayer() for _ in range(depth)])
    channel = qos.create_channel("micro", kernel)
    channel.start()
    start = time.perf_counter()
    for _ in range(events):
        channel.insert(_HotEvent(), Direction.UP)
    elapsed = time.perf_counter() - start
    return MicroResult(f"routing throughput (depth={depth})",
                       events / elapsed, "events/s")


def route_optimization_gain(depth: int = 10,
                            events: int = 10_000) -> MicroResult:
    """Dispatch saving when only the top layer accepts the event type.

    Routes a :class:`_ColdEvent` through a stack where just one layer
    declared interest; reports dispatches per event (ideal: 1.0 regardless
    of stack depth).
    """
    kernel = Kernel()
    layers = [_UninterestedLayer() for _ in range(depth - 1)]
    layers.append(_InterestedLayer())
    qos = QoS("micro-opt", layers)
    channel = qos.create_channel("micro-opt", kernel)
    channel.start()
    before = kernel.dispatched_count
    for _ in range(events):
        channel.insert(_ColdEvent(), Direction.UP)
    dispatches = kernel.dispatched_count - before
    return MicroResult(f"dispatches/event, 1 of {depth} layers interested",
                       dispatches / events, "dispatches")


def instantiation_latency(rounds: int = 300) -> MicroResult:
    """Mean time to build + start + close a channel from its XML form."""
    _register_micro_layers()
    template = ChannelTemplate("micro-xml", tuple(
        [LayerSpec("micro_interested") for _ in range(6)]))
    xml = template.to_xml()
    kernel = Kernel()
    start = time.perf_counter()
    for index in range(rounds):
        parsed = ChannelTemplate.from_xml(xml)
        channel = parsed.instantiate(kernel,
                                     channel_name=f"micro-{index}")
        channel.close()
    elapsed = time.perf_counter() - start
    return MicroResult("XML parse+instantiate+close",
                       elapsed / rounds * 1e6, "µs/channel")


def run_all() -> list[MicroResult]:
    _register_micro_layers()
    return [routing_throughput(), route_optimization_gain(),
            instantiation_latency()]


def format_results(results: list[MicroResult]) -> str:
    rows = [[result.name, f"{result.value:,.1f}", result.unit]
            for result in results]
    return "A5 — kernel micro-costs\n" + format_table(
        ["metric", "value", "unit"], rows)


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    print(format_results(run_all()))


if __name__ == "__main__":
    main()
