"""Ablation A1 — the cost of adaptation (paper §3.3's procedure).

Measures, for growing group sizes, what one Core-driven reconfiguration
costs while the chat workload is running:

* **latency** — from the coordinator's decision to group-wide completion
  (every member deployed the new stack and acked);
* **control messages** — network-wide transmissions attributable to the
  switch (measured against a no-reconfiguration baseline window);
* **service interruption** — the longest gap between consecutive
  deliveries observed at a receiver across the switch window.

Expected shape: latency grows mildly with ``n`` (two multicast rounds plus
per-member flush acks), the message cost grows linearly, and the
application observes a bounded pause, not message loss.

Run with: ``python -m repro.experiments.reconfiguration``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.core.morpheus import build_morpheus_group
from repro.experiments.report import format_table
from repro.simnet.engine import SimEngine
from repro.simnet.network import Network

PAPER_GROUP_SIZES = (2, 3, 6, 9)


@dataclass
class ReconfigResult:
    """Measurements for one group size."""

    nodes: int
    latency_s: float
    switch_messages: int
    longest_gap_s: float
    messages_lost: int


def run_reconfiguration(num_nodes: int, *, rate: float = 10.0,
                        seed: int = 21) -> ReconfigResult:
    """Run the paper's hybrid scenario and measure its one adaptation.

    The group starts on the plain stack with a paced chat stream running;
    Core's detection of the hybrid context triggers the plain → Mecho
    switch, whose cost we isolate.
    """
    engine = SimEngine()
    network = Network(engine, seed=seed)
    network.add_fixed_node("fixed-0")
    for index in range(num_nodes - 1):
        network.add_mobile_node(f"mobile-{index}")
    nodes = build_morpheus_group(network, publish_interval=2.0,
                                 evaluate_interval=2.0,
                                 heartbeat_interval=5.0)
    sender = nodes["mobile-0"] if num_nodes > 1 else nodes["fixed-0"]
    observer = nodes["fixed-0"]

    deliveries: list[tuple[float, str]] = []
    observer.chat.on_message = lambda delivery: deliveries.append(
        (engine.now(), delivery.text))

    # Continuous workload across the whole window.
    interval = 1.0 / rate
    total_messages = 600
    for index in range(total_messages):
        engine.call_at(0.5 + index * interval,
                       lambda i=index: sender.send(f"m-{i}"))
    engine.run_until(0.5 + total_messages * interval + 20.0)

    core = nodes["fixed-0"].core
    started = core.last_reconfig_started_at
    completed = core.last_reconfig_completed_at
    assert started is not None and completed is not None, \
        "reconfiguration did not run"

    # Message cost of the switch: membership (flush) plus Core coordination
    # traffic — neither flows in steady state, so the per-event counters
    # attribute them cleanly.
    switch_events = ("MembershipMessage", "CoreMessage")
    switch_messages = sum(
        network.stats_of(node_id).sent_by_event[event]
        for node_id in network.node_ids() for event in switch_events)

    gaps = [b[0] - a[0] for a, b in zip(deliveries, deliveries[1:])]
    longest_gap = max(gaps) if gaps else 0.0
    expected = {f"m-{i}" for i in range(total_messages)}
    received = {text for _, text in deliveries}
    return ReconfigResult(
        nodes=num_nodes,
        latency_s=completed - started,
        switch_messages=switch_messages,
        longest_gap_s=longest_gap,
        messages_lost=len(expected - received))


def run_sweep(sizes=PAPER_GROUP_SIZES, **kwargs) -> list[ReconfigResult]:
    return [run_reconfiguration(size, **kwargs) for size in sizes]


def format_sweep(results: list[ReconfigResult]) -> str:
    rows = [[result.nodes, f"{result.latency_s:.3f}",
             result.switch_messages, f"{result.longest_gap_s:.3f}",
             result.messages_lost]
            for result in results]
    return ("A1 — reconfiguration cost (plain → Mecho under live chat)\n" +
            format_table(
                ["nodes", "latency (s)", "membership+core msgs",
                 "longest delivery gap (s)", "messages lost"], rows))


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        default=list(PAPER_GROUP_SIZES))
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args(argv)
    print(format_sweep(run_sweep(tuple(args.sizes), seed=args.seed)))


if __name__ == "__main__":
    main()
