"""Federation suite — multi-cell scenario runs with the invariants armed.

The federated counterpart of :mod:`repro.experiments.scenario_suite`:
executes the canned multi-cell scenarios (flash-crowd split, day/night
migration) under the always-on run invariants — cross-cell no-dup,
per-stream FIFO, view agreement, join liveness — and reports, per
scenario, the final cell map, gateway handovers and reshape history.

The ``--flash-crowd`` mode is the CI smoke for the federation's
headline configuration: a 200-member room as cells of 25 absorbing a
mobile crowd, splitting, re-bridging and keeping the room whole.  Any
invariant violation exits non-zero with the violation list on stderr.

Run with: ``python -m repro.experiments.federation_suite``
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, Optional

from repro.experiments.report import format_table
from repro.federation.library import FEDERATED_CANNED, federated_canned
from repro.scenarios.fuzz import ALWAYS_ON
from repro.scenarios.runner import ScenarioResult, run_scenario


def run_federated_suite(names: Optional[Iterable[str]] = None,
                        seed: int = 0, **overrides) -> list[ScenarioResult]:
    """Run the selected federated canned scenarios (all by default)."""
    import inspect
    selected = list(names) if names is not None else sorted(FEDERATED_CANNED)
    results = []
    for name in selected:
        accepted = inspect.signature(FEDERATED_CANNED[name]).parameters
        applicable = {key: value for key, value in overrides.items()
                      if key in accepted}
        results.append(run_scenario(federated_canned(name, **applicable),
                                    seed=seed, invariants=ALWAYS_ON))
    return results


def _reshape_count(result: ScenarioResult) -> int:
    return sum(1 for line in result.trace
               if " split " in line or " merge " in line)


def format_federated_suite(results: list[ScenarioResult]) -> str:
    rows = []
    for result in results:
        summary = result.summary()
        rows.append([
            summary["scenario"], summary["nodes"], len(result.cells),
            _reshape_count(result), summary["reconfigurations"],
            summary["delivered"], summary["lost"],
        ])
    return ("Federation suite — multi-cell adaptation under load\n" +
            format_table(
                ["scenario", "nodes", "cells", "reshapes", "reconfigs",
                 "delivered", "lost"], rows))


def run_flash_crowd(members: int, cell_size: int, *, seed: int = 0,
                    messages: int = 12) -> ScenarioResult:
    """The headline configuration at explicit scale, invariants armed."""
    scenario = federated_canned("flash_crowd_split", members=members,
                                cell_size=cell_size, messages=messages)
    start = time.perf_counter()
    result = run_scenario(scenario, seed=seed, invariants=ALWAYS_ON)
    wall = time.perf_counter() - start
    print(f"flash_crowd_split n={members} cells-of-{cell_size}: "
          f"{len(result.cells)} final cells, "
          f"{_reshape_count(result)} reshapes, "
          f"{result.delivered_packets} packets, {wall:.1f}s wall",
          file=sys.stderr)
    if not any(" split " in line for line in result.trace):
        raise SystemExit("flash crowd never forced a split — "
                         "the threshold sweep is dead")
    if set(result.gateways) != set(result.cells):
        raise SystemExit(f"unbridged cells: gateways {result.gateways} "
                         f"vs cells {sorted(result.cells)}")
    return result


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", nargs="*",
                        default=sorted(FEDERATED_CANNED),
                        choices=sorted(FEDERATED_CANNED))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--members", type=int, default=None,
                        help="scale the scenarios' total membership")
    parser.add_argument("--messages", type=int, default=None,
                        help="scale the chat workload")
    parser.add_argument("--trace", action="store_true",
                        help="print each scenario's event trace")
    parser.add_argument("--flash-crowd", type=int, nargs=2, default=None,
                        metavar=("MEMBERS", "CELL_SIZE"),
                        help="run only flash_crowd_split at this scale "
                             "(the CI smoke: 200 25)")
    args = parser.parse_args(argv)

    if args.flash_crowd is not None:
        members, cell_size = args.flash_crowd
        result = run_flash_crowd(members, cell_size, seed=args.seed,
                                 messages=args.messages or 12)
        print(format_federated_suite([result]))
        return

    overrides = {}
    if args.members is not None:
        overrides["members"] = args.members
    if args.messages is not None:
        overrides["messages"] = args.messages
    results = run_federated_suite(args.scenarios, seed=args.seed,
                                  **overrides)
    print(format_federated_suite(results))
    if args.trace:
        for result in results:
            print(f"--- {result.name} (seed {result.seed}) ---")
            print("\n".join(result.trace))


if __name__ == "__main__":
    main()
