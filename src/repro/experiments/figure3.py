"""Figure 3: messages sent by the mobile node, adaptive vs non-adaptive.

The paper's evaluation (§4): a chat application over the group suite,
scenarios with 2, 3, 6 and 9 devices (one fixed host plus mobile devices),
*"each run consisted of the exchange of 40.000 messages at the pace of
10 msg/s.  We have counted all the messages transmitted by the mobile
device, including data and control messages."*

Two configurations per scenario:

* **not optimized** — the plain stack (best-effort multicast as a sequence
  of point-to-point messages), no Morpheus;
* **optimized** — the full Morpheus architecture: the run starts on the
  plain stack, Cocaditem disseminates device types, Core reconfigures to
  Mecho, and the workload rides the adapted stack.

Expected shape (read off the paper's plot): the non-optimized line grows
linearly, reaching ≈ (n−1)·40,000 + control ≈ 320k–350k messages at n = 9;
the optimized line stays approximately flat at ≈ 40,000 + control; at n = 2
the two coincide.

Run the paper-scale experiment with::

    python -m repro.experiments.figure3

(takes a few minutes; ``--messages 4000`` for a quick pass).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional

from repro.core.morpheus import build_morpheus_group, build_plain_group
from repro.experiments.report import format_table
from repro.simnet.engine import SimEngine
from repro.simnet.network import Network

#: The scenario sizes of the paper's Figure 3.
PAPER_NODE_COUNTS = (2, 3, 6, 9)
PAPER_MESSAGES = 40_000
PAPER_RATE = 10.0

#: The mobile device whose transmissions are counted.
MEASURED_NODE = "mobile-0"


@dataclass
class Figure3Config:
    """Experiment parameters (defaults = the paper's)."""

    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS
    messages: int = PAPER_MESSAGES
    rate: float = PAPER_RATE
    seed: int = 42
    #: Settling time before the workload starts (adaptation window).
    warmup: float = 30.0
    #: Drain time after the last send.
    drain: float = 20.0
    heartbeat_interval: float = 5.0
    publish_interval: float = 10.0
    evaluate_interval: float = 5.0


@dataclass
class ScenarioResult:
    """Counters for one (n, configuration) run."""

    nodes: int
    optimized: bool
    sent_total: int
    sent_data: int
    sent_control: int
    fixed_sent_total: int
    delivered_everywhere: bool
    sent_by_event: dict = field(default_factory=dict)


def _build_network(num_nodes: int, seed: int) -> tuple[SimEngine, Network]:
    """1 fixed host + (n-1) mobile devices, as in the paper's hybrid runs."""
    engine = SimEngine()
    network = Network(engine, seed=seed)
    network.add_fixed_node("fixed-0")
    for index in range(num_nodes - 1):
        network.add_mobile_node(f"mobile-{index}")
    return engine, network


def run_scenario(num_nodes: int, optimized: bool,
                 config: Optional[Figure3Config] = None) -> ScenarioResult:
    """Run one Figure 3 cell and return the mobile node's counters."""
    config = config or Figure3Config()
    engine, network = _build_network(num_nodes, config.seed)
    if optimized:
        nodes = build_morpheus_group(
            network,
            heartbeat_interval=config.heartbeat_interval,
            publish_interval=config.publish_interval,
            evaluate_interval=config.evaluate_interval)
    else:
        nodes = build_plain_group(
            network, heartbeat_interval=config.heartbeat_interval)
    sender = nodes[MEASURED_NODE]

    engine.run_until(config.warmup)

    interval = 1.0 / config.rate
    for index in range(config.messages):
        engine.call_at(config.warmup + index * interval,
                       lambda i=index: sender.send(f"chat-{i}"))
    end = config.warmup + config.messages * interval + config.drain
    engine.run_until(end)

    expected = [f"chat-{i}" for i in range(config.messages)]
    delivered_everywhere = all(
        node.chat.texts() == expected for node in nodes.values())
    stats = network.stats_of(MEASURED_NODE)
    return ScenarioResult(
        nodes=num_nodes, optimized=optimized,
        sent_total=stats.sent_total, sent_data=stats.sent_data,
        sent_control=stats.sent_control,
        fixed_sent_total=network.stats_of("fixed-0").sent_total,
        delivered_everywhere=delivered_everywhere,
        sent_by_event=dict(stats.sent_by_event))


@dataclass
class Figure3Point:
    """One x-axis position of the figure."""

    nodes: int
    optimized: ScenarioResult
    not_optimized: ScenarioResult


def run_figure3(config: Optional[Figure3Config] = None) -> list[Figure3Point]:
    """Regenerate the full figure: both series at every scenario size."""
    config = config or Figure3Config()
    points = []
    for num_nodes in config.node_counts:
        points.append(Figure3Point(
            nodes=num_nodes,
            optimized=run_scenario(num_nodes, optimized=True, config=config),
            not_optimized=run_scenario(num_nodes, optimized=False,
                                       config=config)))
    return points


def format_figure3(points: list[Figure3Point], messages: int) -> str:
    """Render the figure's series as the paper's rows."""
    rows = []
    for point in points:
        rows.append([
            point.nodes,
            point.optimized.sent_total,
            point.not_optimized.sent_total,
            f"{point.not_optimized.sent_total / max(point.optimized.sent_total, 1):.2f}x",
            point.optimized.sent_control,
            point.not_optimized.sent_control,
        ])
    table = format_table(
        ["devices", "optimized (sent)", "not optimized (sent)", "gain",
         "opt control", "non-opt control"], rows)
    header = (f"Figure 3 — messages sent by the mobile node "
              f"({messages:,} chat messages at 10 msg/s)\n")
    return header + table


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=PAPER_MESSAGES,
                        help="chat messages per run (paper: 40000)")
    parser.add_argument("--nodes", type=int, nargs="*",
                        default=list(PAPER_NODE_COUNTS),
                        help="scenario sizes (paper: 2 3 6 9)")
    parser.add_argument("--rate", type=float, default=PAPER_RATE)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    config = Figure3Config(node_counts=tuple(args.nodes),
                           messages=args.messages, rate=args.rate,
                           seed=args.seed)
    points = run_figure3(config)
    print(format_figure3(points, config.messages))
    for point in points:
        for result in (point.optimized, point.not_optimized):
            if not result.delivered_everywhere:
                raise SystemExit(
                    f"delivery check FAILED for n={result.nodes} "
                    f"optimized={result.optimized}")
    print("\nAll runs delivered every chat message at every node.")


if __name__ == "__main__":
    main()
