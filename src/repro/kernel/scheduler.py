"""The per-node kernel: event queue and run-to-completion dispatch.

Each node of the distributed system runs one :class:`Kernel` instance hosting
all of that node's channels (data channels, the Cocaditem/Core control
channel, ...).  Events are dispatched FIFO across channels, breadth-first —
an event forwarded with :meth:`~repro.kernel.events.Event.go` is enqueued
behind events that are already pending, exactly as in Appia's scheduler.

The kernel is single-threaded and *reactive*: any insertion (a network packet
arriving, a timer firing, the application sending) triggers a run-to-
completion dispatch loop unless one is already active.  Within one virtual
instant every causally triggered event is processed before control returns.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.kernel.clock import Clock, ManualClock
from repro.kernel.events import Event, TimerEvent
from repro.kernel.group import GroupRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.channel import Channel


class Kernel:
    """Event scheduler shared by all channels of one node.

    Args:
        clock: virtual clock backing timers; defaults to a private
            :class:`~repro.kernel.clock.ManualClock` (convenient in tests).
        name: diagnostic label, usually the hosting node's identifier.
    """

    def __init__(self, clock: Optional[Clock] = None, name: str = "") -> None:
        self.clock: Clock = clock if clock is not None else ManualClock()
        self.name = name
        self._queue: deque[Event] = deque()
        self._dispatching = False
        self._channels: list["Channel"] = []
        #: Named groups this kernel hosts, keyed by the group scope of
        #: each registered channel's name (flat channels live under "").
        self.groups = GroupRegistry()
        #: Total events dispatched; exposed for the kernel micro-benchmarks.
        self.dispatched_count = 0
        #: Timer events among them.  Benchmarks use the split to attribute
        #: dispatch-loop load to timer ticks (probe retries, heartbeats)
        #: versus traffic — the quantity the one-shot timer work targets.
        self.timer_dispatched_count = 0

    # -- clock convenience ---------------------------------------------------

    def now(self) -> float:
        """Current virtual time of this node's clock."""
        return self.clock.now()

    # -- channel registry ----------------------------------------------------

    def _register_channel(self, channel: "Channel") -> None:
        if channel not in self._channels:
            self._channels.append(channel)
            self.groups.add(channel)

    def _unregister_channel(self, channel: "Channel") -> None:
        if channel in self._channels:
            self._channels.remove(channel)
            self.groups.remove(channel)

    @property
    def channels(self) -> tuple["Channel", ...]:
        """Channels currently registered with this kernel."""
        return tuple(self._channels)

    def find_channel(self, name: str) -> Optional["Channel"]:
        """Return the registered channel called ``name``, if any."""
        for channel in self._channels:
            if channel.name == name:
                return channel
        return None

    # -- dispatch --------------------------------------------------------------

    def enqueue(self, event: Event) -> None:
        """Queue ``event`` for dispatch and run to completion if idle.

        Re-entrant insertions (a handler forwarding or creating events) only
        append; the already-active dispatch loop drains them.
        """
        self._queue.append(event)
        if not self._dispatching:
            self._run()

    def _run(self) -> None:
        self._dispatching = True
        try:
            while self._queue:
                event = self._queue.popleft()
                channel = event.channel
                if channel is None:  # pragma: no cover - defensive
                    continue
                channel._dispatch(event)
                self.dispatched_count += 1
                if isinstance(event, TimerEvent):
                    self.timer_dispatched_count += 1
        finally:
            self._dispatching = False

    @property
    def idle(self) -> bool:
        """True when no events are pending."""
        return not self._queue
