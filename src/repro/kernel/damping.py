"""Flap damping and windowed budgets — rate-control primitives.

Two small, deterministic mechanisms shared by the adaptation governor
(:mod:`repro.core.rules`) and the heartbeat failure detector:

* :class:`WindowBudget` — at most ``limit`` admissions per sliding
  ``window``; exhausting the budget freezes further admissions for a
  ``cooldown``.  Used to cap how often the failure detector's observation
  windows may be reset by path changes, and how many reconfigurations the
  governor admits per window.
* :class:`FlapDamper` — watches a decision value (a relay id, a plan
  name); a value that *flips* more than ``limit`` times inside ``window``
  freezes the decision for ``cooldown``.  Used by the governor so a
  relay/plan oscillating under bursty loss cannot thrash the stack.

Both work on a caller-supplied monotonic clock (seconds of simulated time
or abstract evaluation ticks — the units only need to be consistent), hold
O(limit) state, and are pure bookkeeping: no timers, no events, no
randomness, so replays stay bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional


class WindowBudget:
    """Sliding-window admission budget with a freeze on exhaustion.

    ``limit <= 0`` disables the budget (everything admitted) so callers
    can thread configuration through without branching.
    """

    def __init__(self, limit: int, window: float, cooldown: float) -> None:
        self.limit = int(limit)
        self.window = float(window)
        self.cooldown = float(cooldown)
        self._admitted: deque[float] = deque()
        self._frozen_until: Optional[float] = None
        #: Admissions refused while frozen or over budget (diagnostics).
        self.refused = 0

    def frozen(self, now: float) -> bool:
        return self._frozen_until is not None and now < self._frozen_until

    def admit(self, now: float) -> bool:
        """Try to spend one unit of budget at ``now``."""
        if self.limit <= 0:
            return True
        if self.frozen(now):
            self.refused += 1
            return False
        self._frozen_until = None
        while self._admitted and now - self._admitted[0] > self.window:
            self._admitted.popleft()
        if len(self._admitted) >= self.limit:
            self._frozen_until = now + self.cooldown
            self.refused += 1
            return False
        self._admitted.append(now)
        return True


class FlapDamper:
    """Freeze a decision that flips more than ``limit`` times per window.

    :meth:`observe` is called with every (re)computed decision value; a
    *flip* is a change from the previously observed value.  While frozen,
    :meth:`observe` keeps reporting ``True`` and the caller is expected to
    hold its previous decision (or decline to act).  ``limit <= 0``
    disables damping.
    """

    def __init__(self, limit: int, window: float, cooldown: float) -> None:
        self.limit = int(limit)
        self.window = float(window)
        self.cooldown = float(cooldown)
        self._last: Any = _UNSET
        self._flips: deque[float] = deque()
        self._frozen_until: Optional[float] = None
        #: Flips swallowed while frozen (diagnostics).
        self.suppressed = 0

    def frozen(self, now: float) -> bool:
        return self._frozen_until is not None and now < self._frozen_until

    def observe(self, value: Any, now: float) -> bool:
        """Record ``value`` at ``now``; return True while damping."""
        if self.limit <= 0:
            self._last = value
            return False
        if self.frozen(now):
            self.suppressed += 1
            return True
        self._frozen_until = None
        while self._flips and now - self._flips[0] > self.window:
            self._flips.popleft()
        if self._last is not _UNSET and value != self._last:
            self._flips.append(now)
            if len(self._flips) > self.limit:
                self._frozen_until = now + self.cooldown
                self._flips.clear()
                self.suppressed += 1
                return True
        self._last = value
        return False


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()
