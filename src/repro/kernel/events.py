"""Typed events exchanged between protocol layers.

Events are the only interaction mechanism between layers (paper §3.1): each
layer declares which event types it accepts and which it provides, and the
kernel computes, per event type, the optimized route through the stack — a
session that did not declare interest in a type is never visited by events
of that type.

The lifecycle of an event mirrors Appia's:

1. a session creates the event and injects it with
   :meth:`~repro.kernel.session.Session.send_up` /
   :meth:`~repro.kernel.session.Session.send_down` (or the channel inserts
   it at an endpoint, e.g. a packet arriving from the network);
2. the channel computes the event's route and enqueues it;
3. each session on the route receives :meth:`handle(event)
   <repro.kernel.session.Session.handle>` and *explicitly* calls
   :meth:`Event.go` to forward the event to the next hop — not calling
   ``go`` consumes the event.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Optional

from repro.kernel.errors import EventRoutingError
from repro.kernel.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.kernel.channel import Channel
    from repro.kernel.session import Session

_event_sequence = itertools.count()


class Direction(enum.Enum):
    """Direction of travel of an event through the stack."""

    UP = "up"
    DOWN = "down"

    def invert(self) -> "Direction":
        """Return the opposite direction."""
        return Direction.DOWN if self is Direction.UP else Direction.UP


class Event:
    """Base class of every kernel event.

    Attributes:
        channel: the channel the event is travelling through (set on insert).
        direction: :class:`Direction` of travel (set on insert).
        source_session: the session that injected the event, or ``None`` for
            endpoint insertions (network arrivals, channel lifecycle).
    """

    def __init__(self) -> None:
        self.channel: Optional["Channel"] = None
        self.direction: Optional[Direction] = None
        self.source_session: Optional["Session"] = None
        self._route: list["Session"] = []
        self._index: int = 0
        self._armed: bool = False  # True while parked at a session, pre-go()
        self._seq = next(_event_sequence)

    # -- kernel-internal ---------------------------------------------------

    def _bind(self, channel: "Channel", direction: Direction,
              route: list["Session"],
              source: Optional["Session"]) -> None:
        self.channel = channel
        self.direction = direction
        self.source_session = source
        self._route = route
        self._index = 0
        self._armed = False

    def _current_session(self) -> Optional["Session"]:
        if 0 <= self._index < len(self._route):
            return self._route[self._index]
        return None

    # -- public API --------------------------------------------------------

    def go(self) -> None:
        """Forward this event to the next session on its route.

        Must be called at most once per hop; a second call for the same hop
        raises :class:`~repro.kernel.errors.EventRoutingError`.  The call may
        be deferred (e.g. a layer may hold an event and release it from a
        timer handler), which is how blocking layers implement quiescence.
        """
        if self.channel is None:
            raise EventRoutingError("event was never inserted into a channel")
        if not self._armed:
            raise EventRoutingError(
                f"go() called twice (or before delivery) for {self!r}")
        self._armed = False
        self._index += 1
        self.channel._continue(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        direction = self.direction.value if self.direction else "?"
        return f"<{type(self).__name__} #{self._seq} {direction}>"


class ChannelEvent(Event):
    """Base for channel lifecycle events, implicitly accepted by all layers."""


class ChannelInit(ChannelEvent):
    """First event of a channel; travels bottom → top when the channel starts.

    Sessions initialise their per-channel state when they see this event.
    """


class ChannelClose(ChannelEvent):
    """Last event of a channel; travels top → bottom when the channel closes."""


class SendableEvent(Event):
    """An event that can cross the network.

    Carries a :class:`~repro.kernel.message.Message` plus source/destination
    addresses.  Addresses are opaque to the kernel; the simulator uses node
    identifiers.  ``dest`` may be a single address, a tuple of addresses or a
    group identifier, depending on the layer that interprets it.

    Subclasses that represent protocol-internal traffic set
    ``traffic_class = "control"`` so experiment counters can separate data
    from control messages (the paper's Figure 3 counts both; footnote 1
    breaks the adaptive version's overhead down).

    Wire contract: subclasses must keep the ``(message, source, dest)``
    constructor signature — the simulated transport reconstructs events on
    delivery by calling ``type(event)(message=..., source=..., dest=...)``.
    Protocol state travels in message headers, never in extra constructor
    arguments.
    """

    #: Experiment accounting tag: ``"data"`` or ``"control"``.
    traffic_class = "data"

    def __init__(self, message: Optional[Message] = None,
                 source: Any = None, dest: Any = None) -> None:
        super().__init__()
        self.message: Message = message if message is not None else Message()
        self.source = source
        self.dest = dest

    def clone(self) -> "SendableEvent":
        """Return an unbound copy with an O(1) copy-on-write message handle.

        Used by fan-out layers (best-effort multicast, Mecho relaying) to
        emit one wire message per destination: the clones share the header
        chain structurally, so N-way fan-out costs N handles, not N deep
        copies (see :mod:`repro.kernel.message` for the ownership contract).
        """
        dup = type(self)(message=self.message.copy(),
                         source=self.source, dest=self.dest)
        return dup


class EchoEvent(Event):
    """Bounces at the end of its route, then delivers its payload event back.

    When an ``EchoEvent`` falls off the end of the stack the channel re-inserts
    the wrapped event travelling in the opposite direction from that endpoint.
    Layers use this to probe the composition below/above them.
    """

    def __init__(self, wrapped: Event) -> None:
        super().__init__()
        self.wrapped = wrapped


class TimerEvent(Event):
    """Delivered to the session that armed the timer when its delay elapses.

    Timer events do not travel the stack: their route contains only the
    requesting session.
    """

    def __init__(self, tag: Any = None) -> None:
        super().__init__()
        self.tag = tag
        #: Virtual time at which the timer fired (set by the channel).
        self.fired_at: float = 0.0


class PeriodicTimerEvent(TimerEvent):
    """A timer event re-armed automatically every ``interval`` until cancelled."""

    def __init__(self, tag: Any = None, interval: float = 1.0) -> None:
        super().__init__(tag)
        self.interval = interval


class BackoffTimerEvent(TimerEvent):
    """A one-shot that re-arms itself on fire, stretching its interval.

    The first fire happens ``interval`` seconds after arming; each re-arm
    multiplies the interval by ``factor``, capped at ``max_interval``.
    With ``factor=1.0`` this degenerates to a plain rearm-on-fire one-shot
    (a periodic timer expressed as consecutive one-shots).

    This is the kernel primitive behind retry/probe loops: instead of a
    forever-armed periodic tick that counts down in protocol state (two
    scheduler events per second per node for the lifetime of the channel),
    the timer itself fires exactly once per attempt — a permanently dead
    peer costs one timer event per probe, however far apart the probes
    back off.  Cancel the handle returned by
    :meth:`~repro.kernel.session.Session.set_backoff_timer` to stop the
    loop; ``attempt`` counts completed fires for the consuming session.
    """

    def __init__(self, tag: Any = None, interval: float = 1.0,
                 max_interval: Optional[float] = None,
                 factor: float = 2.0) -> None:
        super().__init__(tag)
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        if factor < 1.0:
            raise ValueError(f"shrinking backoff factor: {factor}")
        if max_interval is not None and max_interval <= 0:
            # A zero cap would re-arm at the same virtual instant forever
            # (a livelock); reject it here rather than hang mid-run.
            raise ValueError(f"non-positive max_interval: {max_interval}")
        self.interval = interval
        self.max_interval = max_interval
        self.factor = factor
        #: Completed fires (0 while waiting for the first).
        self.attempt = 0

    def advance(self) -> float:
        """Account one fire and return the next interval (kernel-internal)."""
        self.attempt += 1
        interval = self.interval * self.factor
        if self.max_interval is not None:
            interval = min(interval, self.max_interval)
        self.interval = interval
        return interval


class DebugEvent(ChannelEvent):
    """Traverses the full stack collecting a description of each session.

    Like all :class:`ChannelEvent` subclasses it is implicitly accepted by
    every layer, so it always sees the complete composition.
    """

    def __init__(self) -> None:
        super().__init__()
        self.lines: list[str] = []
