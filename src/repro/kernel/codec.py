"""Compact binary wire codec for payloads crossing the simulated network.

At the wire boundary (:meth:`~repro.kernel.message.Message.wire_copy`, used
by the transport on every send) a payload is frozen into a compact byte
string instead of the object-graph snapshot the pre-codec path rebuilt per
transmission.  The encoding is the seam the ROADMAP's real-transport
backend needs (a socket needs real framing) and what a sharded engine
would ship across shards.

Wire format — one tagged value, recursively::

    value   := small_int | tagged
    small_int := byte with the top bit set; encodes ints 0..127 inline
    tagged  := tag:byte payload

    0x00 None          0x01 True           0x02 False
    0x03 int           zigzag varint
    0x04 float         8-byte IEEE-754 big-endian
    0x05 str           varint byte-length + UTF-8
    0x06 interned str  varint key-table id (see below)
    0x07 bytes         varint length + raw
    0x08 bytearray     varint length + raw
    0x09 list          varint count + values
    0x0A tuple         varint count + values
    0x0B set           varint count + values
    0x0C frozenset     varint count + values
    0x0D dict          varint count + (key value) pairs
    0x0E message       varint header count + headers bottom→top + payload
    0x0F wire blob     varint length + raw + varint charge
                       (an already-encoded nested payload re-embedded
                       verbatim — retransmission stores forward received
                       frozen bytes without a decode/re-encode round trip)

Varints are LEB128 (7 bits per byte, little-endian groups, high bit =
continuation); signed integers are zigzag-mapped first.

**Key interning.**  Header and payload dictionaries across the protocol
suite reuse a small vocabulary of string keys ("kind", "epoch", "seqno",
…).  A registry-backed key table maps each to a small integer so repeated
header dicts serialize the key as one or two bytes (tag 0x06 + varint id).
The table is part of the wire contract: ids are assigned in registration
order, the built-in vocabulary is registered at import time, and any
extension (:func:`register_wire_key`) must happen identically on every
node before traffic flows — in-process simulation gets this for free; a
real transport would ship the table in a hello frame.

**Byte accounting.**  The simulation's byte charges
(:func:`~repro.kernel.message.estimate_size`) feed link delay, loss draws
and battery drain, so they are the accounting source of truth and must not
drift with encoding details.  :func:`encode_payload` therefore computes the
legacy charge *in the same traversal* that emits the bytes and returns
``(blob, charge)`` — by construction ``charge == estimate_size(payload)``,
asserted (together with round-trip fidelity) when :data:`PARITY` is on.
The *encoded* length is tracked separately (``wire_bytes`` counters in
:mod:`repro.simnet.stats`), which is how the codec's compression is
measured without perturbing a single timing.

Payload types outside the table above (custom classes, dataclasses inside
payloads) raise :class:`CodecError`; the caller falls back to the legacy
object-graph snapshot, so exotic payloads keep working at the old cost.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Callable

__all__ = [
    "CodecError", "PARITY", "decode_payload", "encode_payload",
    "register_wire_key", "resolve_event_class", "set_parity",
    "wire_key_table",
]


class CodecError(Exception):
    """Payload not representable in the compact wire format."""


#: Parity mode: every encode asserts the computed charge matches the legacy
#: estimate and that the blob decodes back to an equal value.  Enabled in
#: the tier-1 parity test and by ``REPRO_CODEC_PARITY=1``.
PARITY = bool(os.environ.get("REPRO_CODEC_PARITY"))


def set_parity(enabled: bool) -> None:
    """Toggle parity checking (see :data:`PARITY`)."""
    global PARITY
    PARITY = bool(enabled)


# -- key interning ------------------------------------------------------------

#: Registration-ordered key table.  Order is the wire contract: id N is the
#: N-th registered key, on every node.
_KEY_LIST: list[str] = []
_KEY_IDS: dict[str, int] = {}


def register_wire_key(key: str) -> int:
    """Register ``key`` in the interning table; returns its id.

    Idempotent.  Must be called in identical order everywhere before any
    traffic is exchanged (module-import registration satisfies this).
    """
    existing = _KEY_IDS.get(key)
    if existing is not None:
        return existing
    key_id = len(_KEY_LIST)
    _KEY_LIST.append(key)
    _KEY_IDS[key] = key_id
    return key_id


def wire_key_table() -> tuple[str, ...]:
    """The current key table, id order (diagnostics and tests)."""
    return tuple(_KEY_LIST)


#: Built-in vocabulary: dict keys and short enum-like values the protocol
#: suite sends on nearly every packet.  Extend only by appending (the wire
#: contract pins existing ids).
for _key in (
    "kind", "from", "epoch", "seqno", "sender", "seq", "msg", "view",
    "members", "config_id", "lineage", "name", "xml", "text", "tag",
    "cut", "coordinator", "view_id", "announcer", "incarnation",
    "group", "src", "dst", "origin", "target", "base", "joiners",
    "leavers", "stamp", "ballot", "round", "ts", "data", "payload",
    "hops", "ttl", "id", "chat", "hb", "nack", "sync", "advert",
    "reconfig", "reconfig_done",
):
    register_wire_key(_key)
del _key


# -- varints ------------------------------------------------------------------

def _append_varint(out: bytearray, value: int) -> None:
    """LEB128-append non-negative ``value`` to ``out``."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        try:
            byte = buf[pos]
        except IndexError:
            raise CodecError("truncated varint") from None
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- encoding -----------------------------------------------------------------

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from

_SEQ_TAGS = {list: 0x09, tuple: 0x0A, set: 0x0B, frozenset: 0x0C}


def _encode_str(out: bytearray, value: str) -> int:
    key_id = _KEY_IDS.get(value)
    encoded = value.encode("utf-8")
    if key_id is not None:
        out.append(0x06)
        _append_varint(out, key_id)
    else:
        out.append(0x05)
        _append_varint(out, len(encoded))
        out += encoded
    return len(encoded)  # legacy charge: UTF-8 length, interned or not


def _encode(out: bytearray, obj: Any) -> int:
    """Append ``obj``'s wire form to ``out``; return its legacy charge."""
    kind = type(obj)
    if kind is str:
        return _encode_str(out, obj)
    if kind is bool:
        out.append(0x01 if obj else 0x02)
        return 1
    if kind is int:
        if 0 <= obj <= 0x7F:
            out.append(0x80 | obj)
        else:
            out.append(0x03)
            _append_varint(out, _zigzag(obj))
        return 4
    if obj is None:
        out.append(0x00)
        return 1
    if kind is float:
        out.append(0x04)
        out += _pack_double(obj)
        return 8
    if kind is bytes or kind is bytearray:
        out.append(0x07 if kind is bytes else 0x08)
        _append_varint(out, len(obj))
        out += obj
        return len(obj)
    if kind is dict:
        out.append(0x0D)
        _append_varint(out, len(obj))
        charge = 2
        for key, value in obj.items():
            charge += _encode(out, key)
            charge += _encode(out, value)
        return charge
    seq_tag = _SEQ_TAGS.get(kind)
    if seq_tag is not None:
        out.append(seq_tag)
        _append_varint(out, len(obj))
        charge = 2
        for item in obj:
            charge += _encode(out, item)
        return charge
    # Structured leaves the hot loop never sees: nested messages (carried
    # by retransmission stores and relays) and re-embedded frozen blobs.
    from repro.kernel.message import Message, WirePayload
    if kind is WirePayload:
        out.append(0x0F)
        blob = obj.blob
        _append_varint(out, len(blob))
        out += blob
        _append_varint(out, obj.size_bytes)
        return obj.size_bytes
    if kind is Message:
        out.append(0x0E)
        headers = obj.headers
        _append_varint(out, len(headers))
        charge = 0
        for header in headers:
            charge += max(_encode(out, header), 1) + 1  # +1 framing byte
        payload = obj._payload
        if type(payload) is not WirePayload:
            # Route through the copy-family cache so every relay and
            # retransmission embedding this message shares one payload
            # encode — the nested-snapshot sharing the object path had.
            payload = obj.wire_copy()._payload
        charge += _encode(out, payload)
        return charge
    if isinstance(obj, type):
        # Event-class references: retransmission stores, gossip relays and
        # fragment reassembly all ship the original event's class so the
        # receiver can re-instantiate it.  The class's unique ``__name__``
        # is already the wire contract (datagram frames resolve event
        # classes the same way); the charge mirrors the legacy estimate
        # for a class object.
        from repro.kernel.events import SendableEvent
        if issubclass(obj, SendableEvent):
            from repro.kernel.message import estimate_size
            out.append(0x10)
            encoded = obj.__name__.encode("utf-8")
            _append_varint(out, len(encoded))
            out += encoded
            return estimate_size(obj)
    raise CodecError(f"cannot wire-encode {kind.__name__}")


def encode_payload(obj: Any) -> tuple[bytes, int]:
    """Encode ``obj`` for the wire.

    Returns ``(blob, charge)`` where ``charge`` is the legacy
    :func:`~repro.kernel.message.estimate_size` of ``obj``, computed during
    the same traversal — the accounting source of truth stays byte-for-byte
    what it was before the codec existed.

    Raises:
        CodecError: for types outside the wire format (callers fall back
            to the legacy object snapshot).
    """
    out = bytearray()
    charge = _encode(out, obj)
    blob = bytes(out)
    if PARITY:
        _assert_parity(obj, blob, charge)
    return blob, charge


# -- decoding -----------------------------------------------------------------

def _decode(buf: bytes, pos: int) -> tuple[Any, int]:
    try:
        tag = buf[pos]
    except IndexError:
        raise CodecError("truncated value") from None
    pos += 1
    if tag & 0x80:
        return tag & 0x7F, pos
    if tag == 0x00:
        return None, pos
    if tag == 0x01:
        return True, pos
    if tag == 0x02:
        return False, pos
    if tag == 0x03:
        raw, pos = _read_varint(buf, pos)
        return _unzigzag(raw), pos
    if tag == 0x04:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        return _unpack_double(buf, pos)[0], pos + 8
    if tag == 0x05:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated string")
        return buf[pos:end].decode("utf-8"), end
    if tag == 0x06:
        key_id, pos = _read_varint(buf, pos)
        try:
            return _KEY_LIST[key_id], pos
        except IndexError:
            raise CodecError(f"unknown interned key id {key_id}") from None
    if tag == 0x07 or tag == 0x08:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated bytes")
        raw = buf[pos:end]
        return (raw if tag == 0x07 else bytearray(raw)), end
    if 0x09 <= tag <= 0x0C:
        count, pos = _read_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(buf, pos)
            items.append(item)
        build: Callable = (list, tuple, set, frozenset)[tag - 0x09]
        return (items if tag == 0x09 else build(items)), pos
    if tag == 0x0D:
        count, pos = _read_varint(buf, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode(buf, pos)
            value, pos = _decode(buf, pos)
            result[key] = value
        return result, pos
    if tag == 0x0E:
        from repro.kernel.message import Message
        count, pos = _read_varint(buf, pos)
        headers = []
        for _ in range(count):
            header, pos = _decode(buf, pos)
            headers.append(header)
        payload, pos = _decode(buf, pos)
        return Message(payload, headers=headers), pos
    if tag == 0x0F:
        from repro.kernel.message import WirePayload
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated embedded blob")
        blob = buf[pos:end]
        charge, pos = _read_varint(buf, end)
        return WirePayload(blob, charge), pos
    if tag == 0x10:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated class name")
        try:
            name = buf[pos:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"malformed class name: {exc}") from None
        return resolve_event_class(name), end
    raise CodecError(f"unknown wire tag 0x{tag:02X}")


#: Name → class map over the SendableEvent subclass tree, rebuilt once on
#: a miss (classes defined after the first decode are still found).
_EVENT_CLASS_CACHE: dict[str, type] = {}


def resolve_event_class(name: str) -> type:
    """Resolve a wire event-class name against the SendableEvent tree.

    Unique ``__name__``s are the :class:`SendableEvent` wire contract;
    both the datagram frame header and embedded class references (tag
    ``0x10``) resolve through here.

    Raises:
        CodecError: for names matching no known sendable event class.
    """
    cls = _EVENT_CLASS_CACHE.get(name)
    if cls is None:
        from repro.kernel.events import SendableEvent
        _EVENT_CLASS_CACHE.clear()
        stack: list[type] = [SendableEvent]
        while stack:
            candidate = stack.pop()
            _EVENT_CLASS_CACHE[candidate.__name__] = candidate
            stack.extend(candidate.__subclasses__())
        cls = _EVENT_CLASS_CACHE.get(name)
        if cls is None:
            raise CodecError(f"unknown wire event class {name!r}")
    return cls


def decode_payload(blob: bytes) -> Any:
    """Decode one wire value; the whole blob must be consumed."""
    value, pos = _decode(blob, 0)
    if pos != len(blob):
        raise CodecError(f"trailing bytes after value ({len(blob) - pos})")
    return value


# -- parity -------------------------------------------------------------------

def _assert_parity(obj: Any, blob: bytes, charge: int) -> None:
    from repro.kernel.message import estimate_size
    legacy = estimate_size(obj)
    if charge != legacy:
        raise AssertionError(
            f"codec charge {charge} != legacy estimate {legacy} "
            f"for {obj!r}")
    decoded = decode_payload(blob)
    if decoded != obj:
        raise AssertionError(
            f"codec round-trip mismatch: {obj!r} -> {decoded!r}")
