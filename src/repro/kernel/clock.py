"""Virtual clocks driving kernel timers.

The kernel never reads the wall clock: all timing flows through a
:class:`Clock`, which in production is backed by the discrete-event engine of
:mod:`repro.simnet` and in unit tests by :class:`ManualClock`.  This is what
makes whole-system runs deterministic and repeatable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Protocol


class ClockHandle(Protocol):
    """Handle returned by :meth:`Clock.call_later`; supports cancellation."""

    def cancel(self) -> None:  # pragma: no cover - protocol declaration
        ...


class Clock(Protocol):
    """Minimal virtual-time interface required by the kernel."""

    def now(self) -> float:  # pragma: no cover - protocol declaration
        """Return the current virtual time in seconds."""
        ...

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> ClockHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        ...  # pragma: no cover - protocol declaration


class _ManualEntry:
    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_ManualEntry") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class ManualClock:
    """A hand-cranked clock for unit tests.

    Time only moves when :meth:`advance` (or :meth:`run_until_idle`) is
    called; callbacks scheduled at the same instant run in scheduling order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._heap: list[_ManualEntry] = []
        self._seq = itertools.count()

    def now(self) -> float:
        """Return the current virtual time."""
        return self._now

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> _ManualEntry:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = _ManualEntry(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return entry

    def advance(self, seconds: float) -> int:
        """Advance virtual time, firing due callbacks. Returns count fired."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        deadline = self._now + seconds
        fired = 0
        while self._heap and self._heap[0].when <= deadline:
            entry = heapq.heappop(self._heap)
            self._now = max(self._now, entry.when)
            if not entry.cancelled:
                entry.callback()
                fired += 1
        self._now = deadline
        return fired

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no scheduled callbacks remain. Returns count fired."""
        fired = 0
        while self._heap:
            if fired >= max_events:
                raise RuntimeError("ManualClock.run_until_idle: livelock?")
            entry = heapq.heappop(self._heap)
            self._now = max(self._now, entry.when)
            if not entry.cancelled:
                entry.callback()
                fired += 1
        return fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks."""
        return sum(1 for entry in self._heap if not entry.cancelled)
