"""XML channel descriptions (the AppiaXML extension, paper §3.1).

A recent extension to Appia — developed in the context of this work — allows
the run-time to dynamically instantiate a channel from its XML description.
The Core reconfigurator uses exactly this mechanism: the coordinator ships
each participant the XML of the stack it must deploy, and the local module
instantiates it.

Format (layers listed **top first**, the way stacks are drawn in Figure 2)::

    <morpheus>
      <template name="hybrid-mobile">
        <channel name="data">
          <layer name="chat_app" session="app"/>
          <layer name="view_sync"/>
          <layer name="mecho" mode="wireless" relay="0"/>
          <layer name="sim_transport" session="transport"/>
        </channel>
      </template>
    </morpheus>

Attributes other than ``name`` and ``session`` become layer parameters, with
scalar coercion (``int`` → ``float`` → ``bool`` → ``str``).  A ``session``
label requests session sharing: channels instantiated with the same binding
map reuse the labelled session, and the reconfigurator uses labels to carry
sessions across stack replacement.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Optional
from xml.sax.saxutils import quoteattr

from repro.kernel.channel import Channel
from repro.kernel.errors import ConfigurationError
from repro.kernel.qos import QoS
from repro.kernel.registry import resolve_layer
from repro.kernel.scheduler import Kernel
from repro.kernel.session import Session

_RESERVED_ATTRS = ("name", "session")


def coerce_scalar(text: str) -> Any:
    """Convert an XML attribute string to int, float, bool or str."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _render_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class LayerSpec:
    """One ``<layer>`` element: layer name, parameters, optional label."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    session_label: Optional[str] = None

    def to_element(self) -> ET.Element:
        """Render this spec as an ``ElementTree`` element."""
        attrs = {"name": self.name}
        if self.session_label:
            attrs["session"] = self.session_label
        for key in sorted(self.params):
            attrs[key] = _render_scalar(self.params[key])
        return ET.Element("layer", attrs)


@dataclass(frozen=True)
class ChannelTemplate:
    """A named channel description: an ordered list of layer specs (top first).

    Templates are pure data — comparable and serializable — which is what
    lets the Core coordinator ship them over the control channel and lets
    policies be expressed as "deploy template X".
    """

    name: str
    specs: tuple[LayerSpec, ...]

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_layers(name: str, specs: list[LayerSpec]) -> "ChannelTemplate":
        """Build a template from specs listed top-first."""
        return ChannelTemplate(name, tuple(specs))

    # -- serialization ---------------------------------------------------------

    def to_xml(self) -> str:
        """Render as a standalone ``<channel>`` XML fragment."""
        root = ET.Element("channel", {"name": self.name})
        for spec in self.specs:
            root.append(spec.to_element())
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(text: str) -> "ChannelTemplate":
        """Parse a standalone ``<channel>`` fragment."""
        try:
            element = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigurationError(f"malformed channel XML: {exc}") from exc
        return _parse_channel(element)

    # -- instantiation -----------------------------------------------------------

    def build_qos(self, qos_name: Optional[str] = None) -> QoS:
        """Instantiate layer objects and return a validated QoS.

        The template lists layers top-first; the QoS stores them bottom-first,
        so the order is reversed here.
        """
        layers = []
        for spec in reversed(self.specs):
            layer_class = resolve_layer(spec.name)
            layers.append(layer_class(**spec.params))
        return QoS(qos_name or self.name, layers)

    def instantiate(self, kernel: Kernel, channel_name: Optional[str] = None,
                    session_bindings: Optional[dict[str, Session]] = None,
                    start: bool = True) -> Channel:
        """Create (and by default start) a channel from this template.

        Args:
            kernel: hosting kernel.
            channel_name: override for the channel name (defaults to the
                template name).
            session_bindings: mutable mapping label → session.  Labels found
                in the map are *reused* (session sharing / preservation);
                labels not found are *added* after their sessions are
                created, so a subsequent instantiation can pick them up.
            start: when true, :meth:`Channel.start` is called before
                returning.
        """
        qos = self.build_qos()
        bindings = session_bindings if session_bindings is not None else {}
        preset: dict[int, Session] = {}
        labelled_fresh: list[tuple[str, int]] = []
        for spec_index, spec in enumerate(reversed(self.specs)):
            label = spec.session_label
            if not label:
                continue
            existing = bindings.get(label)
            if existing is not None:
                preset[spec_index] = existing
            else:
                labelled_fresh.append((label, spec_index))
        channel = qos.create_channel(channel_name or self.name, kernel,
                                     preset_sessions=preset)
        for label, spec_index in labelled_fresh:
            bindings[label] = channel.sessions[spec_index]
        if start:
            channel.start()
        return channel


@dataclass(frozen=True)
class RuleSpec:
    """One ``<rule>`` element: registered rule name plus parameters.

    Pure data, like :class:`LayerSpec` — the kernel only describes the
    rule; :mod:`repro.core.rules` resolves the name against its registry
    and instantiates it.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_element(self) -> ET.Element:
        attrs = {"name": self.name}
        for key in sorted(self.params):
            attrs[key] = _render_scalar(self.params[key])
        return ET.Element("rule", attrs)


@dataclass(frozen=True)
class PolicySpec:
    """A named ``<policy>``: ordered rules plus governor parameters.

    Format (rules listed in evaluation order, first match wins)::

        <policy name="adaptive">
          <governor budget="4" flap_limit="3" window="30" cooldown="60"/>
          <rule name="loss_adaptive" threshold="0.08" hysteresis="0.02"/>
          <rule name="hybrid_mecho"/>
        </policy>

    The ``<governor>`` element is optional; its attributes are coerced
    scalars handed to the adaptation governor unchanged.
    """

    name: str
    rules: tuple[RuleSpec, ...]
    governor: dict[str, Any] = field(default_factory=dict)

    def to_xml(self) -> str:
        """Render as a standalone ``<policy>`` fragment."""
        root = ET.Element("policy", {"name": self.name})
        if self.governor:
            attrs = {key: _render_scalar(self.governor[key])
                     for key in sorted(self.governor)}
            root.append(ET.Element("governor", attrs))
        for rule in self.rules:
            root.append(rule.to_element())
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(text: str) -> "PolicySpec":
        """Parse a standalone ``<policy>`` fragment."""
        try:
            element = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigurationError(f"malformed policy XML: {exc}") from exc
        return _parse_policy(element)


def parse_config(text: str) -> dict[str, ChannelTemplate]:
    """Parse a full ``<morpheus>`` document into templates by name.

    Accepts ``<template>`` wrappers (name defaulting the channel name) and
    bare ``<channel>`` children; ``<policy>`` elements are legal siblings
    (read by :func:`parse_policy_config`) and skipped here.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed configuration XML: {exc}") from exc
    templates: dict[str, ChannelTemplate] = {}
    for child in root:
        if child.tag == "template":
            channel_elements = child.findall("channel")
            if len(channel_elements) != 1:
                raise ConfigurationError(
                    f"template {child.get('name')!r} must contain exactly one "
                    f"<channel>, found {len(channel_elements)}")
            template = _parse_channel(
                channel_elements[0], default_name=child.get("name"))
        elif child.tag == "channel":
            template = _parse_channel(child)
        elif child.tag == "policy":
            continue
        else:
            raise ConfigurationError(f"unexpected element <{child.tag}>")
        if template.name in templates:
            raise ConfigurationError(f"duplicate template {template.name!r}")
        templates[template.name] = template
    return templates


def parse_policy_config(text: str) -> dict[str, PolicySpec]:
    """Parse the ``<policy>`` elements of a ``<morpheus>`` document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed configuration XML: {exc}") from exc
    policies: dict[str, PolicySpec] = {}
    for child in root:
        if child.tag != "policy":
            continue
        policy = _parse_policy(child)
        if policy.name in policies:
            raise ConfigurationError(f"duplicate policy {policy.name!r}")
        policies[policy.name] = policy
    return policies


def dump_config(templates: dict[str, ChannelTemplate],
                policies: Optional[dict[str, PolicySpec]] = None) -> str:
    """Render templates (and optional policies) into a ``<morpheus>``
    document that :func:`parse_config`/:func:`parse_policy_config` round-trip."""
    parts = ["<morpheus>"]
    for name in sorted(templates):
        template = templates[name]
        parts.append(f"  <template name={quoteattr(name)}>")
        for line in template.to_xml().splitlines():
            parts.append(f"    {line}")
        parts.append("  </template>")
    for name in sorted(policies or {}):
        for line in policies[name].to_xml().splitlines():
            parts.append(f"  {line}")
    parts.append("</morpheus>")
    return "\n".join(parts)


def _parse_channel(element: ET.Element,
                   default_name: Optional[str] = None) -> ChannelTemplate:
    name = element.get("name") or default_name
    if not name:
        raise ConfigurationError("<channel> element is missing a name")
    specs = []
    for child in element:
        if child.tag != "layer":
            raise ConfigurationError(
                f"unexpected element <{child.tag}> inside channel {name!r}")
        layer_name = child.get("name")
        if not layer_name:
            raise ConfigurationError(
                f"<layer> inside channel {name!r} is missing a name")
        params = {key: coerce_scalar(value)
                  for key, value in child.attrib.items()
                  if key not in _RESERVED_ATTRS}
        specs.append(LayerSpec(name=layer_name, params=params,
                               session_label=child.get("session")))
    if not specs:
        raise ConfigurationError(f"channel {name!r} has no layers")
    return ChannelTemplate(name, tuple(specs))


def _parse_policy(element: ET.Element) -> PolicySpec:
    name = element.get("name")
    if not name:
        raise ConfigurationError("<policy> element is missing a name")
    rules: list[RuleSpec] = []
    governor: dict[str, Any] = {}
    for child in element:
        if child.tag == "governor":
            if governor:
                raise ConfigurationError(
                    f"policy {name!r} has more than one <governor>")
            governor = {key: coerce_scalar(value)
                        for key, value in child.attrib.items()}
        elif child.tag == "rule":
            rule_name = child.get("name")
            if not rule_name:
                raise ConfigurationError(
                    f"<rule> inside policy {name!r} is missing a name")
            params = {key: coerce_scalar(value)
                      for key, value in child.attrib.items()
                      if key not in _RESERVED_ATTRS}
            rules.append(RuleSpec(name=rule_name, params=params))
        else:
            raise ConfigurationError(
                f"unexpected element <{child.tag}> inside policy {name!r}")
    if not rules:
        raise ConfigurationError(f"policy {name!r} has no rules")
    return PolicySpec(name, tuple(rules), governor)
