"""The kernel/transport seam: what a transport backend must provide.

The protocol stack never talks to a network directly — the bottom layer of
every channel is a :class:`DatagramTransportSession`, which converts
DOWN-travelling :class:`~repro.kernel.events.SendableEvent` instances into
:class:`~repro.kernel.packet.Packet` records and hands them to a
**transport endpoint**, and reconstructs correctly-typed events from
packets the endpoint delivers back.  Everything below that seam is
backend-specific:

* :mod:`repro.simnet` schedules packets on a deterministic virtual
  timeline (the testable oracle);
* :mod:`repro.livenet` serializes packets into real UDP datagrams on an
  asyncio event loop (the deployable backend).

Two structural protocols pin the seam down:

* :class:`TransportEndpoint` — the node-side surface the transport session
  drives (``node_id``, ``kernel``, port binding, ``send``).  Satisfied by
  :class:`repro.simnet.node.SimNode` and :class:`repro.livenet.node.LiveNode`.
* :class:`Transport` — the network-side surface the scenario and Morpheus
  layers drive (node registry, topology mutation, counters, a shared
  :class:`~repro.kernel.clock.Clock` as ``engine``).  Satisfied by
  :class:`repro.simnet.network.Network` and
  :class:`repro.livenet.network.LiveNetwork`.

Addressing convention carried by ``SendableEvent.dest``:

* ``"node-id"`` — unicast;
* ``("a", "b", ...)`` — native multicast (one transmission); legality is
  the backend's business (the simulator restricts it to one segment).

Wire framing: the outgoing message is frozen with
:meth:`~repro.kernel.message.Message.wire_copy` (an O(1) copy-on-write
handle with mutable payloads snapshotted once per transmission), and the
logical sender travels in the packet's first-class ``logical_src`` field
(see :mod:`repro.kernel.packet` for the byte-accounting contract).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Protocol

from repro.kernel.channel import Channel
from repro.kernel.clock import Clock
from repro.kernel.events import (ChannelClose, ChannelInit, Direction, Event,
                                 SendableEvent)
from repro.kernel.layer import Layer
from repro.kernel.packet import Packet
from repro.kernel.scheduler import Kernel
from repro.kernel.session import Session

PacketReceiver = Callable[[Packet], None]


class TransportEndpoint(Protocol):
    """Node-side transport surface driven by the bottom-of-stack session.

    An endpoint is one device's NIC adapter: it owns the node's identity
    and kernel, demultiplexes inbound packets by port, and injects
    outbound packets into whatever carries them.
    """

    node_id: str
    kernel: Kernel

    def bind_port(self, port: str, receiver: PacketReceiver) -> None:
        """Register ``receiver`` for packets addressed to ``port``."""
        ...  # pragma: no cover - protocol declaration

    def unbind_port(self, port: str) -> None:
        """Release ``port``; unknown ports are ignored."""
        ...  # pragma: no cover - protocol declaration

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` through the backend network."""
        ...  # pragma: no cover - protocol declaration


class Transport(Protocol):
    """Network-side surface shared by the simulated and live backends.

    This is the contract :class:`repro.simnet.network.Network` already
    satisfies and :class:`repro.livenet.network.LiveNetwork` mirrors; the
    scenario runner, the Morpheus facade, and the context retrievers are
    written against it (duck-typed — the protocol documents the seam, it
    is not enforced at run time).
    """

    engine: Clock
    topology_epoch: int
    lost_packets: int
    delivered_packets: int

    def node(self, node_id: str) -> TransportEndpoint:
        ...  # pragma: no cover - protocol declaration

    def add_node(self, node_id: str, kind: Any,
                 battery: Any = None) -> TransportEndpoint:
        ...  # pragma: no cover - protocol declaration

    def remove_node(self, node_id: str) -> None:
        ...  # pragma: no cover - protocol declaration

    def move_node(self, node_id: str, kind: Any) -> TransportEndpoint:
        ...  # pragma: no cover - protocol declaration

    def crash_node(self, node_id: str) -> None:
        ...  # pragma: no cover - protocol declaration

    def recover_node(self, node_id: str) -> None:
        ...  # pragma: no cover - protocol declaration

    def partition(self, *groups: Iterable[str]) -> None:
        ...  # pragma: no cover - protocol declaration

    def heal_partition(self) -> None:
        ...  # pragma: no cover - protocol declaration

    def subscribe_topology(self, listener: Callable[[Any], None]) -> None:
        ...  # pragma: no cover - protocol declaration

    def unsubscribe_topology(self, listener: Callable[[Any], None]) -> None:
        ...  # pragma: no cover - protocol declaration


class DatagramTransportSession(Session):
    """Bottom-of-stack session bridging Appia channels to an endpoint.

    Plays the role of Appia's UDP transport: DOWN-travelling
    :class:`SendableEvent` instances become packets handed to the
    endpoint; packets the endpoint delivers are reconstructed into
    correctly-typed events and injected upwards.

    One transport *session* is shared by every channel of a node (the
    paper's control channel and data channels all reach the same NIC),
    using the kernel's session-sharing mechanism: the session label
    ``"transport"`` in XML descriptions binds each new channel to the
    node's existing session.

    Session state: the owning endpoint plus the channels bound through it.
    """

    def __init__(self, layer: Layer,
                 node: Optional[TransportEndpoint] = None) -> None:
        super().__init__(layer)
        self.node = node
        self._channel_by_port: dict[str, Channel] = {}

    def attach_node(self, node: TransportEndpoint) -> None:
        """Late-bind the owning endpoint (used when built programmatically)."""
        self.node = node

    # -- event handling ------------------------------------------------------

    def handle(self, event: Event) -> None:
        if isinstance(event, ChannelInit):
            self._on_init(event)
            event.go()
        elif isinstance(event, ChannelClose):
            self._on_close(event)
            event.go()
        elif isinstance(event, SendableEvent) and event.direction is Direction.DOWN:
            self._send(event)
        else:
            event.go()

    def _on_init(self, event: Event) -> None:
        channel = event.channel
        assert channel is not None
        if self.node is None:
            raise RuntimeError(
                f"{type(self).__name__} has no node attached; build the "
                "session through the node facade (or call attach_node)")
        port = channel.name
        self._channel_by_port[port] = channel
        channel.local_address = self.node.node_id
        self.node.bind_port(port, self._incoming)

    def _on_close(self, event: Event) -> None:
        channel = event.channel
        assert channel is not None
        port = channel.name
        if self._channel_by_port.get(port) is channel:
            del self._channel_by_port[port]
            if self.node is not None:
                self.node.unbind_port(port)

    # -- outbound ---------------------------------------------------------------

    def _send(self, event: SendableEvent) -> None:
        assert self.node is not None and event.channel is not None
        if event.dest is None:
            raise ValueError(f"outgoing {event!r} has no destination")
        # The logical source may differ from the transmitting node when a
        # relay forwards on behalf of a sender; it rides the packet field,
        # not the header stack.
        source = event.source if event.source is not None else self.node.node_id
        packet = Packet(src=self.node.node_id, dst=event.dest,
                        port=event.channel.name, event_cls=type(event),
                        message=event.message.wire_copy(),
                        logical_src=source,
                        traffic_class=event.traffic_class)
        self.node.send(packet)

    # -- inbound ----------------------------------------------------------------

    def _incoming(self, packet: Packet) -> None:
        channel = self._channel_by_port.get(packet.port)
        if channel is None:  # pragma: no cover - unbound race, defensive
            return
        # The packet owns its message handle (unicast: frozen at _send;
        # multicast: a per-receiver handle from copy_for), so the event can
        # adopt it directly — zero message copies on the delivery path.
        event = packet.event_cls(message=packet.message,
                                 source=packet.logical_src, dest=packet.dst)
        self.send_up(event, channel=channel)


class DatagramTransportLayer(Layer):
    """Bottom layer: talks to the node's transport endpoint.

    Not registered under a layer name itself — the registered,
    XML-addressable descriptor is :class:`repro.simnet.transport.
    SimTransportLayer` (historical name ``"sim_transport"``), which both
    backends share: the layer is a stateless descriptor, and the *session*
    actually deployed comes preset through the ``"transport"`` binding
    label, bound to whichever endpoint the node runs on.
    """

    layer_name = "transport"
    accepted_events = (SendableEvent,)
    provided_events = (SendableEvent,)
    session_class = DatagramTransportSession
