"""The protocol composition and execution kernel (the paper's "Appia" role).

Public surface:

* :class:`~repro.kernel.layer.Layer` / :class:`~repro.kernel.session.Session`
  — the static and stateful halves of a micro-protocol;
* :class:`~repro.kernel.qos.QoS` / :class:`~repro.kernel.channel.Channel`
  — validated compositions and their live instances;
* typed events (:mod:`repro.kernel.events`) and messages with a header stack
  (:mod:`repro.kernel.message`);
* :class:`~repro.kernel.scheduler.Kernel` — the per-node event scheduler;
* XML channel descriptions (:mod:`repro.kernel.xml_config`) used by the Core
  reconfigurator to deploy stacks at run time;
* the transport seam (:mod:`repro.kernel.packet`,
  :mod:`repro.kernel.transport`) — the packet record and the structural
  protocols every transport backend (simulated or live) satisfies.
"""

from repro.kernel.channel import Channel, ChannelState, TimerHandle
from repro.kernel.clock import Clock, ManualClock
from repro.kernel.errors import (ChannelStateError, ConfigurationError,
                                 EventRoutingError, InvalidQoSError,
                                 KernelError, UnknownLayerError)
from repro.kernel.events import (BackoffTimerEvent, ChannelClose,
                                 ChannelEvent, ChannelInit, DebugEvent,
                                 Direction, EchoEvent, Event,
                                 PeriodicTimerEvent, SendableEvent,
                                 TimerEvent)
from repro.kernel.layer import Layer
from repro.kernel.message import Message, estimate_size
from repro.kernel.packet import (CONTROL, DATA, PACKET_OVERHEAD_BYTES,
                                 SRC_FIELD_OVERHEAD, Packet)
from repro.kernel.qos import QoS
from repro.kernel.registry import (is_registered, register_layer,
                                   registered_layers, resolve_layer,
                                   unregister_layer)
from repro.kernel.scheduler import Kernel
from repro.kernel.session import Session
from repro.kernel.transport import (DatagramTransportLayer,
                                    DatagramTransportSession, Transport,
                                    TransportEndpoint)
from repro.kernel.xml_config import (ChannelTemplate, LayerSpec, coerce_scalar,
                                     dump_config, parse_config)

__all__ = [
    "Channel", "ChannelState", "TimerHandle",
    "Clock", "ManualClock",
    "ChannelStateError", "ConfigurationError", "EventRoutingError",
    "InvalidQoSError", "KernelError", "UnknownLayerError",
    "BackoffTimerEvent", "ChannelClose", "ChannelEvent", "ChannelInit",
    "DebugEvent", "Direction",
    "EchoEvent", "Event", "PeriodicTimerEvent", "SendableEvent", "TimerEvent",
    "Layer", "Message", "estimate_size", "QoS",
    "CONTROL", "DATA", "PACKET_OVERHEAD_BYTES", "SRC_FIELD_OVERHEAD",
    "Packet",
    "DatagramTransportLayer", "DatagramTransportSession", "Transport",
    "TransportEndpoint",
    "is_registered", "register_layer", "registered_layers", "resolve_layer",
    "unregister_layer",
    "Kernel", "Session",
    "ChannelTemplate", "LayerSpec", "coerce_scalar", "dump_config",
    "parse_config",
]
