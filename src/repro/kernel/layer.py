"""Layers: the static, composable half of a micro-protocol.

An Appia *layer* declares the event types it accepts, provides and requires,
and acts as a factory for *sessions* (the stateful half).  The declarations
drive two kernel services:

* **route optimization** — events of a type a layer did not declare in
  ``accepted_events`` are never delivered to its sessions;
* **QoS validation** — a composition is rejected when a layer requires an
  event type that no other layer provides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar, Optional

from repro.kernel.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.session import Session


class Layer:
    """Base class for protocol layers.

    Subclasses declare class attributes:

    Attributes:
        accepted_events: event types whose instances this layer's sessions
            must receive.  Matching is by ``isinstance``, so accepting a base
            type accepts its subclasses.
        provided_events: event types this layer's sessions may create.
        required_events: event types that must be provided by *another* layer
            in any composition that includes this layer.
    """

    accepted_events: ClassVar[tuple[type[Event], ...]] = ()
    provided_events: ClassVar[tuple[type[Event], ...]] = ()
    required_events: ClassVar[tuple[type[Event], ...]] = ()

    #: Registry name; defaults to a snake_case rendering of the class name.
    layer_name: ClassVar[Optional[str]] = None

    def __init__(self, **params: Any) -> None:
        """Store configuration parameters (e.g. from an XML description)."""
        self.params: dict[str, Any] = dict(params)

    @classmethod
    def name(cls) -> str:
        """Return the registry name of this layer."""
        if cls.layer_name:
            return cls.layer_name
        return _snake_case(cls.__name__.removesuffix("Layer"))

    def accepts(self, event: Event) -> bool:
        """Return ``True`` when this layer declared interest in ``event``."""
        return isinstance(event, self.accepted_events) if self.accepted_events else False

    def create_session(self) -> "Session":
        """Create a fresh session holding this layer's per-channel state.

        Subclasses usually override this to return their dedicated session
        class; the default looks for a ``session_class`` attribute.
        """
        session_class = getattr(self, "session_class", None)
        if session_class is None:
            raise NotImplementedError(
                f"{type(self).__name__} defines neither create_session() "
                "nor session_class")
        return session_class(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Layer {self.name()}>"


def _snake_case(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0 and not name[index - 1].isupper():
            out.append("_")
        out.append(char.lower())
    return "".join(out)
