"""QoS: a validated composition of layers.

A combination of layers constitutes a protocol stack that offers a given
quality of service — QoS in the broad sense used by the paper (reliability,
ordering, security, ...).  A :class:`QoS` validates the composition (every
required event type must be provided by some layer) and acts as a factory
for channels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.kernel.errors import InvalidQoSError
from repro.kernel.events import (ChannelClose, ChannelEvent, ChannelInit,
                                 EchoEvent, Event, TimerEvent)
from repro.kernel.layer import Layer

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.channel import Channel
    from repro.kernel.scheduler import Kernel
    from repro.kernel.session import Session

#: Event types the kernel itself provides to every composition.
KERNEL_PROVIDED: tuple[type[Event], ...] = (
    ChannelInit, ChannelClose, ChannelEvent, TimerEvent, EchoEvent)


class QoS:
    """An ordered, validated stack of layers (index 0 = bottom).

    Args:
        name: diagnostic label for the composition.
        layers: layer instances ordered bottom → top (transport first,
            application last).
        validate: set to ``False`` to skip requirement checking (used by
            tests that build deliberately broken stacks).

    Raises:
        InvalidQoSError: when a layer's requirement is unsatisfiable.
    """

    def __init__(self, name: str, layers: Sequence[Layer],
                 validate: bool = True) -> None:
        if not layers:
            raise InvalidQoSError(f"QoS {name!r} has no layers")
        self.name = name
        self.layers: tuple[Layer, ...] = tuple(layers)
        if validate:
            self.validate()

    def validate(self) -> None:
        """Check that every required event type is provided somewhere."""
        provided: list[type[Event]] = list(KERNEL_PROVIDED)
        for layer in self.layers:
            provided.extend(layer.provided_events)
        for layer in self.layers:
            for needed in layer.required_events:
                if not any(issubclass(offer, needed) or issubclass(needed, offer)
                           for offer in provided):
                    raise InvalidQoSError(
                        f"QoS {self.name!r}: layer {layer.name()!r} requires "
                        f"{needed.__name__}, provided by no layer in the "
                        "composition")

    def layer_names(self) -> list[str]:
        """Registry names of the layers, bottom → top."""
        return [layer.name() for layer in self.layers]

    def create_channel(self, name: str, kernel: "Kernel",
                       preset_sessions: Optional[dict[int, "Session"]] = None,
                       ) -> "Channel":
        """Instantiate a channel for this QoS.

        Args:
            name: channel name (unique per kernel by convention).
            kernel: the hosting node's kernel.
            preset_sessions: mapping of layer index → existing session, used
                for session sharing across channels and for preserving
                sessions across reconfiguration.
        """
        from repro.kernel.channel import Channel  # local import: cycle
        return Channel(name, self, kernel, preset_sessions=preset_sessions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QoS {self.name} [{' / '.join(self.layer_names())}]>"
