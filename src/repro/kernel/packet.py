"""Packets: the wire form of a sendable event, shared by every transport.

A packet is what a transport backend moves between nodes — the simulated
network of :mod:`repro.simnet` schedules them on the virtual timeline, the
asyncio UDP backend of :mod:`repro.livenet` serializes them into real
datagrams — and what the bottom-of-stack transport session produces and
consumes: the event's message (a copy-on-write handle frozen at
transmission time), the event class (so the receiving transport can
reconstruct a correctly-typed event — the kernel's route optimization
depends on the type), addressing, and the traffic class used by the
experiment counters.

Wire framing: the **logical source** of the message travels as a first-class
packet field (``logical_src``) rather than as a pseudo-header pushed onto
the message stack.  It may differ from ``src`` (the transmitting NIC) when
a relay forwards on behalf of a sender.  The field is charged
:data:`SRC_FIELD_OVERHEAD` plus the address size so byte counters stay
identical to the seed-era accounting, which serialized the same information
as a ``("__net_src__", src)`` header.

Fan-out: a native-multicast transmission is materialized as one
:class:`Packet` per receiver (:meth:`Packet.copy_for`), but every
per-receiver packet shares the *same frozen message structure* — the copy
is an O(1) handle, so a 1→N multicast allocates N small packet records and
zero message deep-copies.

The paper's Figure 3 counts *messages transmitted by the mobile device,
including data and control messages*; the ``traffic_class`` tag lets the
benchmarks report the same total while also breaking it down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.kernel.message import Message, estimate_size

#: Fixed per-packet overhead charged on top of the message size
#: (rough stand-in for UDP/IP + MAC framing).
PACKET_OVERHEAD_BYTES = 28

#: Framing charge for the logical-source field, on top of the address
#: itself.  Chosen to equal the seed-era charge for the
#: ``("__net_src__", src)`` pseudo-header (tag + tuple + framing bytes), so
#: every historical byte counter reproduces exactly.
SRC_FIELD_OVERHEAD = 14

_packet_ids = itertools.count(1)


DATA = "data"
CONTROL = "control"


@dataclass
class Packet:
    """One datagram.

    Attributes:
        src: transmitting node identifier (the NIC the packet left from).
        dst: destination node identifier, or a tuple of identifiers for a
            native-multicast transmission.
        port: demultiplexing key — by convention the channel name.
        event_cls: the :class:`SendableEvent` subclass to reconstruct on
            delivery.
        message: the carried message (a frozen copy-on-write handle; owned
            by this packet, structurally shared with its siblings).
        logical_src: the message's logical sender, reported as the
            reconstructed event's ``source``; defaults to ``src``.
        traffic_class: ``"data"`` or ``"control"``.
        size_bytes: wire size including per-packet and source-field
            overhead.
        wire_bytes: actual compact-codec size of the same framing (the
            payload's encoded blob length instead of its legacy charge);
            measurement only — the simulation models run on
            ``size_bytes``.
        sent_at: transmission time on the transport's clock (set by the
            network).
        hops: link hops traversed (set by the network; diagnostics).
    """

    src: str
    dst: Any
    port: str
    event_cls: type
    message: Message
    logical_src: Optional[str] = None
    traffic_class: str = DATA
    size_bytes: int = 0
    wire_bytes: int = 0
    sent_at: float = 0.0
    hops: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.logical_src is None:
            self.logical_src = self.src
        overhead = (estimate_size(self.logical_src) +
                    SRC_FIELD_OVERHEAD + PACKET_OVERHEAD_BYTES)
        if not self.size_bytes:
            self.size_bytes = self.message.size_bytes + overhead
        if not self.wire_bytes:
            self.wire_bytes = self.message.wire_bytes + overhead

    @property
    def is_multicast(self) -> bool:
        """True when addressed to several receivers in one transmission."""
        return isinstance(self.dst, tuple)

    def copy_for(self, dst: str) -> "Packet":
        """A per-receiver packet sharing this packet's frozen message.

        The message handle is an O(1) copy-on-write duplicate: the receiver
        may push/pop freely without affecting any sibling receiver's view,
        while the header chain and payload remain physically shared.  Both
        byte sizes are passed through, so a 1→N fan-out encodes (and
        measures) the message exactly once.

        Built without re-running ``__init__``/``__post_init__``: every
        derived field is already known, and this is the per-receiver inner
        loop of every multicast.
        """
        clone = object.__new__(Packet)
        clone.src = self.src
        clone.dst = dst
        clone.port = self.port
        clone.event_cls = self.event_cls
        clone.message = self.message.copy()
        clone.logical_src = self.logical_src
        clone.traffic_class = self.traffic_class
        clone.size_bytes = self.size_bytes
        clone.wire_bytes = self.wire_bytes
        clone.sent_at = self.sent_at
        clone.hops = self.hops
        clone.packet_id = next(_packet_ids)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"port={self.port} {self.traffic_class} "
                f"{self.event_cls.__name__} {self.size_bytes}B>")
