"""Channels: live instances of a QoS with one session per layer.

A channel routes typed events through its session stack.  Route optimization
follows the paper (§3.1): using the layers' ``accepted_events`` declarations
the kernel computes, per event type and direction, the exact sequence of
sessions an event visits — uninterested layers are skipped entirely.

Lifecycle::

    CREATED --start()--> STARTED --close()--> CLOSED

``start()`` injects a :class:`~repro.kernel.events.ChannelInit` travelling
bottom → top; ``close()`` injects a
:class:`~repro.kernel.events.ChannelClose` travelling top → bottom, after
which the channel cancels its timers and unbinds its sessions.  The Core
reconfigurator relies on this lifecycle to tear a stack down and rebuild it
from an XML description while preserving chosen sessions.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.kernel.errors import ChannelStateError, EventRoutingError
from repro.kernel.events import (BackoffTimerEvent, ChannelClose,
                                 ChannelEvent, ChannelInit, Direction,
                                 EchoEvent, Event, PeriodicTimerEvent,
                                 TimerEvent)
from repro.kernel.layer import Layer
from repro.kernel.qos import QoS
from repro.kernel.scheduler import Kernel
from repro.kernel.session import Session


class ChannelState(enum.Enum):
    """Channel lifecycle states."""

    CREATED = "created"
    STARTED = "started"
    CLOSING = "closing"
    CLOSED = "closed"


class TimerHandle:
    """Cancellation handle for a timer armed through a channel."""

    def __init__(self, channel: "Channel") -> None:
        self._channel = channel
        self._clock_handle: Any = None
        self.cancelled = False
        #: The armed timer event (introspection: a backoff timer's current
        #: ``interval``/``attempt`` live on the event between fires).
        self.event: Optional[TimerEvent] = None

    def cancel(self) -> None:
        """Cancel the timer; periodic timers stop re-arming."""
        self.cancelled = True
        if self._clock_handle is not None:
            self._clock_handle.cancel()
        self._channel._live_timers.discard(self)


class Channel:
    """A live protocol stack built from a :class:`~repro.kernel.qos.QoS`.

    Args:
        name: channel name; also used by XML descriptions and Core configs.
        qos: the validated composition to instantiate.
        kernel: hosting kernel (per node).
        preset_sessions: layer index → session to reuse instead of creating a
            fresh one (session sharing / reconfiguration preservation).
    """

    def __init__(self, name: str, qos: QoS, kernel: Kernel,
                 preset_sessions: Optional[dict[int, Session]] = None) -> None:
        self.name = name
        self.qos = qos
        self.kernel = kernel
        self.state = ChannelState.CREATED
        #: Node address of this channel's endpoint; stamped by the transport
        #: layer during ChannelInit so upper layers can learn "who am I".
        self.local_address: Optional[str] = None
        preset_sessions = preset_sessions or {}
        self.sessions: list[Session] = []
        for index, layer in enumerate(qos.layers):
            session = preset_sessions.get(index) or layer.create_session()
            self.sessions.append(session)
        self._route_cache: dict[tuple[type, Direction, int], list[Session]] = {}
        self._live_timers: set[TimerHandle] = set()
        kernel._register_channel(self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind sessions and send :class:`ChannelInit` bottom → top."""
        if self.state is not ChannelState.CREATED:
            raise ChannelStateError(
                f"channel {self.name!r} cannot start from {self.state}")
        for session in self.sessions:
            session._bound(self)
        self.state = ChannelState.STARTED
        self.insert(ChannelInit(), Direction.UP)

    def close(self) -> None:
        """Send :class:`ChannelClose` top → bottom, then release resources."""
        if self.state is not ChannelState.STARTED:
            raise ChannelStateError(
                f"channel {self.name!r} cannot close from {self.state}")
        self.state = ChannelState.CLOSING
        self.insert(ChannelClose(), Direction.DOWN)

    def _finalize_close(self) -> None:
        for handle in list(self._live_timers):
            handle.cancel()
        for session in self.sessions:
            session._unbound(self)
        self.state = ChannelState.CLOSED
        self.kernel._unregister_channel(self)

    # -- introspection ---------------------------------------------------------

    def layer_names(self) -> list[str]:
        """Registry names of the live stack, bottom → top."""
        return self.qos.layer_names()

    def session_of(self, layer_type: type[Layer]) -> Optional[Session]:
        """Return the session of the first layer matching ``layer_type``."""
        for layer, session in zip(self.qos.layers, self.sessions):
            if isinstance(layer, layer_type):
                return session
        return None

    def session_named(self, layer_name: str) -> Optional[Session]:
        """Return the session whose layer has registry name ``layer_name``."""
        for layer, session in zip(self.qos.layers, self.sessions):
            if layer.name() == layer_name:
                return session
        return None

    def index_of(self, session: Session) -> int:
        """Stack index of ``session`` (bottom = 0)."""
        try:
            return self.sessions.index(session)
        except ValueError:
            raise EventRoutingError(
                f"{session!r} is not part of channel {self.name!r}") from None

    # -- routing ---------------------------------------------------------------

    def _route_for(self, event: Event, direction: Direction,
                   start: int) -> list[Session]:
        """Sessions ``event`` visits, starting at stack index ``start``.

        ``start`` is inclusive.  For UP events the route walks indices
        ``start, start+1, ...``; for DOWN events ``start, start-1, ...``.
        """
        key = (type(event), direction, start)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        implicit = isinstance(event, ChannelEvent)
        if direction is Direction.UP:
            candidates = list(enumerate(self.qos.layers))[start:]
        else:
            candidates = list(enumerate(self.qos.layers))[:start + 1][::-1]
        route = [self.sessions[index] for index, layer in candidates
                 if implicit or layer.accepts(event)]
        self._route_cache[key] = route
        return route

    # -- insertion ----------------------------------------------------------------

    def insert(self, event: Event, direction: Direction) -> None:
        """Insert ``event`` at a channel endpoint.

        UP events enter below the bottom layer (e.g. a packet arriving from
        the network); DOWN events enter above the top layer.
        """
        self._check_live()
        start = 0 if direction is Direction.UP else len(self.sessions) - 1
        route = self._route_for(event, direction, start)
        event._bind(self, direction, route, source=None)
        self._continue(event)

    def insert_from(self, session: Session, event: Event,
                    direction: Direction) -> None:
        """Insert ``event`` travelling from ``session``'s stack position."""
        self._check_live()
        position = self.index_of(session)
        start = position + 1 if direction is Direction.UP else position - 1
        if direction is Direction.UP and start >= len(self.sessions):
            route: list[Session] = []
        elif direction is Direction.DOWN and start < 0:
            route = []
        else:
            route = self._route_for(event, direction, start)
        event._bind(self, direction, route, source=session)
        self._continue(event)

    def _check_live(self) -> None:
        if self.state not in (ChannelState.STARTED, ChannelState.CLOSING):
            raise ChannelStateError(
                f"channel {self.name!r} is {self.state.value}; cannot route")

    # -- dispatch (kernel-internal) ----------------------------------------------

    def _continue(self, event: Event) -> None:
        """Advance ``event``: enqueue its next hop or handle end-of-route."""
        if event._index < len(event._route):
            self.kernel.enqueue(event)
            return
        # End of route.
        if isinstance(event, EchoEvent) and event.direction is not None:
            self.insert(event.wrapped, event.direction.invert())
        elif isinstance(event, ChannelClose):
            self._finalize_close()

    def _dispatch(self, event: Event) -> None:
        session = event._current_session()
        if session is None:  # pragma: no cover - defensive
            return
        event._armed = True
        session.handle(event)

    # -- timers ---------------------------------------------------------------------

    def set_timer(self, delay: float, event: TimerEvent,
                  session: Session) -> TimerHandle:
        """Arm ``event`` for delivery to ``session`` after ``delay`` seconds.

        Periodic timer events re-arm automatically with their ``interval``
        until cancelled or until the channel closes; backoff timer events
        re-arm with their next (stretched) interval.  The re-arm happens
        at fire time — between fires exactly one clock entry exists, so a
        backoff loop costs one scheduler event per attempt.
        """
        self._check_live()
        handle = TimerHandle(self)
        handle.event = event

        def fire() -> None:
            self._live_timers.discard(handle)
            if handle.cancelled or self.state is ChannelState.CLOSED:
                return
            event.fired_at = self.kernel.clock.now()
            event._bind(self, Direction.UP, [session], source=None)
            self.kernel.enqueue(event)
            if handle.cancelled:
                # The dispatched handler cancelled its own timer.
                return
            if isinstance(event, PeriodicTimerEvent):
                rearm_after: Optional[float] = event.interval
            elif isinstance(event, BackoffTimerEvent):
                rearm_after = event.advance()
            else:
                rearm_after = None
            if rearm_after is not None:
                handle._clock_handle = self.kernel.clock.call_later(
                    rearm_after, fire)
                self._live_timers.add(handle)

        handle._clock_handle = self.kernel.clock.call_later(delay, fire)
        self._live_timers.add(handle)
        return handle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Channel {self.name} ({self.state.value}) "
                f"[{' / '.join(self.layer_names())}]>")
