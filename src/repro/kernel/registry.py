"""Layer registry: maps configuration names to layer classes.

The XML configuration sub-system (paper §3.1, AppiaXML) refers to layers by
name.  Every layer class that should be reachable from an XML description
registers itself, either with the :func:`register_layer` decorator or
implicitly when :func:`resolve_layer` walks already-imported subclasses.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.kernel.errors import UnknownLayerError
from repro.kernel.layer import Layer

_REGISTRY: dict[str, type[Layer]] = {}


def register_layer(cls: type[Layer]) -> type[Layer]:
    """Class decorator registering ``cls`` under ``cls.name()``.

    Re-registering the same class is idempotent; registering a *different*
    class under an existing name raises ``ValueError`` — silent shadowing of
    protocol implementations would be a debugging nightmare.
    """
    name = cls.name()
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"layer name {name!r} already registered to {existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def resolve_layer(name: str) -> type[Layer]:
    """Return the layer class registered under ``name``.

    Raises:
        UnknownLayerError: when no layer with that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise UnknownLayerError(
            f"unknown layer {name!r}; registered layers: {known}") from None


def registered_layers() -> Iterator[tuple[str, type[Layer]]]:
    """Iterate over ``(name, class)`` pairs in name order."""
    for name in sorted(_REGISTRY):
        yield name, _REGISTRY[name]


def is_registered(name: str) -> bool:
    """Return whether a layer is registered under ``name``."""
    return name in _REGISTRY


def unregister_layer(name: str) -> Optional[type[Layer]]:
    """Remove and return the layer registered under ``name`` (tests only)."""
    return _REGISTRY.pop(name, None)
