"""Group-scoped channel naming and the per-kernel group registry.

Historically every node hosted exactly one implicit group: the control
channel was called ``"ctrl"``, the data channel ``"data"``, and since a
channel's name doubles as its transport port, two groups on one node
would collide.  The federation layer needs a node to host *many* named
groups (cells), each with its own control/data channel pair, so channel
names are now scoped:

* flat deployments keep the bare base name (``"ctrl"``, ``"data"``) —
  ports, XML, and wire traffic are byte-identical to the single-group
  stack;
* a group named ``g`` scopes them to ``"ctrl@g"`` / ``"data@g"``.

The :class:`GroupRegistry` records which groups a kernel currently
hosts and which channels belong to each, so diagnostics and the
federation runner can enumerate a node's groups without string-parsing
channel names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.channel import Channel

#: Separator between a base channel name and its group scope.  ``"@"``
#: cannot appear in bare channel names used by the flat stack, so scoped
#: and unscoped names never collide.
GROUP_SEPARATOR = "@"


def scoped_name(base: str, group: str = "") -> str:
    """Return the channel/port name for ``base`` within ``group``.

    An empty group is the flat single-group deployment and yields the
    bare base name unchanged (the byte-identical 1-cell contract).
    """
    if not group:
        return base
    return f"{base}{GROUP_SEPARATOR}{group}"


def split_scoped(name: str) -> tuple[str, str]:
    """Split a (possibly scoped) channel name into ``(base, group)``.

    Data-channel *generation* names carry a ``#c<id>@<lineage>`` suffix
    (see :mod:`repro.core.local_module`), and the lineage part reuses
    ``"@"`` — so only an ``"@"`` appearing *before* any ``"#"`` scopes a
    group: ``"data#c3@v1.a.0"`` is the flat group's generation 3, while
    ``"data@cell-1#c3@v1.a.0"`` is cell-1's.  Flat names return an empty
    group; the base of a scoped generation name is the name with the
    group scope removed.
    """
    at_index = name.find(GROUP_SEPARATOR)
    hash_index = name.find("#")
    if at_index == -1 or (hash_index != -1 and hash_index < at_index):
        return name, ""
    base = name[:at_index]
    rest = name[at_index + 1:]
    generation = rest.find("#")
    if generation == -1:
        return base, rest
    return base + rest[generation:], rest[:generation]


class GroupRegistry:
    """Which named groups a kernel hosts, and their channels.

    Registration is driven by the channel lifecycle: the kernel registers
    a channel under its group scope when the channel is created and drops
    it when the channel is finalized.  The flat group is tracked under
    the empty name.
    """

    def __init__(self) -> None:
        self._groups: dict[str, list["Channel"]] = {}

    def add(self, channel: "Channel") -> None:
        _, group = split_scoped(channel.name)
        members = self._groups.setdefault(group, [])
        if channel not in members:
            members.append(channel)

    def remove(self, channel: "Channel") -> None:
        _, group = split_scoped(channel.name)
        members = self._groups.get(group)
        if members is None:
            return
        if channel in members:
            members.remove(channel)
        if not members:
            del self._groups[group]

    def groups(self) -> tuple[str, ...]:
        """Names of groups with at least one registered channel."""
        return tuple(sorted(self._groups))

    def channels_of(self, group: str) -> tuple["Channel", ...]:
        """Channels registered under ``group`` (empty string = flat)."""
        return tuple(self._groups.get(group, ()))

    def find(self, base: str, group: str = "") -> Optional["Channel"]:
        """Return the channel whose name is ``scoped_name(base, group)``."""
        wanted = scoped_name(base, group)
        for channel in self._groups.get(group, ()):
            if channel.name == wanted:
                return channel
        return None
