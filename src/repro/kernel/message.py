"""Messages carried by sendable events.

Appia messages are byte buffers with a header stack: each layer pushes its
header on the way down and pops it on the way up.  This reproduction keeps
the same push/pop discipline but stores headers as Python objects, which is
what makes run-time layer swap trivial (no wire-format renegotiation).  For
experiment accounting every header contributes a size estimate so that byte
counters in :mod:`repro.simnet.stats` remain meaningful.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any

#: Default serialized size charged for a header with no explicit estimate.
DEFAULT_HEADER_SIZE = 8

#: Size charged for payload objects that are not bytes/str.
DEFAULT_PAYLOAD_SIZE = 32


def estimate_size(obj: Any) -> int:
    """Estimate the wire size, in bytes, of ``obj``.

    Headers may override the estimate by exposing a ``size_bytes`` attribute
    (either a class constant or a property).  Dataclass headers without an
    explicit size are charged per field.
    """
    explicit = getattr(obj, "size_bytes", None)
    if isinstance(explicit, int):
        return explicit
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 4
    if isinstance(obj, float):
        return 8
    if obj is None:
        return 1
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(estimate_size(getattr(obj, f.name)) for f in fields(obj)) or 1
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in obj) + 2
    if isinstance(obj, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in obj.items()) + 2
    return DEFAULT_PAYLOAD_SIZE


@dataclass
class Message:
    """A payload plus a stack of protocol headers.

    The header stack follows Appia's discipline: :meth:`push_header` on the
    way down the stack, :meth:`pop_header` on the way up.  Layers must pop
    exactly the headers they pushed; violating the discipline raises
    ``IndexError`` which surfaces composition bugs immediately.
    """

    payload: Any = b""
    headers: list[Any] = field(default_factory=list)

    def push_header(self, header: Any) -> None:
        """Push ``header`` on top of the header stack."""
        self.headers.append(header)

    def pop_header(self) -> Any:
        """Pop and return the top header.

        Raises:
            IndexError: if the header stack is empty.
        """
        return self.headers.pop()

    def peek_header(self) -> Any:
        """Return the top header without removing it."""
        return self.headers[-1]

    @property
    def size_bytes(self) -> int:
        """Total estimated wire size of payload plus all headers."""
        total = estimate_size(self.payload)
        for header in self.headers:
            total += max(estimate_size(header), 1) + 1  # +1 framing byte
        return total

    def copy(self) -> "Message":
        """Return a deep copy, as if the message were re-read off the wire.

        Point-to-point fan-out and relaying must copy messages so that one
        receiver popping headers does not corrupt another receiver's view.
        """
        return Message(payload=copy.deepcopy(self.payload),
                       headers=copy.deepcopy(self.headers))

    def __len__(self) -> int:
        return self.size_bytes
