"""Messages carried by sendable events — copy-on-write with structural sharing.

Appia messages are byte buffers with a header stack: each layer pushes its
header on the way down and pops it on the way up.  This reproduction keeps
the push/pop discipline but stores the stack as a **persistent (immutable)
cons structure**: every :class:`Message` is a lightweight handle ``(payload,
top-node)`` onto a shared chain of :class:`_HeaderNode` cells, each cell
immutable once created.

Consequences, and the ownership contract every layer relies on:

* :meth:`Message.copy` is **O(1)** — it duplicates the handle, never the
  chain or the payload.  Fan-out layers, retransmission stores and the
  wire path copy freely; a multicast transmission shares one frozen chain
  across all receivers.
* ``push_header`` allocates one cell on top of the shared tail;
  ``pop_header`` moves this handle's top pointer down.  Neither ever
  mutates a cell, so **no sequence of push/pop on one handle can corrupt
  another handle's view** — the isolation that previously required a deep
  copy per receiver now holds structurally.
* ``size_bytes`` is maintained **incrementally**: each cell caches the
  cumulative size of the stack below-and-including it at creation, and the
  payload estimate is cached per handle, so reading ``size_bytes`` after a
  push/pop is O(1) instead of a recursive re-walk.
* **Headers are frozen at push time.**  A layer that pushes mutable state
  must push a private copy (as the causal layer does with its vector
  clock), and a layer that pops a header must treat its contents as
  read-only.  Mutating a header object after pushing it corrupts every
  handle sharing the cell *and* desynchronizes the cached byte accounting.
* **Payloads are shared by reference.**  This is a deliberately *narrower*
  contract than the seed's (which deep-copied payloads on every
  ``copy()``/``clone()``, so even within-node paths — loopbacks, held
  sends, retransmit stores — were isolated): once a payload object is
  attached to a message that has been sent, treat it as immutable.
  Across the wire the old observable semantics are preserved — the
  transport snapshots mutable payloads (:func:`snapshot_payload`, via
  :meth:`Message.wire_copy`) so a sender mutating its payload object
  after the send cannot retroactively change what receivers observe; the
  snapshot is computed once per payload and cached across the message's
  copy family, so a fan-out's N transmissions share one snapshot.
  Received payloads are shared between the delivery and any
  retransmission store — treat them as immutable.

For experiment accounting every header contributes a size estimate so that
byte counters in :mod:`repro.simnet.stats` remain meaningful; the estimates
(and therefore every counter) are unchanged from the recursive-walk era.
"""

from __future__ import annotations

import copy
from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Optional

#: Default serialized size charged for a header with no explicit estimate.
DEFAULT_HEADER_SIZE = 8

#: Size charged for payload objects that are not bytes/str.
DEFAULT_PAYLOAD_SIZE = 32


def _estimate_str(obj: str) -> int:
    return len(obj.encode("utf-8"))


def _estimate_seq(obj: Any) -> int:
    return sum(estimate_size(item) for item in obj) + 2


def _estimate_dict(obj: dict) -> int:
    return sum(estimate_size(k) + estimate_size(v)
               for k, v in obj.items()) + 2


#: Exact-type fast dispatch for :func:`estimate_size`.  Builtins cannot
#: carry a ``size_bytes`` override, so skipping the ``getattr`` probe (and
#: the isinstance ladder) for them is charge-identical — and they are the
#: overwhelming majority of what the hot send path estimates.
_ESTIMATE_FAST: dict[type, Any] = {
    bytes: len, bytearray: len, str: _estimate_str,
    bool: lambda obj: 1, int: lambda obj: 4, float: lambda obj: 8,
    type(None): lambda obj: 1,
    list: _estimate_seq, tuple: _estimate_seq,
    set: _estimate_seq, frozenset: _estimate_seq,
    dict: _estimate_dict,
}


def estimate_size(obj: Any) -> int:
    """Estimate the wire size, in bytes, of ``obj``.

    Headers may override the estimate by exposing a ``size_bytes`` attribute
    (either a class constant or a property).  Dataclass headers without an
    explicit size are charged per field.
    """
    fast = _ESTIMATE_FAST.get(type(obj))
    if fast is not None:
        return fast(obj)
    explicit = getattr(obj, "size_bytes", None)
    if isinstance(explicit, int):
        return explicit
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 4
    if isinstance(obj, float):
        return 8
    if obj is None:
        return 1
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(estimate_size(getattr(obj, f.name)) for f in fields(obj)) or 1
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in obj) + 2
    if isinstance(obj, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in obj.items()) + 2
    return DEFAULT_PAYLOAD_SIZE


#: Payload types that need no snapshot at the wire boundary.
_IMMUTABLE_PAYLOAD_TYPES = (bytes, str, int, float, bool, frozenset,
                            type(None), type)

#: Lazily-bound :mod:`repro.kernel.codec` (breaks the import cycle: the
#: codec module imports Message/WirePayload from here at call time).
_codec = None


def _get_codec():
    global _codec
    if _codec is None:
        from repro.kernel import codec
        _codec = codec
    return _codec


class WirePayload:
    """A payload frozen into compact wire bytes (see :mod:`.codec`).

    Replaces the object-graph snapshot on the wire path: the sender encodes
    once per transmission (shared by every receiver of a fan-out via the
    message's copy-family cache), and receivers decode lazily, once per
    family — :attr:`Message.payload` unwraps transparently, so layers never
    see the wrapper.

    ``size_bytes`` is the *legacy* accounting charge of the encoded object
    (computed during encoding), NOT the blob length: byte charges drive
    link delays, loss draws and battery drain, and must stay bit-identical
    to the pre-codec estimates.  The true encoded length (``len(blob)``)
    feeds the separate ``wire_bytes`` counters.
    """

    __slots__ = ("blob", "size_bytes", "_decoded")

    _UNSET = object()

    def __init__(self, blob: bytes, size_bytes: int) -> None:
        self.blob = blob
        self.size_bytes = size_bytes
        self._decoded: Any = WirePayload._UNSET

    def decoded(self) -> Any:
        """The payload object, decoded on first access and then shared.

        Sharing one decode across the copy family mirrors the pre-codec
        behaviour (all receivers of a transmission observed one snapshot
        object); the decoded value is immutable by the ownership contract.
        """
        value = self._decoded
        if value is WirePayload._UNSET:
            value = self._decoded = _get_codec().decode_payload(self.blob)
        return value

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, WirePayload):
            return self.blob == other.blob
        return self.decoded() == other

    def __hash__(self) -> int:
        return hash(self.blob)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WirePayload({len(self.blob)}B wire, "
                f"charge={self.size_bytes})")


def snapshot_payload(obj: Any) -> Any:
    """A one-level-per-container snapshot of a payload for transmission.

    Unlike ``copy.deepcopy`` this understands the message model: immutable
    leaves pass through untouched, a nested :class:`Message` (control
    payloads carry them for retransmissions and gossip relays) becomes an
    O(1) copy-on-write handle, and only mutable containers are rebuilt.
    """
    if isinstance(obj, _IMMUTABLE_PAYLOAD_TYPES):
        return obj
    if isinstance(obj, Message):
        # wire_copy, not copy: the nested message's own payload must be
        # snapshotted too, or a retransmitted/relayed message would leak
        # sender-side mutations made after the original send.
        return obj.wire_copy()
    if isinstance(obj, tuple):
        return tuple(snapshot_payload(item) for item in obj)
    if isinstance(obj, list):
        return [snapshot_payload(item) for item in obj]
    if isinstance(obj, dict):
        return {key: snapshot_payload(value) for key, value in obj.items()}
    if isinstance(obj, set):
        return {snapshot_payload(item) for item in obj}
    if isinstance(obj, bytearray):
        return bytearray(obj)
    return copy.deepcopy(obj)


class _HeaderNode:
    """One immutable cell of a persistent header stack.

    ``stack_bytes`` caches the cumulative wire-size charge of this cell and
    everything below it, which is what makes ``Message.size_bytes`` O(1).
    """

    __slots__ = ("header", "below", "depth", "stack_bytes")

    def __init__(self, header: Any, below: Optional["_HeaderNode"]) -> None:
        self.header = header
        self.below = below
        self.depth = 1 if below is None else below.depth + 1
        charge = max(estimate_size(header), 1) + 1  # +1 framing byte
        self.stack_bytes = charge if below is None \
            else below.stack_bytes + charge


class Message:
    """A payload plus a persistent, structurally-shared stack of headers.

    The header stack follows Appia's discipline: :meth:`push_header` on the
    way down the stack, :meth:`pop_header` on the way up.  Layers must pop
    exactly the headers they pushed; violating the discipline raises
    ``IndexError`` which surfaces composition bugs immediately.

    See the module docstring for the copy-on-write ownership contract.
    """

    __slots__ = ("_payload", "_payload_size", "_top", "_wire_cache")

    def __init__(self, payload: Any = b"",
                 headers: Iterable[Any] = ()) -> None:
        self._payload = payload
        self._payload_size: Optional[int] = None
        #: Shared wire-snapshot cell (see :meth:`wire_copy`): a one-element
        #: list holding the cached :func:`snapshot_payload` of the current
        #: payload, shared by every handle :meth:`copy` derives from this
        #: one so a fan-out's N transmissions snapshot once.  ``None``
        #: until the first copy/wire_copy needs it.
        self._wire_cache: Optional[list] = None
        top: Optional[_HeaderNode] = None
        for header in headers:  # given bottom → top, like the old list form
            top = _HeaderNode(header, top)
        self._top = top

    # -- payload --------------------------------------------------------------

    @property
    def payload(self) -> Any:
        payload = self._payload
        if type(payload) is WirePayload:
            return payload.decoded()
        return payload

    @payload.setter
    def payload(self, value: Any) -> None:
        self._payload = value
        self._payload_size = None  # re-estimated lazily
        # Detach from the shared snapshot cell: this handle's payload is
        # new, while copies made earlier keep their (still valid) cache.
        self._wire_cache = None

    # -- header stack ---------------------------------------------------------

    def push_header(self, header: Any) -> None:
        """Push ``header`` on top of the header stack (one cell allocated;
        the stack below is shared, never copied)."""
        self._top = _HeaderNode(header, self._top)

    def pop_header(self) -> Any:
        """Pop and return the top header (this handle's view only; other
        handles sharing the chain are unaffected).

        Raises:
            IndexError: if the header stack is empty.
        """
        top = self._top
        if top is None:
            raise IndexError("pop from an empty header stack")
        self._top = top.below
        return top.header

    def peek_header(self) -> Any:
        """Return the top header without removing it."""
        if self._top is None:
            raise IndexError("peek on an empty header stack")
        return self._top.header

    @property
    def header_depth(self) -> int:
        """Number of headers on the stack — O(1)."""
        return 0 if self._top is None else self._top.depth

    @property
    def headers(self) -> list[Any]:
        """The header stack as a fresh bottom→top list.

        Materialized on demand for diagnostics and serialization
        (:mod:`repro.protocols.fec` / ``frag`` freeze paths, tests).  Hot
        paths should use :attr:`header_depth` / :meth:`peek_header` instead;
        mutating the returned list does not affect the message.
        """
        out: list[Any] = []
        node = self._top
        while node is not None:
            out.append(node.header)
            node = node.below
        out.reverse()
        return out

    # -- size accounting ------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total estimated wire size of payload plus all headers — O(1).

        The per-header charges live in the shared cells; the payload
        estimate is cached per handle and invalidated when ``payload`` is
        reassigned (mutating a payload *in place* is outside the ownership
        contract — see the module docstring).
        """
        if self._payload_size is None:
            self._payload_size = estimate_size(self._payload)
        return self._payload_size + \
            (0 if self._top is None else self._top.stack_bytes)

    @property
    def wire_bytes(self) -> int:
        """Actual compact-codec length of the whole message — interned
        header keys, varint framing, and the frozen payload blob
        re-embedded verbatim.

        ``size_bytes`` stays the accounting source of truth (delay, loss
        and battery models); this is the measurement of what the compact
        encoding saves.  Only meaningful on a wire copy (frozen payload):
        unfrozen handles and exotic legacy-snapshot payloads fall back to
        ``size_bytes``.  Not cached — :class:`~repro.kernel.packet.Packet`
        computes it once per transmission and fans it out.
        """
        payload = self._payload
        if type(payload) is not WirePayload:
            return self.size_bytes
        if self._top is None:
            # Bare message (the common case at the packet boundary: layers
            # fold their state into the payload dict): pure arithmetic —
            # message tag + zero header count + blob re-embed framing.
            blob_len = len(payload.blob)
            return (3 + blob_len +
                    ((blob_len.bit_length() or 1) + 6) // 7 +
                    ((payload.size_bytes.bit_length() or 1) + 6) // 7)
        codec = _get_codec()
        try:
            blob, _ = codec.encode_payload(self)
        except codec.CodecError:  # exotic header value
            return self.size_bytes
        return len(blob)

    # -- copying --------------------------------------------------------------

    def copy(self) -> "Message":
        """Return an O(1) copy-on-write handle onto the same structure.

        The copy and the original share the payload reference and the
        header chain; push/pop on either never affects the other.  Fan-out,
        relaying and retransmission stores copy with this.
        """
        cache = self._wire_cache
        if cache is None:
            # Install the shared snapshot cell at the sharing point, so
            # every handle of this copy family sees one cache.
            cache = self._wire_cache = [None]
        dup = Message.__new__(Message)
        dup._payload = self._payload
        dup._payload_size = self._payload_size
        dup._top = self._top
        dup._wire_cache = cache
        return dup

    def wire_copy(self) -> "Message":
        """A copy safe to hand to the network, as if serialized.

        Like :meth:`copy` but with mutable payload containers snapshotted
        (:func:`snapshot_payload`), so sender-side mutation after the send
        cannot leak into what receivers observe — the seed-era "re-read off
        the wire" semantics at a fraction of the former deep-copy cost.

        The snapshot of an unchanged payload is **cached in a cell shared
        across the message's copy family**: a best-effort fan-out of one
        group send — N clones of one event, each crossing the transport —
        snapshots the payload dict once, not N times, and a relay
        re-transmitting a received message reuses the snapshot it was
        delivered with (the snapshot, being immutable by contract, is its
        own wire form).  The cache is invalidated when ``payload`` is
        reassigned; mutating a payload object *in place* after it was
        first transmitted is outside the ownership contract (see the
        module docstring) with or without the cache.
        """
        cache = self._wire_cache
        if cache is None:
            cache = self._wire_cache = [None]
        snap = cache[0]
        if snap is None:
            payload = self._payload
            if type(payload) is WirePayload:
                # Relay path: a received payload is already frozen bytes —
                # its own wire form, zero re-encode.
                snap = payload
            else:
                codec = _get_codec()
                try:
                    blob, charge = codec.encode_payload(payload)
                    snap = WirePayload(blob, charge)
                    if isinstance(payload, _IMMUTABLE_PAYLOAD_TYPES):
                        # Already its own snapshot: seed the decode cache
                        # so receivers observe the sender's object directly
                        # (identity pass-through, zero decode cost), as the
                        # pre-codec path did.
                        snap._decoded = payload
                except codec.CodecError:
                    # Exotic payload (custom class, dataclass): legacy
                    # object-graph snapshot at the old cost.
                    snap = snapshot_payload(payload)
            cache[0] = snap
        dup = self.copy()  # shares the cache cell holding ``snap``
        dup._payload = snap
        return dup

    # -- dunder compatibility -------------------------------------------------

    def __len__(self) -> int:
        return self.size_bytes

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self._payload == other._payload and \
            self.headers == other.headers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(payload={self._payload!r}, "
                f"headers={self.headers!r})")
