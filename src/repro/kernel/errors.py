"""Exception hierarchy for the protocol kernel.

The kernel mirrors the error discipline of the Appia protocol kernel: misuse
of the composition API (invalid QoS, unknown layers, double-forwarded events)
raises early and loudly instead of corrupting channel state.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class InvalidQoSError(KernelError):
    """A QoS composition is structurally invalid.

    Raised, for example, when a layer requires an event type that no other
    layer in the composition provides.
    """


class ChannelStateError(KernelError):
    """An operation was attempted in an illegal channel lifecycle state."""


class EventRoutingError(KernelError):
    """An event was forwarded or inserted in an illegal way.

    Typical causes: calling :meth:`Event.go` twice for the same hop, or
    inserting an event into a channel it was not initialised for.
    """


class UnknownLayerError(KernelError):
    """An XML configuration referenced a layer name that is not registered."""


class ConfigurationError(KernelError):
    """An XML channel description is malformed or inconsistent."""
