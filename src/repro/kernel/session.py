"""Sessions: the stateful, per-channel half of a micro-protocol.

For each layer of a channel's QoS there is one session holding the state the
protocol needs (paper §3.1).  Two channels that share a layer *may* share the
session, in which case the protocol correlates events across channels — the
canonical example in the paper is a causal-order session shared by two
channels so their messages are ordered among each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.kernel.errors import EventRoutingError
from repro.kernel.events import (BackoffTimerEvent, Direction, Event,
                                 PeriodicTimerEvent, TimerEvent)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.channel import Channel, TimerHandle
    from repro.kernel.layer import Layer


class Session:
    """Base class for protocol sessions.

    A session may be bound to several channels at once (session sharing);
    :attr:`channels` lists the live bindings.  Helper methods that inject
    events take an optional ``channel`` argument and default to the single
    bound channel — passing the channel explicitly is mandatory for shared
    sessions, which keeps sharing misuse detectable.
    """

    def __init__(self, layer: "Layer") -> None:
        self.layer = layer
        self.channels: list["Channel"] = []

    # -- binding -----------------------------------------------------------

    def _bound(self, channel: "Channel") -> None:
        if channel not in self.channels:
            self.channels.append(channel)

    def _unbound(self, channel: "Channel") -> None:
        if channel in self.channels:
            self.channels.remove(channel)

    @property
    def channel(self) -> "Channel":
        """The unique bound channel.

        Raises:
            EventRoutingError: when the session is bound to zero or several
                channels, in which case the caller must name the channel.
        """
        if len(self.channels) != 1:
            raise EventRoutingError(
                f"session {self!r} is bound to {len(self.channels)} channels; "
                "pass the channel explicitly")
        return self.channels[0]

    def _resolve(self, channel: Optional["Channel"]) -> "Channel":
        return channel if channel is not None else self.channel

    # -- event handling ----------------------------------------------------

    def handle(self, event: Event) -> None:
        """Process ``event``.

        The default implementation forwards every event unchanged, so layers
        only intercept what they care about.  Overrides must either call
        :meth:`Event.go` (possibly later) or deliberately consume the event.
        """
        event.go()

    # -- event injection ---------------------------------------------------

    def send_up(self, event: Event, channel: Optional["Channel"] = None) -> None:
        """Inject ``event`` travelling up, starting above this session."""
        self._resolve(channel).insert_from(self, event, Direction.UP)

    def send_down(self, event: Event, channel: Optional["Channel"] = None) -> None:
        """Inject ``event`` travelling down, starting below this session."""
        self._resolve(channel).insert_from(self, event, Direction.DOWN)

    # -- timers --------------------------------------------------------------

    def set_timer(self, delay: float, event: Optional[TimerEvent] = None,
                  tag: Any = None,
                  channel: Optional["Channel"] = None) -> "TimerHandle":
        """Arm a one-shot timer delivering ``event`` to this session.

        Args:
            delay: virtual seconds until the timer fires.
            event: the timer event to deliver; a plain :class:`TimerEvent`
                carrying ``tag`` is created when omitted.
            tag: convenience tag for the auto-created event.
            channel: channel context for shared sessions.
        """
        if event is None:
            event = TimerEvent(tag)
        return self._resolve(channel).set_timer(delay, event, self)

    def set_periodic_timer(self, interval: float,
                           event: Optional[PeriodicTimerEvent] = None,
                           tag: Any = None,
                           channel: Optional["Channel"] = None) -> "TimerHandle":
        """Arm a periodic timer firing every ``interval`` until cancelled."""
        if event is None:
            event = PeriodicTimerEvent(tag, interval)
        return self._resolve(channel).set_timer(interval, event, self)

    def set_backoff_timer(self, interval: float, tag: Any = None,
                          max_interval: Optional[float] = None,
                          factor: float = 2.0,
                          channel: Optional["Channel"] = None) -> "TimerHandle":
        """Arm a rearm-on-fire one-shot whose interval stretches by
        ``factor`` (capped at ``max_interval``) after every fire.

        The timer event's ``attempt`` counts completed fires.  With
        ``factor=1.0`` this is a constant-interval rearm-on-fire one-shot
        — the event-driven replacement for periodic ticks whose handler
        decides per fire whether the loop should continue (cancel the
        returned handle to stop it).
        """
        event = BackoffTimerEvent(tag, interval, max_interval=max_interval,
                                  factor=factor)
        return self._resolve(channel).set_timer(interval, event, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} of {self.layer.name()}>"
