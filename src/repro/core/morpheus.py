"""The Morpheus facade: one call wires a node into the full architecture.

A :class:`MorpheusNode` assembles, per device (Figure 1):

* the node's protocol kernel and one shared transport session (NIC adapter);
* the **control channel** hosting Cocaditem (context capture/dissemination)
  and Core (control + reconfiguration), which share the channel *"for
  performance reasons"* (paper §3.3);
* the **data channel**, initially the plain configuration, thereafter
  whatever Core's policy deploys;
* the chat application session, preserved across reconfigurations.

:class:`PlainNode` builds the non-adaptive baseline used by the paper's
evaluation: the same application and group-communication suite, but no
Morpheus components and therefore no adaptation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.chat import ChatSession
from repro.context.cocaditem import CocaditemSession
from repro.context.pubsub import TopicBus
from repro.context.retrievers import ContextRetriever
from repro.core.core_layer import CoreSession
from repro.core.local_module import LocalModule
from repro.core.policy import ContextDirectory, HybridMechoPolicy, Policy
from repro.core.templates import (APP_LABEL, TRANSPORT_LABEL,
                                  control_template, plain_data_template)
from repro.kernel.channel import Channel, ChannelState
from repro.kernel.events import Direction
from repro.kernel.group import scoped_name
from repro.kernel.xml_config import ChannelTemplate
from repro.protocols.events import LeaveRequestEvent
from repro.simnet.network import Network
from repro.simnet.transport import SimTransportLayer, SimTransportSession


class MorpheusNode:
    """A device running the full Morpheus architecture.

    Args:
        network: the simulated network (node must already exist in it).
        node_id: this device's identifier.
        group_members: bootstrap membership of both the control and the
            data group (the paper's prototype uses the same set).
        policy: reconfiguration policy; defaults to the paper's
            :class:`HybridMechoPolicy`.
        data_template: initial data-channel configuration; defaults to the
            plain (non-adaptive) stack, which Core then adapts.
        ordering: optional ordering layers for the data stack
            (``"causal"``/``"total"``).
        room: chat room name.
        publish_interval / evaluate_interval / heartbeat_interval /
        nack_interval: component periods, in virtual seconds.
        retrievers: context retriever set (defaults to the standard six).
        joining: build the node as a mid-run joiner — its control channel
            solicits admission from ``group_members`` (which must list the
            running group plus this node) and its data channel boots as a
            singleton until the Core coordinator folds it into the group's
            next configuration.
        group: named group (federation cell) this node instance belongs
            to.  Empty (the default) is the flat single-group deployment,
            byte-identical to the pre-federation stack; a non-empty name
            scopes the channel names (``ctrl@g`` / ``data@g``) and keys
            every suite layer's epoch by the scoped group id, so one
            device can host several cells side by side.
        app_params: extra chat-layer parameters merged over ``room``
            (federation: ``fed_seq``, ``backlog_n``, ``reconcile``).
    """

    def __init__(self, network: Network, node_id: str,
                 group_members: Sequence[str], *,
                 policy: Optional[Policy] = None,
                 data_template: Optional[ChannelTemplate] = None,
                 ordering: Sequence[str] = (),
                 room: str = "lobby",
                 publish_interval: float = 10.0,
                 evaluate_interval: float = 5.0,
                 heartbeat_interval: float = 5.0,
                 nack_interval: float = 0.25,
                 retrievers: Optional[list[ContextRetriever]] = None,
                 joining: bool = False,
                 group: str = "",
                 app_params: Optional[dict] = None) -> None:
        self.network = network
        self.node = network.node(node_id)
        self.members = tuple(sorted(group_members))
        self.joining = joining
        self.group = group
        self.bus = TopicBus()
        self.directory = ContextDirectory(self.bus)

        stack_options = {
            "ordering": tuple(ordering),
            "heartbeat_interval": heartbeat_interval,
            "nack_interval": nack_interval,
            "app_layer": "chat_app",
            "app_params": {"room": room, **(app_params or {})},
        }
        if group:
            stack_options["group"] = scoped_name("data", group)
        self._stack_options = stack_options

        transport_layer = SimTransportLayer()
        transport_session = SimTransportSession(transport_layer,
                                                node=self.node)
        self.bindings = {TRANSPORT_LABEL: transport_session}
        self.local_module = LocalModule(self.node, scoped_name("data", group),
                                        self.bindings)

        # Control channel: Cocaditem + Core over their own group suite.
        ctrl = control_template(self.members,
                                publish_interval=publish_interval,
                                evaluate_interval=evaluate_interval,
                                heartbeat_interval=heartbeat_interval,
                                nack_interval=nack_interval,
                                joining=joining,
                                group=scoped_name("ctrl", group)
                                if group else "")
        self.control_channel: Channel = ctrl.instantiate(
            self.node.kernel, channel_name=scoped_name("ctrl", group),
            session_bindings=self.bindings, start=False)
        cocaditem = self.control_channel.session_named("cocaditem")
        assert isinstance(cocaditem, CocaditemSession)
        cocaditem.attach(self.node, self.bus, retrievers)
        self.cocaditem = cocaditem
        core = self.control_channel.session_named("core")
        assert isinstance(core, CoreSession)
        self.policy = policy if policy is not None else HybridMechoPolicy(
            stack_options=stack_options)
        # A joiner's initial data channel is a singleton group: the Core
        # coordinator redeploys everyone (joiner included) with the grown
        # membership once the control channel admits it.
        initial_data_members = (node_id,) if joining else self.members
        core.attach(self.local_module, self.policy, self.directory,
                    initial_config_name="plain",
                    initial_members=initial_data_members)
        self.core = core
        self.control_channel.start()

        # Data channel: plain configuration until Core decides otherwise.
        template = data_template if data_template is not None else \
            plain_data_template(initial_data_members, **stack_options)
        self.data_channel = self.local_module.deploy_initial(template)

        chat = self.bindings.get(APP_LABEL)
        assert isinstance(chat, ChatSession), \
            "data template must place a chat_app layer on top"
        self.chat = chat

        # Event-driven adaptation: any runtime topology mutation triggers
        # an immediate context dissemination (one virtual instant later, so
        # the publish runs outside the mutating call), instead of waiting
        # out the publish interval.
        network.subscribe_topology(self._on_topology_change)
        self._subscribed = True

    def _on_topology_change(self, change) -> None:
        if not self.node.alive:
            return
        # News about a node across a partition line cannot reach this
        # node's sensors — only events in the reachable component count.
        # Network-wide changes (loss swaps, the partition itself) always
        # trigger: they alter this node's own link conditions.
        if change.node_id is not None and \
                not self.network.reachable(self.node_id, change.node_id):
            return
        self.network.engine.call_later(0.0, self.cocaditem.publish_now)

    # -- conveniences -----------------------------------------------------------

    @property
    def node_id(self) -> str:
        return self.node.node_id

    @property
    def stats(self):
        """NIC counters (the Figure 3 instrument)."""
        return self.node.stats

    def send(self, text: str) -> None:
        """Send a chat message to the group."""
        self.chat.send(text)

    def leave(self) -> None:
        """Gracefully leave both groups (control and data).

        The membership layers run their leave flushes; the caller is
        expected to remove the node from the network once they complete
        (see :meth:`~repro.simnet.network.Network.remove_node`).
        """
        if self.local_module.data_channel is not None:
            self.local_module.data_channel.insert(LeaveRequestEvent(),
                                                  Direction.DOWN)
        self.control_channel.insert(LeaveRequestEvent(), Direction.DOWN)
        self._unsubscribe()

    def shutdown(self) -> None:
        """Tear this node instance down without a group-leave flush.

        Used by cell re-formation (split/merge): the federation runner
        captures the chat state, shuts every member's old instance down
        and boots fresh instances under new group names.  Both channels
        close immediately — their timers are cancelled and their ports
        unbound, so stale packets of the old cell die at the transport.
        """
        self._unsubscribe()
        self.local_module.shutdown()
        if self.control_channel.state is ChannelState.STARTED:
            self.control_channel.close()

    def _unsubscribe(self) -> None:
        if self._subscribed:
            self.network.unsubscribe_topology(self._on_topology_change)
            self._subscribed = False

    def current_stack(self) -> list[str]:
        """Layer names of the live data stack, bottom → top."""
        channel = self.local_module.data_channel
        return channel.layer_names() if channel is not None else []

    def deployed_configuration(self) -> Optional[str]:
        """Name of the currently deployed data template on this node."""
        return self.local_module.current_template_name


class PlainNode:
    """The non-adaptive baseline: same app + suite, no Morpheus components."""

    def __init__(self, network: Network, node_id: str,
                 group_members: Sequence[str], *,
                 ordering: Sequence[str] = (),
                 room: str = "lobby",
                 heartbeat_interval: float = 5.0,
                 nack_interval: float = 0.25,
                 native: bool = False) -> None:
        self.network = network
        self.node = network.node(node_id)
        self.members = tuple(sorted(group_members))
        transport_layer = SimTransportLayer()
        transport_session = SimTransportSession(transport_layer,
                                                node=self.node)
        self.bindings = {TRANSPORT_LABEL: transport_session}
        template = plain_data_template(
            self.members, ordering=ordering, app_params={"room": room},
            heartbeat_interval=heartbeat_interval,
            nack_interval=nack_interval, native=native)
        self.data_channel = template.instantiate(
            self.node.kernel, channel_name="data",
            session_bindings=self.bindings)
        chat = self.bindings.get(APP_LABEL)
        assert isinstance(chat, ChatSession)
        self.chat = chat

    @property
    def node_id(self) -> str:
        return self.node.node_id

    @property
    def stats(self):
        return self.node.stats

    def send(self, text: str) -> None:
        self.chat.send(text)


def build_morpheus_group(network: Network, **options) -> dict[str, MorpheusNode]:
    """One :class:`MorpheusNode` per node already present in ``network``."""
    members = network.node_ids()
    return {node_id: MorpheusNode(network, node_id, members, **options)
            for node_id in members}


def build_plain_group(network: Network, **options) -> dict[str, PlainNode]:
    """One :class:`PlainNode` per node already present in ``network``."""
    members = network.node_ids()
    return {node_id: PlainNode(network, node_id, members, **options)
            for node_id in members}
