"""Stack templates: the configurations Core can deploy (Figure 2).

Builders for the XML channel descriptions used throughout the system:

* :func:`plain_data_template` — Figure 2(a): the homogeneous configuration,
  plain best-effort multicast under the group-communication suite;
* :func:`mecho_data_template` — Figure 2(b): the hybrid configuration, with
  Mecho in ``wired`` mode on fixed devices and ``wireless`` mode on mobile
  devices;
* :func:`control_template` — the Cocaditem/Core control channel (shared by
  both sub-systems, paper §3.3).

Session labels: ``app`` (the application survives reconfiguration),
``viewsync`` (queued sends survive), ``transport`` (one NIC adapter per
node, shared by every channel).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.kernel.xml_config import ChannelTemplate, LayerSpec

#: Session labels preserved across stack replacement.
APP_LABEL = "app"
VIEWSYNC_LABEL = "viewsync"
TRANSPORT_LABEL = "transport"
CORE_LABEL = "core"
COCADITEM_LABEL = "cocaditem"


def _members_csv(members: Sequence[str]) -> str:
    return ",".join(sorted(members))


def _suite_specs(members: Sequence[str], heartbeat_interval: float,
                 nack_interval: float, view_id: int,
                 label_viewsync: bool = True,
                 joining: bool = False,
                 group: str = "") -> list[LayerSpec]:
    """The common middle of every stack: viewsync/membership/hb/reliable.

    The view-synchrony session is labelled (preserved across swaps) only on
    data channels; the control channel keeps its own private instance.
    ``joining`` puts the membership layer in joiner mode (solicit admission
    instead of self-installing the bootstrap view).  A non-empty ``group``
    keys every suite layer's epoch by that group id (a federation cell);
    the flat deployment omits the parameter entirely so its XML and wire
    bytes are unchanged.
    """
    csv = _members_csv(members)
    scope: dict = {"group": group} if group else {}
    membership_params: dict = {"members": csv, "view_id": view_id, **scope}
    if joining:
        membership_params["join"] = True
    return [
        LayerSpec("view_sync", dict(scope),
                  session_label=VIEWSYNC_LABEL if label_viewsync else None),
        LayerSpec("membership", membership_params),
        LayerSpec("heartbeat", {"members": csv,
                                "interval": heartbeat_interval, **scope}),
        LayerSpec("reliable", {"members": csv,
                               "nack_interval": nack_interval, **scope}),
    ]


def _ordering_specs(ordering: Sequence[str]) -> list[LayerSpec]:
    specs = []
    if "total" in ordering:
        specs.append(LayerSpec("total"))
    if "causal" in ordering:
        specs.append(LayerSpec("causal"))
    return specs


def plain_data_template(members: Sequence[str], *, name: str = "data",
                        app_layer: str = "chat_app",
                        app_params: Optional[dict] = None,
                        ordering: Sequence[str] = (),
                        heartbeat_interval: float = 5.0,
                        nack_interval: float = 0.25,
                        view_id: int = 0,
                        native: bool = False,
                        group: str = "") -> ChannelTemplate:
    """Figure 2(a): homogeneous stack over plain best-effort multicast."""
    csv = _members_csv(members)
    specs = [LayerSpec(app_layer, dict(app_params or {}),
                       session_label=APP_LABEL)]
    specs += _ordering_specs(ordering)
    specs += _suite_specs(members, heartbeat_interval, nack_interval, view_id,
                          group=group)
    specs.append(LayerSpec("beb", {"members": csv, "native": native}))
    specs.append(LayerSpec("sim_transport", session_label=TRANSPORT_LABEL))
    return ChannelTemplate(name, tuple(specs))


def mecho_data_template(members: Sequence[str], *, mode: str, relay: str,
                        name: str = "data",
                        app_layer: str = "chat_app",
                        app_params: Optional[dict] = None,
                        ordering: Sequence[str] = (),
                        heartbeat_interval: float = 5.0,
                        nack_interval: float = 0.25,
                        view_id: int = 0,
                        group: str = "") -> ChannelTemplate:
    """Figure 2(b): hybrid stack with Mecho at the base.

    ``mode`` is the Mecho operating mode for the node this template is
    shipped to (``wired`` on fixed devices, ``wireless`` on mobile ones) and
    ``relay`` the selected fixed relay.
    """
    csv = _members_csv(members)
    specs = [LayerSpec(app_layer, dict(app_params or {}),
                       session_label=APP_LABEL)]
    specs += _ordering_specs(ordering)
    specs += _suite_specs(members, heartbeat_interval, nack_interval, view_id,
                          group=group)
    # Relay probe shorter than the failure detector's suspicion timeout
    # (6 × heartbeat interval): the relay must be declared dead — and the
    # fall-back to direct fan-out engaged — before the detector starts
    # suspecting peers whose beacons died with the relay.
    specs.append(LayerSpec("mecho", {"members": csv, "mode": mode,
                                     "relay": relay,
                                     "relay_timeout": 3.0 * heartbeat_interval}))
    specs.append(LayerSpec("sim_transport", session_label=TRANSPORT_LABEL))
    return ChannelTemplate(name, tuple(specs))


def fec_data_template(members: Sequence[str], *, name: str = "data",
                      app_layer: str = "chat_app",
                      app_params: Optional[dict] = None,
                      ordering: Sequence[str] = (),
                      heartbeat_interval: float = 5.0,
                      nack_interval: float = 0.25,
                      view_id: int = 0,
                      k: int = 8, m: int = 2,
                      group: str = "") -> ChannelTemplate:
    """Error-masking stack (§2): Reed–Solomon FEC below the reliable layer.

    At high loss rates the FEC layer reconstructs most missing messages
    before the reliable layer notices a gap, trading a fixed ``m/k``
    bandwidth overhead for (latency-expensive) retransmission round-trips.
    """
    csv = _members_csv(members)
    specs = [LayerSpec(app_layer, dict(app_params or {}),
                       session_label=APP_LABEL)]
    specs += _ordering_specs(ordering)
    specs += _suite_specs(members, heartbeat_interval, nack_interval, view_id,
                          group=group)
    specs.append(LayerSpec("fec", {"members": csv, "k": k, "m": m}))
    specs.append(LayerSpec("beb", {"members": csv}))
    specs.append(LayerSpec("sim_transport", session_label=TRANSPORT_LABEL))
    return ChannelTemplate(name, tuple(specs))


def control_template(members: Sequence[str], *, name: str = "ctrl",
                     publish_interval: float = 10.0,
                     evaluate_interval: float = 5.0,
                     heartbeat_interval: float = 5.0,
                     nack_interval: float = 0.25,
                     joining: bool = False,
                     group: str = "") -> ChannelTemplate:
    """The shared Cocaditem + Core control channel (paper §3.2–3.3).

    ``joining`` builds the control stack of a node that enters a running
    system: its membership layer asks the listed peers for admission
    instead of self-installing a bootstrap view.
    """
    csv = _members_csv(members)
    specs = [
        LayerSpec("core", {"evaluate_interval": evaluate_interval},
                  session_label=CORE_LABEL),
        LayerSpec("cocaditem", {"publish_interval": publish_interval},
                  session_label=COCADITEM_LABEL),
    ]
    specs += _suite_specs(members, heartbeat_interval, nack_interval,
                          view_id=0, label_viewsync=False, joining=joining,
                          group=group)
    specs.append(LayerSpec("beb", {"members": csv}))
    specs.append(LayerSpec("sim_transport", session_label=TRANSPORT_LABEL))
    return ChannelTemplate(name, tuple(specs))


def patch_for_view(template: ChannelTemplate, members: Sequence[str],
                   view_id: int) -> ChannelTemplate:
    """Rewrite a template's group parameters for the agreed next view.

    The Core coordinator plans a reconfiguration *before* the flush runs, so
    the template it ships cannot know the final view.  At deployment time
    the local module patches every group-aware layer with the held view's
    membership and continues the view numbering.
    """
    csv = _members_csv(members)
    patched = []
    for spec in template.specs:
        params = dict(spec.params)
        if "members" in params:
            params["members"] = csv
        if spec.name == "membership":
            params["view_id"] = view_id
            params["members"] = csv
        patched.append(LayerSpec(spec.name, params, spec.session_label))
    return ChannelTemplate(template.name, tuple(patched))
