"""Reconfiguration policies: distributed context → stack configuration.

The control component's job (paper §3.3) is *"to evaluate context
information in order to select the more adequate configuration"*, applying
**global** optimization policies — the paper's argument for keeping
adaptation logic out of the protocols themselves (§2).

Since the declarative rewrite the real machinery lives in
:mod:`repro.core.rules`: policies are ordered rule lists evaluated by a
:class:`~repro.core.rules.engine.PolicyEngine`, with hysteresis state
owned by the engine per group and an optional
:class:`~repro.core.rules.governor.AdaptationGovernor` rate-limiting
reconfiguration.  The classes below are the legacy names, kept as thin
shims: each is a one-rule (or adapter) engine producing bit-identical
plans to its hand-written predecessor, ungoverned by default.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.core.rules.builtin import (BatteryRotationRule, HybridMechoRule,
                                      LossAdaptiveRule)
from repro.core.rules.engine import PolicyEngine, PolicyRule
from repro.core.rules.governor import AdaptationGovernor
from repro.core.rules.plan import (ContextDirectory, Policy,
                                   ReconfigurationPlan, best_battery_relay,
                                   lowest_id_relay)

__all__ = [
    "ContextDirectory", "ReconfigurationPlan", "Policy",
    "lowest_id_relay", "best_battery_relay",
    "HybridMechoPolicy", "ThresholdBatteryRotationPolicy",
    "LossAdaptivePolicy", "CompositePolicy", "StaticPolicy",
]


class HybridMechoPolicy(PolicyEngine):
    """The paper's demonstration policy (§3.4, §4) — engine shim.

    *Hybrid* membership (fixed + mobile devices) → deploy Mecho: wired mode
    on fixed nodes, wireless mode with a selected fixed relay on mobile
    nodes.  *Homogeneous* membership → deploy the plain configuration.

    Args:
        relay_selector: picks the relay among fixed members (defaults to the
            deterministic lowest id; pass :func:`best_battery_relay` or the
            string ``"best_battery"`` for the energy-aware variant).
        stack_options: keyword arguments forwarded to the template builders
            (ordering, heartbeat/nack intervals, app layer).
        governor: optional adaptation governor (ungoverned by default, so
            plans match the pre-engine policy bit for bit).
    """

    def __init__(self, relay_selector: Union[str, Callable] = lowest_id_relay,
                 stack_options: Optional[dict] = None,
                 governor: Optional[AdaptationGovernor] = None) -> None:
        super().__init__(
            (HybridMechoRule(relay_selector=relay_selector,
                             stack_options=stack_options),),
            governor=governor)


class ThresholdBatteryRotationPolicy(PolicyEngine):
    """Energy-aware extension: rotate the relay to the fullest battery.

    For all-mobile groups (ad hoc scenario) this keeps the relay burden —
    and hence battery drain — balanced, extending the time until the first
    device dies (the network-lifetime metric of [20]).  A new plan is only
    produced when the current relay's battery trails the best candidate by
    more than ``hysteresis`` (avoiding reconfiguration thrash).  The
    relay memory is engine-owned and per-group — the former per-instance
    ``_current_relay`` attribute leaked across group reuse.
    """

    def __init__(self, hysteresis: float = 0.08,
                 stack_options: Optional[dict] = None,
                 governor: Optional[AdaptationGovernor] = None) -> None:
        super().__init__(
            (BatteryRotationRule(hysteresis=hysteresis,
                                 stack_options=stack_options),),
            governor=governor)


class LossAdaptivePolicy(PolicyEngine):
    """Error-recovery adaptation (§2): ARQ at low loss, FEC at high loss.

    *"For small error rates it is preferable to detect and recover (using
    retransmissions) while for larger error rates it is preferable to mask
    the errors (using forward error recovery techniques)."*  The decision
    attribute is the disseminated ``link_quality`` (loss probability) of the
    worst member link; hysteresis prevents flapping around the threshold.
    The FEC on/off memory is engine-owned and per-group — the former
    per-instance ``_fec_active`` attribute leaked across group reuse.
    """

    def __init__(self, threshold: float = 0.08, hysteresis: float = 0.02,
                 k: int = 8, m: int = 2,
                 stack_options: Optional[dict] = None,
                 governor: Optional[AdaptationGovernor] = None) -> None:
        super().__init__(
            (LossAdaptiveRule(threshold=threshold, hysteresis=hysteresis,
                              k=k, m=m, stack_options=stack_options),),
            governor=governor)


class CompositePolicy(PolicyEngine):
    """First-match combination of policies (global policy layering).

    Each sub-policy rides the engine as an adapter rule; evaluation order
    is argument order and the first plan wins, exactly as before.
    """

    def __init__(self, *policies: Policy,
                 governor: Optional[AdaptationGovernor] = None) -> None:
        self.policies = policies
        super().__init__(tuple(PolicyRule(policy) for policy in policies),
                         governor=governor)


class StaticPolicy:
    """Always prescribes one fixed plan (tests, manual control)."""

    def __init__(self, plan: ReconfigurationPlan) -> None:
        self.plan = plan

    def decide(self, directory: ContextDirectory,
               members: Sequence[str],
               now: Optional[float] = None,
               group: Optional[str] = None) -> Optional[ReconfigurationPlan]:
        return self.plan
