"""Reconfiguration policies: distributed context → stack configuration.

The control component's job (paper §3.3) is *"to evaluate context
information in order to select the more adequate configuration"*, applying
**global** optimization policies — the paper's argument for keeping
adaptation logic out of the protocols themselves (§2).

A policy inspects the :class:`ContextDirectory` (fed by Cocaditem) and
returns a :class:`ReconfigurationPlan`: a configuration name plus one
channel template per node (the coordinator *"sends to each participant the
configuration that should be deployed at that node"*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence

from repro.context.model import (BATTERY, DEVICE_TYPE, LINK_QUALITY,
                                 ContextSample, topic_for)
from repro.context.pubsub import TopicBus
from repro.kernel.xml_config import ChannelTemplate
from repro.core.templates import (fec_data_template, mecho_data_template,
                                  plain_data_template)


class ContextDirectory:
    """Latest known context sample per (node, attribute).

    Subscribes to the whole ``context.*`` subtree of a node-local bus, which
    Cocaditem feeds with both local and remote snapshots.
    """

    def __init__(self, bus: TopicBus) -> None:
        self._latest: dict[tuple[str, str], ContextSample] = {}
        self._subscription = bus.subscribe("context.*", self._absorb)

    def _absorb(self, topic: str, sample: ContextSample) -> None:
        self._latest[(sample.node_id, sample.attribute)] = sample

    # -- queries -----------------------------------------------------------

    def value(self, node_id: str, attribute: str,
              default: Any = None) -> Any:
        sample = self._latest.get((node_id, attribute))
        return sample.value if sample is not None else default

    def knows(self, node_id: str, attribute: str) -> bool:
        return (node_id, attribute) in self._latest

    def covers(self, members: Sequence[str], attribute: str) -> bool:
        """True when ``attribute`` is known for every member."""
        return all(self.knows(member, attribute) for member in members)

    def device_kinds(self, members: Sequence[str]) -> dict[str, list[str]]:
        """Members partitioned by device type (unknown members omitted)."""
        kinds: dict[str, list[str]] = {"fixed": [], "mobile": []}
        for member in members:
            kind = self.value(member, DEVICE_TYPE)
            if kind in kinds:
                kinds[kind].append(member)
        return kinds

    def is_hybrid(self, members: Sequence[str]) -> bool:
        """Hybrid scenario: at least one fixed and one mobile member."""
        kinds = self.device_kinds(members)
        return bool(kinds["fixed"]) and bool(kinds["mobile"])


@dataclass
class ReconfigurationPlan:
    """A named configuration with one template per node."""

    name: str
    templates: dict[str, ChannelTemplate] = field(default_factory=dict)

    def template_for(self, node_id: str) -> ChannelTemplate:
        return self.templates[node_id]


class Policy(Protocol):
    """Decides the adequate configuration for the current context."""

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        """Return the desired plan, or ``None`` when undecidable (e.g. the
        context of some member is not yet known)."""
        ...  # pragma: no cover - protocol declaration


def lowest_id_relay(directory: ContextDirectory,
                    fixed_members: Sequence[str]) -> str:
    """Default relay selection: deterministic lowest identifier."""
    return sorted(fixed_members)[0]


def best_battery_relay(directory: ContextDirectory,
                       candidates: Sequence[str]) -> str:
    """Energy-aware relay selection (paper §1, [20]): fullest battery wins;
    ties break deterministically by identifier."""
    def score(member: str) -> tuple[float, str]:
        battery = directory.value(member, BATTERY, default=0.0)
        return (-battery, member)
    return sorted(candidates, key=score)[0]


class HybridMechoPolicy:
    """The paper's demonstration policy (§3.4, §4).

    *Hybrid* membership (fixed + mobile devices) → deploy Mecho: wired mode
    on fixed nodes, wireless mode with a selected fixed relay on mobile
    nodes.  *Homogeneous* membership → deploy the plain configuration.

    Args:
        relay_selector: picks the relay among fixed members (defaults to the
            deterministic lowest id; pass :func:`best_battery_relay` for the
            energy-aware variant).
        stack_options: keyword arguments forwarded to the template builders
            (ordering, heartbeat/nack intervals, app layer).
    """

    def __init__(self, relay_selector=lowest_id_relay,
                 stack_options: Optional[dict] = None) -> None:
        self.relay_selector = relay_selector
        self.stack_options = dict(stack_options or {})

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        if not members or not directory.covers(members, DEVICE_TYPE):
            return None  # distributed context not yet known: wait
        kinds = directory.device_kinds(members)
        if directory.is_hybrid(members):
            relay = self.relay_selector(directory, kinds["fixed"])
            plan = ReconfigurationPlan(name=f"hybrid:relay={relay}")
            for member in members:
                mode = "wired" if member in kinds["fixed"] else "wireless"
                plan.templates[member] = mecho_data_template(
                    members, mode=mode, relay=relay, **self.stack_options)
            return plan
        plan = ReconfigurationPlan(name="plain")
        for member in members:
            plan.templates[member] = plain_data_template(
                members, **self.stack_options)
        return plan


class ThresholdBatteryRotationPolicy:
    """Energy-aware extension: rotate the relay to the fullest battery.

    For all-mobile groups (ad hoc scenario) this keeps the relay burden —
    and hence battery drain — balanced, extending the time until the first
    device dies (the network-lifetime metric of [20]).  A new plan is only
    produced when the current relay's battery trails the best candidate by
    more than ``hysteresis`` (avoiding reconfiguration thrash).
    """

    def __init__(self, hysteresis: float = 0.08,
                 stack_options: Optional[dict] = None) -> None:
        self.hysteresis = hysteresis
        self.stack_options = dict(stack_options or {})
        self._current_relay: Optional[str] = None

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        if not members or not directory.covers(members, BATTERY):
            return None
        best = best_battery_relay(directory, members)
        if self._current_relay is not None and \
                self._current_relay in members:
            current_level = directory.value(self._current_relay, BATTERY, 0.0)
            best_level = directory.value(best, BATTERY, 0.0)
            if best_level - current_level < self.hysteresis:
                best = self._current_relay
        self._current_relay = best
        plan = ReconfigurationPlan(name=f"rotating:relay={best}")
        for member in members:
            mode = "wired" if member == best else "wireless"
            plan.templates[member] = mecho_data_template(
                members, mode=mode, relay=best, **self.stack_options)
        return plan


class LossAdaptivePolicy:
    """Error-recovery adaptation (§2): ARQ at low loss, FEC at high loss.

    *"For small error rates it is preferable to detect and recover (using
    retransmissions) while for larger error rates it is preferable to mask
    the errors (using forward error recovery techniques)."*  The decision
    attribute is the disseminated ``link_quality`` (loss probability) of the
    worst member link; hysteresis prevents flapping around the threshold.
    """

    def __init__(self, threshold: float = 0.08, hysteresis: float = 0.02,
                 k: int = 8, m: int = 2,
                 stack_options: Optional[dict] = None) -> None:
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.k = k
        self.m = m
        self.stack_options = dict(stack_options or {})
        self._fec_active = False

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        if not members or not directory.covers(members, LINK_QUALITY):
            return None
        worst = max(directory.value(member, LINK_QUALITY, 0.0)
                    for member in members)
        enter = self.threshold + (0 if self._fec_active else self.hysteresis)
        leave = self.threshold - (0 if not self._fec_active else self.hysteresis)
        if self._fec_active:
            self._fec_active = worst >= leave
        else:
            self._fec_active = worst >= enter
        if self._fec_active:
            plan = ReconfigurationPlan(name=f"fec(k={self.k},m={self.m})")
            for member in members:
                plan.templates[member] = fec_data_template(
                    members, k=self.k, m=self.m, **self.stack_options)
            return plan
        plan = ReconfigurationPlan(name="plain")
        for member in members:
            plan.templates[member] = plain_data_template(
                members, **self.stack_options)
        return plan


class CompositePolicy:
    """First-match combination of policies (global policy layering)."""

    def __init__(self, *policies: Policy) -> None:
        self.policies = policies

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        for policy in self.policies:
            plan = policy.decide(directory, members)
            if plan is not None:
                return plan
        return None


class StaticPolicy:
    """Always prescribes one fixed plan (tests, manual control)."""

    def __init__(self, plan: ReconfigurationPlan) -> None:
        self.plan = plan

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        return self.plan
