"""The policy engine: ordered rules, per-group state, governed output.

A :class:`PolicyEngine` is itself a valid legacy ``Policy`` — its
``decide`` accepts the classic ``(directory, members)`` call — but the
core layer passes two extra keywords when available: ``now`` (simulated
time, for governor windows) and ``group`` (so one engine instance can
serve many groups without decisions bleeding between them).  Rules are
evaluated in order and the first plan wins; the governor then decides
whether acting on that plan is admissible right now.

Decision state discipline: every rule gets a private per-(group, rule)
dict through :class:`~repro.core.rules.base.RuleContext`, created lazily
and owned here.  This is the fix for the legacy policies' per-instance
``_current_relay``/``_fec_active`` attributes, which leaked hysteresis
across group reuse.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.rules.base import Rule, RuleContext
from repro.core.rules.governor import AdaptationGovernor, GovernorState
from repro.core.rules.plan import (ContextDirectory, Policy,
                                   ReconfigurationPlan)

_DEFAULT_GROUP = "default"


class _GroupState:
    """Everything the engine remembers about one group."""

    __slots__ = ("rule_state", "governor", "ticks")

    def __init__(self, governor: Optional[GovernorState]) -> None:
        self.rule_state: dict[int, dict] = {}
        self.governor = governor
        #: Fallback clock: advances by one per ungoverned-clock decide().
        self.ticks = 0


class PolicyEngine:
    """First-match rule evaluation with engine-owned decision state."""

    def __init__(self, rules: Sequence[Rule],
                 governor: Optional[AdaptationGovernor] = None) -> None:
        self.rules = tuple(rules)
        self.governor = governor
        self._groups: dict[str, _GroupState] = {}

    # -- group state --------------------------------------------------------

    def _group_state(self, group: str) -> _GroupState:
        state = self._groups.get(group)
        if state is None:
            governor = self.governor.fresh_state() \
                if self.governor is not None else None
            state = self._groups[group] = _GroupState(governor)
        return state

    def state_of(self, group: str, rule_index: int) -> dict:
        """The per-(group, rule) decision dict (introspection, tests)."""
        return self._group_state(group).rule_state.setdefault(rule_index, {})

    def reset_group(self, group: str) -> None:
        """Forget everything about ``group`` (it dissolved or restarted)."""
        self._groups.pop(group, None)

    # -- decision -----------------------------------------------------------

    def decide(self, directory: ContextDirectory, members: Sequence[str],
               now: Optional[float] = None,
               group: Optional[str] = None) -> Optional[ReconfigurationPlan]:
        """Evaluate the rules; return the admitted plan or ``None``.

        Without a caller clock the engine counts ``decide`` calls, so
        governor windows degrade to evaluation ticks — deterministic
        either way.
        """
        state = self._group_state(group or _DEFAULT_GROUP)
        if now is None:
            state.ticks += 1
            now = float(state.ticks)
        plan: Optional[ReconfigurationPlan] = None
        for index, rule in enumerate(self.rules):
            ctx = RuleContext(
                directory, members,
                state=state.rule_state.setdefault(index, {}),
                group=group or _DEFAULT_GROUP, now=now)
            plan = rule.evaluate(ctx)
            if plan is not None:
                break
        if plan is None:
            return None
        if state.governor is not None and self.governor is not None and \
                not self.governor.admit(state.governor, plan.name, now):
            return None
        return plan


class PolicyRule:
    """Adapter: wrap a legacy ``Policy`` object as a rule.

    Lets hand-written policies ride inside an engine (and powers the
    ``CompositePolicy`` shim).  The wrapped policy keeps its own state
    conventions — the adapter adds nothing.
    """

    rule_name = "policy_adapter"

    def __init__(self, policy: Policy) -> None:
        self.policy = policy

    def evaluate(self, ctx: RuleContext) -> Optional[ReconfigurationPlan]:
        return self.policy.decide(ctx.directory, ctx.members)
