"""Build policy engines from declarative specs (XML or literal data).

The kernel's :class:`~repro.kernel.xml_config.PolicySpec` is pure data;
this module gives it meaning: rule names resolve against the runtime
registry (unknown names raise :class:`ConfigurationError` at load time,
not mid-run), governor attributes become a
:class:`~repro.core.rules.governor.GovernorConfig`, and user rules
compose *additively* over the built-in defaults — a user policy only
needs to state what it does differently, and the paper's hybrid rule
remains the safety net that always produces a deployable stack.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.rules.base import Rule, build_rule
from repro.core.rules.engine import PolicyEngine
from repro.core.rules.governor import AdaptationGovernor, GovernorConfig
from repro.kernel.errors import ConfigurationError
from repro.kernel.xml_config import PolicySpec, RuleSpec, parse_policy_config

#: The built-in default tail: the paper's demonstration policy.  User
#: rules are evaluated first; whatever they abstain from falls through
#: to this.
DEFAULT_RULE_SPECS: tuple[RuleSpec, ...] = (RuleSpec("hybrid_mecho"),)

_GOVERNOR_KEYS = frozenset(("budget", "flap_limit", "window", "cooldown"))


def governor_from_params(params: dict) -> Optional[AdaptationGovernor]:
    """Build a governor from coerced ``<governor>`` attributes."""
    if not params:
        return None
    unknown = set(params) - _GOVERNOR_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown governor parameters {sorted(unknown)} "
            f"(accepted: {sorted(_GOVERNOR_KEYS)})")
    config = GovernorConfig(
        budget=int(params.get("budget", 0)),
        flap_limit=int(params.get("flap_limit", 0)),
        window=float(params.get("window", 30.0)),
        cooldown=float(params.get("cooldown", 60.0)))
    return AdaptationGovernor(config)


def engine_from_spec(spec: PolicySpec,
                     stack_options: Optional[dict] = None) -> PolicyEngine:
    """Instantiate the engine a ``<policy>`` element describes.

    Every rule name is resolved eagerly so a typo fails at configuration
    load, with the registry's inventory in the message.
    """
    rules = tuple(build_rule(rule.name, rule.params, stack_options)
                  for rule in spec.rules)
    return PolicyEngine(rules, governor=governor_from_params(spec.governor))


def compose_with_defaults(user_rules: Iterable[Union[RuleSpec, Rule]],
                          stack_options: Optional[dict] = None,
                          governor: Optional[AdaptationGovernor] = None
                          ) -> PolicyEngine:
    """User rules first, built-in defaults as the fall-through tail.

    Accepts ready rule objects and bare :class:`RuleSpec` data mixed
    freely, so a caller can combine a hand-written rule with declarative
    ones.
    """
    rules: list[Rule] = []
    for item in user_rules:
        if isinstance(item, RuleSpec):
            rules.append(build_rule(item.name, item.params, stack_options))
        else:
            rules.append(item)
    for spec in DEFAULT_RULE_SPECS:
        rules.append(build_rule(spec.name, spec.params, stack_options))
    return PolicyEngine(tuple(rules), governor=governor)


def load_policy(text: str, name: str,
                stack_options: Optional[dict] = None) -> PolicyEngine:
    """Parse a ``<morpheus>`` document and build its policy ``name``."""
    policies = parse_policy_config(text)
    if name not in policies:
        known = ", ".join(sorted(policies)) or "<none>"
        raise ConfigurationError(
            f"document defines no policy {name!r} (found: {known})")
    return engine_from_spec(policies[name], stack_options)


def spec_for_rules(name: str, rules: Sequence[RuleSpec],
                   governor: Optional[dict] = None) -> PolicySpec:
    """Convenience: assemble a :class:`PolicySpec` from parts."""
    return PolicySpec(name, tuple(rules), dict(governor or {}))
