"""The adaptation governor: budgets and flap damping for reconfiguration.

The policy engine asks the governor before acting on a rule's decision.
Two independent brakes, both built on :mod:`repro.kernel.damping`:

* a **reconfiguration budget** — at most ``budget`` plan *changes* per
  ``window`` (pytaskforce-style hard cap: config decides, code enforces);
* **flap damping** — a plan name (and with it a relay choice) that flips
  more than ``flap_limit`` times per window freezes adaptation for
  ``cooldown``: under bursty loss the context oscillates faster than a
  reconfiguration round can complete, and redeploying on every oscillation
  starves the group of useful work.

A rejected change never surfaces a plan: the engine returns ``None`` and
the running configuration stays put until the freeze expires.  All state
is per group and time comes from the caller, so governed decisions replay
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernel.damping import FlapDamper, WindowBudget


@dataclass(frozen=True)
class GovernorConfig:
    """Declarative governor parameters (all zero = ungoverned).

    ``window``/``cooldown`` are in the engine's clock units: seconds of
    simulated time when the core layer drives the engine, abstract
    evaluation ticks when ``decide`` is called without a clock.
    """

    budget: int = 0          #: admitted plan changes per window (0 = off)
    flap_limit: int = 0      #: tolerated plan flips per window (0 = off)
    window: float = 30.0     #: sliding window length
    cooldown: float = 60.0   #: freeze length once a brake trips

    @property
    def enabled(self) -> bool:
        return self.budget > 0 or self.flap_limit > 0


class GovernorState:
    """Per-group brake state (owned by the engine, one per group)."""

    __slots__ = ("current", "budget", "damper")

    def __init__(self, config: GovernorConfig) -> None:
        self.current: Optional[str] = None
        self.budget = WindowBudget(config.budget, config.window,
                                   config.cooldown)
        self.damper = FlapDamper(config.flap_limit, config.window,
                                 config.cooldown)


class AdaptationGovernor:
    """Admission control for plan changes."""

    def __init__(self, config: Optional[GovernorConfig] = None) -> None:
        self.config = config or GovernorConfig()
        #: Plan changes refused (budget exhausted or flap-frozen).
        self.rejected = 0

    def fresh_state(self) -> GovernorState:
        return GovernorState(self.config)

    def admit(self, state: GovernorState, plan_name: str,
              now: float) -> bool:
        """May the group move to (or stay on) ``plan_name`` at ``now``?"""
        if plan_name == state.current:
            # Not a change: keep the damper's window sliding so old flips
            # age out, but spend no budget.
            state.damper.observe(plan_name, now)
            return True
        if state.damper.observe(plan_name, now):
            self.rejected += 1
            return False
        if not state.budget.admit(now):
            self.rejected += 1
            return False
        state.current = plan_name
        return True
