"""Declarative policy engine: rules, registry, governor (paper §3.3).

Public surface of the rule system.  See :mod:`repro.core.rules.base` for
the rule protocol and registration, :mod:`repro.core.rules.builtin` for
the rules the paper's policies compile to, and
:mod:`repro.core.rules.config` for loading policies from the same XML
documents that describe channel stacks.
"""

from repro.core.rules.base import (Rule, RuleContext, build_rule,
                                   register_rule, resolve_rule, rule_names)
from repro.core.rules.builtin import (BatteryRotationRule, HybridMechoRule,
                                      LossAdaptiveRule, PlainRule)
from repro.core.rules.config import (DEFAULT_RULE_SPECS,
                                     compose_with_defaults, engine_from_spec,
                                     governor_from_params, load_policy)
from repro.core.rules.engine import PolicyEngine, PolicyRule
from repro.core.rules.governor import (AdaptationGovernor, GovernorConfig,
                                       GovernorState)
from repro.core.rules.plan import (RELAY_SELECTORS, ContextDirectory, Policy,
                                   ReconfigurationPlan, best_battery_relay,
                                   lowest_id_relay)

__all__ = [
    "Rule", "RuleContext", "register_rule", "resolve_rule", "rule_names",
    "build_rule",
    "BatteryRotationRule", "HybridMechoRule", "LossAdaptiveRule", "PlainRule",
    "DEFAULT_RULE_SPECS", "compose_with_defaults", "engine_from_spec",
    "governor_from_params", "load_policy",
    "PolicyEngine", "PolicyRule",
    "AdaptationGovernor", "GovernorConfig", "GovernorState",
    "ContextDirectory", "Policy", "ReconfigurationPlan", "RELAY_SELECTORS",
    "best_battery_relay", "lowest_id_relay",
]
