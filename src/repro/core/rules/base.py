"""Rule protocol, evaluation context and the runtime rule registry.

The paper keeps adaptation logic in a *global policy* outside the
protocols (§2, §3.3).  This package makes that policy layer declarative:
a policy is an ordered list of **rules**, each a small registered class
whose parameters are plain data (loadable from the same XML documents that
describe channel stacks — see :mod:`repro.kernel.xml_config`).  The
engine (:mod:`repro.core.rules.engine`) evaluates rules first-match and
owns all mutable decision state, keyed per group; the governor
(:mod:`repro.core.rules.governor`) rate-limits what the winning rule may
actually do to the running system.

Registering a rule::

    @register_rule
    class MyRule:
        rule_name = "my_rule"

        def __init__(self, *, threshold: float = 0.5,
                     stack_options=None) -> None: ...

        def evaluate(self, ctx: RuleContext): ...

Rule constructors accept their declarative parameters as keyword
arguments plus the shared ``stack_options`` mapping (forwarded to the
channel-template builders), and must be pure data holders: any state a
rule needs across evaluations lives in ``ctx.state``, which the engine
scopes per (group, rule) — never on ``self``.  That discipline is what
lets one rule instance serve many groups without decisions leaking
between them.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Sequence, runtime_checkable

from repro.kernel.errors import ConfigurationError


class RuleContext:
    """Everything one rule evaluation may look at.

    ``state`` is the rule's private mutable dict, owned by the engine and
    scoped to (group, rule position): hysteresis memory, the currently
    chosen relay, and so on belong here.
    """

    __slots__ = ("directory", "members", "state", "group", "now")

    def __init__(self, directory: Any, members: Sequence[str],
                 state: dict, group: str, now: float) -> None:
        self.directory = directory
        self.members = tuple(members)
        self.state = state
        self.group = group
        self.now = now


@runtime_checkable
class Rule(Protocol):
    """One adaptation rule: context in, plan (or abstention) out."""

    rule_name: str

    def evaluate(self, ctx: RuleContext):
        """Return a ``ReconfigurationPlan`` or ``None`` to fall through."""
        ...  # pragma: no cover - protocol declaration


_RULE_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator: publish ``cls`` under its ``rule_name``.

    Re-registering a name is an error — a typo'd duplicate would silently
    shadow a built-in and change every config that referenced it.
    """
    name = getattr(cls, "rule_name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"rule class {cls.__name__} lacks a 'rule_name' string")
    if name in _RULE_REGISTRY:
        raise ConfigurationError(f"rule name {name!r} already registered "
                                 f"(by {_RULE_REGISTRY[name].__name__})")
    _RULE_REGISTRY[name] = cls
    return cls


def resolve_rule(name: str) -> type:
    """Look up a registered rule class; unknown names raise."""
    try:
        return _RULE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_RULE_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown rule {name!r} (registered: {known})") from None


def rule_names() -> tuple[str, ...]:
    """All registered rule names, sorted (stable fuzzing surface)."""
    return tuple(sorted(_RULE_REGISTRY))


def build_rule(name: str, params: Optional[dict] = None,
               stack_options: Optional[dict] = None) -> Rule:
    """Instantiate a registered rule from declarative parameters."""
    cls = resolve_rule(name)
    try:
        return cls(stack_options=stack_options, **dict(params or {}))
    except TypeError as exc:
        raise ConfigurationError(
            f"rule {name!r} rejected parameters "
            f"{sorted(dict(params or {}))}: {exc}") from None
