"""Context directory, reconfiguration plans and relay selectors.

The data model every policy — rule-based or hand-written — works with.
Historically these lived in :mod:`repro.core.policy`; they moved here so
the rule engine and the legacy policy shims can share them without a
circular import.  :mod:`repro.core.policy` re-exports everything for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence

from repro.context.model import BATTERY, DEVICE_TYPE, ContextSample
from repro.context.pubsub import TopicBus
from repro.kernel.xml_config import ChannelTemplate


class ContextDirectory:
    """Latest known context sample per (node, attribute).

    Subscribes to the whole ``context.*`` subtree of a node-local bus, which
    Cocaditem feeds with both local and remote snapshots.
    """

    def __init__(self, bus: TopicBus) -> None:
        self._latest: dict[tuple[str, str], ContextSample] = {}
        self._subscription = bus.subscribe("context.*", self._absorb)

    def _absorb(self, topic: str, sample: ContextSample) -> None:
        self._latest[(sample.node_id, sample.attribute)] = sample

    # -- queries -----------------------------------------------------------

    def value(self, node_id: str, attribute: str,
              default: Any = None) -> Any:
        sample = self._latest.get((node_id, attribute))
        return sample.value if sample is not None else default

    def knows(self, node_id: str, attribute: str) -> bool:
        return (node_id, attribute) in self._latest

    def covers(self, members: Sequence[str], attribute: str) -> bool:
        """True when ``attribute`` is known for every member."""
        return all(self.knows(member, attribute) for member in members)

    def device_kinds(self, members: Sequence[str]) -> dict[str, list[str]]:
        """Members partitioned by device type (unknown members omitted)."""
        kinds: dict[str, list[str]] = {"fixed": [], "mobile": []}
        for member in members:
            kind = self.value(member, DEVICE_TYPE)
            if kind in kinds:
                kinds[kind].append(member)
        return kinds

    def is_hybrid(self, members: Sequence[str]) -> bool:
        """Hybrid scenario: at least one fixed and one mobile member."""
        kinds = self.device_kinds(members)
        return bool(kinds["fixed"]) and bool(kinds["mobile"])


@dataclass
class ReconfigurationPlan:
    """A named configuration with one template per node."""

    name: str
    templates: dict[str, ChannelTemplate] = field(default_factory=dict)

    def template_for(self, node_id: str) -> ChannelTemplate:
        return self.templates[node_id]


class Policy(Protocol):
    """Decides the adequate configuration for the current context."""

    def decide(self, directory: ContextDirectory,
               members: Sequence[str]) -> Optional[ReconfigurationPlan]:
        """Return the desired plan, or ``None`` when undecidable (e.g. the
        context of some member is not yet known)."""
        ...  # pragma: no cover - protocol declaration


def lowest_id_relay(directory: ContextDirectory,
                    fixed_members: Sequence[str]) -> str:
    """Default relay selection: deterministic lowest identifier."""
    return sorted(fixed_members)[0]


def best_battery_relay(directory: ContextDirectory,
                       candidates: Sequence[str]) -> str:
    """Energy-aware relay selection (paper §1, [20]): fullest battery wins;
    ties break deterministically by identifier."""
    def score(member: str) -> tuple[float, str]:
        battery = directory.value(member, BATTERY, default=0.0)
        return (-battery, member)
    return sorted(candidates, key=score)[0]


#: Relay selectors addressable from declarative rule parameters.
RELAY_SELECTORS = {
    "lowest_id": lowest_id_relay,
    "best_battery": best_battery_relay,
}
