"""Built-in adaptation rules: the paper's policies as declarative data.

Each rule reproduces one legacy policy class decision-for-decision (the
legacy names in :mod:`repro.core.policy` are now shims over these).  The
important structural change: hysteresis memory and the current relay
choice live in ``ctx.state`` — engine-owned, per-group — instead of on
the rule instance, so reusing one rule (or one engine) across groups can
no longer leak decisions between them.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.context.model import BATTERY, DEVICE_TYPE, LINK_QUALITY
from repro.core.rules.base import RuleContext, register_rule
from repro.core.rules.plan import (RELAY_SELECTORS, ReconfigurationPlan,
                                   best_battery_relay)
from repro.core.templates import (fec_data_template, mecho_data_template,
                                  plain_data_template)
from repro.kernel.errors import ConfigurationError


def _resolve_selector(selector: Union[str, Callable]) -> Callable:
    if callable(selector):
        return selector
    try:
        return RELAY_SELECTORS[selector]
    except KeyError:
        known = ", ".join(sorted(RELAY_SELECTORS))
        raise ConfigurationError(
            f"unknown relay selector {selector!r} ({known})") from None


@register_rule
class HybridMechoRule:
    """The paper's demonstration policy (§3.4, §4).

    *Hybrid* membership (fixed + mobile devices) → deploy Mecho: wired mode
    on fixed nodes, wireless mode with a selected fixed relay on mobile
    nodes.  *Homogeneous* membership → deploy the plain configuration.
    """

    rule_name = "hybrid_mecho"

    def __init__(self, *, relay_selector: Union[str, Callable] = "lowest_id",
                 stack_options: Optional[dict] = None) -> None:
        self.relay_selector = _resolve_selector(relay_selector)
        self.stack_options = dict(stack_options or {})

    def evaluate(self, ctx: RuleContext) -> Optional[ReconfigurationPlan]:
        directory, members = ctx.directory, ctx.members
        if not members or not directory.covers(members, DEVICE_TYPE):
            return None  # distributed context not yet known: wait
        kinds = directory.device_kinds(members)
        if directory.is_hybrid(members):
            relay = self.relay_selector(directory, kinds["fixed"])
            plan = ReconfigurationPlan(name=f"hybrid:relay={relay}")
            for member in members:
                mode = "wired" if member in kinds["fixed"] else "wireless"
                plan.templates[member] = mecho_data_template(
                    members, mode=mode, relay=relay, **self.stack_options)
            return plan
        plan = ReconfigurationPlan(name="plain")
        for member in members:
            plan.templates[member] = plain_data_template(
                members, **self.stack_options)
        return plan


@register_rule
class BatteryRotationRule:
    """Energy-aware extension: rotate the relay to the fullest battery.

    For all-mobile groups (ad hoc scenario) this keeps the relay burden —
    and hence battery drain — balanced, extending the time until the first
    device dies (the network-lifetime metric of [20]).  A new plan is only
    produced when the current relay's battery trails the best candidate by
    more than ``hysteresis`` (avoiding reconfiguration thrash).  The
    current relay is remembered in ``ctx.state["relay"]``.
    """

    rule_name = "battery_rotation"

    def __init__(self, *, hysteresis: float = 0.08,
                 stack_options: Optional[dict] = None) -> None:
        self.hysteresis = float(hysteresis)
        self.stack_options = dict(stack_options or {})

    def evaluate(self, ctx: RuleContext) -> Optional[ReconfigurationPlan]:
        directory, members = ctx.directory, ctx.members
        if not members or not directory.covers(members, BATTERY):
            return None
        best = best_battery_relay(directory, members)
        current = ctx.state.get("relay")
        if current is not None and current in members:
            current_level = directory.value(current, BATTERY, 0.0)
            best_level = directory.value(best, BATTERY, 0.0)
            if best_level - current_level < self.hysteresis:
                best = current
        ctx.state["relay"] = best
        plan = ReconfigurationPlan(name=f"rotating:relay={best}")
        for member in members:
            mode = "wired" if member == best else "wireless"
            plan.templates[member] = mecho_data_template(
                members, mode=mode, relay=best, **self.stack_options)
        return plan


@register_rule
class LossAdaptiveRule:
    """Error-recovery adaptation (§2): ARQ at low loss, FEC at high loss.

    *"For small error rates it is preferable to detect and recover (using
    retransmissions) while for larger error rates it is preferable to mask
    the errors (using forward error recovery techniques)."*  The decision
    attribute is the disseminated ``link_quality`` (loss probability) of the
    worst member link; hysteresis prevents flapping around the threshold.
    The FEC on/off memory lives in ``ctx.state["fec_active"]``.
    """

    rule_name = "loss_adaptive"

    def __init__(self, *, threshold: float = 0.08, hysteresis: float = 0.02,
                 k: int = 8, m: int = 2,
                 stack_options: Optional[dict] = None) -> None:
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self.k = int(k)
        self.m = int(m)
        self.stack_options = dict(stack_options or {})

    def evaluate(self, ctx: RuleContext) -> Optional[ReconfigurationPlan]:
        directory, members = ctx.directory, ctx.members
        if not members or not directory.covers(members, LINK_QUALITY):
            return None
        worst = max(directory.value(member, LINK_QUALITY, 0.0)
                    for member in members)
        fec_active = bool(ctx.state.get("fec_active", False))
        enter = self.threshold + (0 if fec_active else self.hysteresis)
        leave = self.threshold - (0 if not fec_active else self.hysteresis)
        fec_active = worst >= (leave if fec_active else enter)
        ctx.state["fec_active"] = fec_active
        if fec_active:
            plan = ReconfigurationPlan(name=f"fec(k={self.k},m={self.m})")
            for member in members:
                plan.templates[member] = fec_data_template(
                    members, k=self.k, m=self.m, **self.stack_options)
            return plan
        plan = ReconfigurationPlan(name="plain")
        for member in members:
            plan.templates[member] = plain_data_template(
                members, **self.stack_options)
        return plan


@register_rule
class PlainRule:
    """Unconditionally prescribe the plain stack (catch-all tail rule)."""

    rule_name = "plain"

    def __init__(self, *, stack_options: Optional[dict] = None) -> None:
        self.stack_options = dict(stack_options or {})

    def evaluate(self, ctx: RuleContext) -> Optional[ReconfigurationPlan]:
        if not ctx.members:
            return None
        plan = ReconfigurationPlan(name="plain")
        for member in ctx.members:
            plan.templates[member] = plain_data_template(
                ctx.members, **self.stack_options)
        return plan
