"""The Core control component (paper §3.3), as a control-channel layer.

The control component monitors the distributed context (through the
directory fed by Cocaditem) and coordinates reconfiguration: *"The current
version of the control component is based on a coordinator,
deterministically elected in run-time among all the members of the control
group."*  Coordination protocol:

* the coordinator periodically evaluates its policy; when the adequate
  configuration differs from the deployed one it assigns a config id and
  **unicasts to each participant the configuration that should be deployed
  at that node** (an XML channel description, as in the paper);
* each member hands the configuration to its local module (trigger view
  change → quiesce → redeploy) and answers ``reconfig_done``;
* the coordinator re-sends to unresponsive members every evaluation tick
  (idempotent, config-id–tagged) and declares the configuration deployed
  when every control-group member acked.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Sequence

from repro.core.local_module import LocalModule
from repro.core.policy import ContextDirectory, Policy, ReconfigurationPlan
from repro.kernel.events import Direction, Event, TimerEvent
from repro.kernel.layer import Layer
from repro.kernel.registry import register_layer
from repro.kernel.xml_config import ChannelTemplate
from repro.protocols.base import GroupSession
from repro.protocols.events import CoreMessage, ViewEvent

_EVALUATE_TIMER = "core-evaluate"


class CoreSession(GroupSession):
    """Per-node Core instance (control side + member side)."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.evaluate_interval: float = float(
            layer.params.get("evaluate_interval", 5.0))
        self.local_module: Optional[LocalModule] = None
        self.policy: Optional[Policy] = None
        self._policy_takes_clock = False
        self.directory: Optional[ContextDirectory] = None
        #: Configuration the coordinator believes is deployed everywhere.
        self.deployed_name: str = "plain"
        #: Membership the deployed data templates were built for (the
        #: coordinator redeploys when the control group *grows* beyond it —
        #: that is how joiners get folded into the data channel; shrinking
        #: is handled by the data channel's own failure detector).
        self.deployed_members: Optional[tuple[str, ...]] = None
        #: Invoked (name) when a reconfiguration completes group-wide.
        self.on_reconfigured: Optional[Callable[[str], None]] = None

        # Coordinator-side state.
        self._config_id = 0
        self._active_plan: Optional[ReconfigurationPlan] = None
        self._active_members: Optional[tuple[str, ...]] = None
        self._active_lineage: Optional[tuple] = None
        self._acks: set[str] = set()
        #: Completed group-wide reconfigurations (diagnostics/benches).
        self.reconfigurations_completed = 0
        #: Virtual timestamps of the last reconfiguration (benches).
        self.last_reconfig_started_at: Optional[float] = None
        self.last_reconfig_completed_at: Optional[float] = None

        # Member-side state.
        self._applying_id: Optional[int] = None
        self._applying_name: Optional[str] = None
        self._last_applied_id = 0

    def attach(self, local_module: LocalModule, policy: Policy,
               directory: ContextDirectory,
               initial_config_name: str = "plain",
               initial_members: Optional[Sequence[str]] = None) -> None:
        """Wire the session to its local module, policy and directory.

        ``initial_members`` is the membership the initial data template was
        built for; when omitted, membership changes alone never force a
        redeployment (the pre-dynamic-topology behaviour).
        """
        self.local_module = local_module
        self.policy = policy
        self.directory = directory
        self.deployed_name = initial_config_name
        self.deployed_members = tuple(sorted(initial_members)) \
            if initial_members is not None else None
        # Engine-aware dispatch, decided once: a PolicyEngine takes the
        # evaluation clock (governor windows in simulated seconds) and the
        # group key (per-group decision state); a classic two-argument
        # policy keeps its old calling convention.
        try:
            signature = inspect.signature(policy.decide)
            params = signature.parameters
            self._policy_takes_clock = "now" in params and "group" in params \
                or any(p.kind is inspect.Parameter.VAR_KEYWORD
                       for p in params.values())
        except (TypeError, ValueError):  # builtins, exotic callables
            self._policy_takes_clock = False

    # -- protocol ---------------------------------------------------------------

    def on_channel_init(self, event: Event) -> None:
        if self.local_module is None:
            raise RuntimeError(
                "CoreSession not attached; call attach(...) before starting "
                "the control channel")
        self.set_periodic_timer(self.evaluate_interval, tag=_EVALUATE_TIMER,
                                channel=event.channel)

    def on_view(self, event) -> None:
        # Members excluded from the control group also fall out of the data
        # channel on their own (its failure detector sees the same crash) —
        # prune them from the deployed membership so that their *return*
        # (recovery, healed partition) registers as growth and triggers the
        # redeployment that folds them back in.
        if self.deployed_members is not None:
            self.deployed_members = tuple(
                member for member in self.deployed_members
                if member in event.view.members)
        if self.local is not None and \
                self.local in getattr(event, "joiners", ()):
            # Re-admitted from outside the group: any configuration this
            # node applied while isolated (e.g. a singleton's self-switch
            # to plain) used its *own* id numbering, which may collide with
            # the group's.  Start over so the coordinator's next
            # configuration is never mistaken for a duplicate.
            self._last_applied_id = 0
            self._applying_id = None
            self._applying_name = None

    def on_event(self, event: Event) -> None:
        if isinstance(event, TimerEvent):
            if event.tag == _EVALUATE_TIMER:
                self._evaluate(event.channel)
            return
        if isinstance(event, CoreMessage) and event.direction is Direction.UP:
            self._on_message(event)
            return
        event.go()

    # -- coordinator side ------------------------------------------------------------

    @property
    def is_control_coordinator(self) -> bool:
        return self.view is not None and \
            self.view.coordinator == self.local

    def _evaluate(self, channel) -> None:
        if not self.is_control_coordinator or self.policy is None or \
                self.directory is None:
            return
        if self._active_plan is not None:
            self._resend_pending(channel)
            return
        if self._policy_takes_clock:
            plan = self.policy.decide(self.directory, list(self.members),
                                      now=channel.kernel.now(),
                                      group=self.group)
        else:
            plan = self.policy.decide(self.directory, list(self.members))
        if plan is None:
            return
        members_now = tuple(sorted(self.members))
        grown = self.deployed_members is not None and \
            bool(set(members_now) - set(self.deployed_members))
        if plan.name == self.deployed_name and not grown:
            return
        self._start_reconfiguration(plan, channel)

    def _start_reconfiguration(self, plan: ReconfigurationPlan,
                               channel) -> None:
        # Config ids are totally ordered across coordinator changes: a
        # successor coordinator continues numbering above anything this
        # member has already applied, so members never mistake the new
        # configuration for a duplicate of an old one.
        self._config_id = max(self._config_id, self._last_applied_id) + 1
        self._active_plan = plan
        self._active_members = tuple(sorted(self.members))
        # Lineage of this configuration: the control view it was issued
        # under.  Config ids alone are only monotonic per coordinator, so
        # divergent partitions each mint their own ``#c2``; the lineage
        # rides every (re)send of this configuration — captured once, so
        # retries agree — and keys the data generation's port, keeping
        # same-id generations from different coordinator histories apart.
        assert self.view is not None
        self._active_lineage = (self.view.view_id,) + \
            (self.view.stamp or ("", 0))
        self._acks = set()
        self.last_reconfig_started_at = channel.kernel.clock.now()
        for member in self.members:
            self._send_config(member, channel)

    def _send_config(self, member: str, channel) -> None:
        assert self._active_plan is not None
        template = self._active_plan.templates.get(member)
        if template is None:
            self._acks.add(member)  # nothing to deploy there
            return
        message = self.control_message(
            CoreMessage,
            {"kind": "reconfig", "config_id": self._config_id,
             "lineage": self._active_lineage,
             "name": self._active_plan.name, "xml": template.to_xml(),
             "from": self.local},
            dest=member, source=self.local)
        self.send_down(message, channel=channel)

    def _resend_pending(self, channel) -> None:
        assert self._active_plan is not None
        for member in self.members:
            if member not in self._acks:
                self._send_config(member, channel)
        self._check_complete()

    def _on_done(self, payload: dict) -> None:
        if self._active_plan is None or \
                payload["config_id"] != self._config_id:
            return
        self._acks.add(payload["from"])
        self._check_complete()

    def _check_complete(self) -> None:
        if self._active_plan is None:
            return
        if set(self.members).issubset(self._acks):
            self.deployed_name = self._active_plan.name
            if self._active_members is not None:
                self.deployed_members = self._active_members
            self._active_plan = None
            self._active_members = None
            self.reconfigurations_completed += 1
            if self.channels:
                self.last_reconfig_completed_at = \
                    self.channels[0].kernel.clock.now()
            if self.on_reconfigured is not None:
                self.on_reconfigured(self.deployed_name)

    # -- member side --------------------------------------------------------------------

    def _on_message(self, event: CoreMessage) -> None:
        payload = self.payload_of(event)
        kind = payload["kind"]
        if kind == "reconfig":
            self._on_reconfig(payload, event.channel)
        elif kind == "reconfig_done":
            self._on_done(payload)

    def _on_reconfig(self, payload: dict, channel) -> None:
        assert self.local_module is not None
        config_id = payload["config_id"]
        if config_id <= self._last_applied_id:
            self._send_done(config_id, channel)  # duplicate: re-ack
            return
        if config_id == self._applying_id:
            return  # already in progress
        self._applying_id = config_id
        self._applying_name = payload["name"]
        lineage = payload.get("lineage")
        template = ChannelTemplate.from_xml(payload["xml"])
        self.local_module.apply(
            config_id, template,
            done=lambda cid: self._deployed(cid, channel),
            lineage=tuple(lineage) if lineage else None)

    def _deployed(self, config_id: int, channel) -> None:
        self._last_applied_id = max(self._last_applied_id, config_id)
        if self._applying_id == config_id:
            self._applying_id = None
            # Every member tracks what it runs: if the coordinator fails,
            # its successor must know the deployed configuration or it
            # would never see a difference worth reconfiguring for.
            if self._applying_name is not None:
                self.deployed_name = self._applying_name
                self._applying_name = None
        self._send_done(config_id, channel)

    def _send_done(self, config_id: int, channel) -> None:
        assert self.view is not None
        done = self.control_message(
            CoreMessage,
            {"kind": "reconfig_done", "config_id": config_id,
             "from": self.local},
            dest=self.view.coordinator, source=self.local)
        self.send_down(done, channel=channel)


@register_layer
class CoreLayer(Layer):
    """Control and reconfiguration component (control channel).

    Parameters: ``evaluate_interval`` (policy evaluation period, seconds).
    """

    layer_name = "core"
    accepted_events = (CoreMessage, TimerEvent, ViewEvent)
    provided_events = (CoreMessage,)
    session_class = CoreSession
