"""Core local modules: per-node deployment of new configurations (§3.3).

*"[Core is] composed of: i) a control component, responsible for monitoring
the state of the distributed application and for coordinating the
reconfiguration and ii) a set of local modules, responsible for locally
deploying a new configuration of the communication protocols when needed."*

The local module owns the node's **data channel**.  Reconfiguration follows
the paper's procedure exactly:

1. trigger a view change on the data channel (``hold`` variant — the flush
   completes and the stack stays blocked);
2. when the channel is quiescent, close the old stack and instantiate the
   new one from its XML description, preserving the labelled sessions
   (application, view-synchrony queue, transport);
3. the new stack boots directly into the agreed view — numbering continues
   — and data flow resumes.

Races handled: quiescence may arrive *before* this node has received the
configuration (another node's coordinator started the flush first) — the
held view is remembered and the swap happens as soon as the configuration
lands.  A configuration arriving mid-swap is queued and applied after.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.channel import Channel, ChannelState
from repro.kernel.events import Direction
from repro.kernel.session import Session
from repro.kernel.xml_config import ChannelTemplate
from repro.protocols.events import TriggerViewChangeEvent, View
from repro.simnet.node import SimNode

DoneCallback = Callable[[int], None]


class LocalModule:
    """Deploys data-channel configurations on one node."""

    def __init__(self, node: SimNode, channel_name: str = "data",
                 session_bindings: Optional[dict[str, Session]] = None,
                 trigger_retry_interval: float = 1.0) -> None:
        self.node = node
        self.channel_name = channel_name
        self.bindings: dict[str, Session] = session_bindings \
            if session_bindings is not None else {}
        self.trigger_retry_interval = trigger_retry_interval
        self.data_channel: Optional[Channel] = None
        self._busy = False
        self._active: Optional[
            tuple[int, ChannelTemplate, DoneCallback, Optional[tuple]]] = None
        self._pending: Optional[
            tuple[int, ChannelTemplate, DoneCallback, Optional[tuple]]] = None
        self._held_view: Optional[View] = None
        self._retry_handle = None
        #: Completed deployments (including the initial one).
        self.deploy_count = 0
        #: Name of the template currently deployed (diagnostics).
        self.current_template_name: Optional[str] = None

    # -- deployment -----------------------------------------------------------

    def deploy_initial(self, template: ChannelTemplate) -> Channel:
        """Instantiate and start the first data stack."""
        channel = template.instantiate(self.node.kernel,
                                       channel_name=self.channel_name,
                                       session_bindings=self.bindings)
        self.data_channel = channel
        self.current_template_name = template.name
        self.deploy_count += 1
        self._hook_membership()
        return channel

    def shutdown(self) -> None:
        """Tear the data stack down for good (cell re-formation).

        Cancels the trigger retry, forgets any in-flight reconfiguration
        (a pending swap scheduled for the next virtual instant finds
        ``_busy`` false and no-ops), and closes the live channel.  The
        module is not reusable afterwards; re-formation builds a fresh
        node facade.
        """
        self._cancel_retry()
        self._busy = False
        self._active = None
        self._pending = None
        self._held_view = None
        channel = self.data_channel
        if channel is not None and channel.state is ChannelState.STARTED:
            channel.close()

    def apply(self, config_id: int, template: ChannelTemplate,
              done: DoneCallback,
              lineage: Optional[tuple] = None) -> None:
        """Deploy ``template`` once the data channel reaches quiescence.

        ``lineage`` identifies the control view the coordinator issued the
        configuration under (``(view_id, announcer, incarnation)``).  Config
        ids are only monotonic per coordinator lineage: after a partition,
        each side mints its own ``#c2``, and a post-merge coordinator can
        re-issue a generation name a splinter already used — the same-named
        ports then let stale-generation retransmissions into the fresh stack,
        whose bootstrap reliable epoch matches theirs.  Folding the lineage
        into the generation name keeps ports distinct across coordinator
        histories.
        """
        if self._busy:
            self._pending = (config_id, template, done, lineage)
            return
        self._busy = True
        self._active = (config_id, template, done, lineage)
        if self._held_view is not None:
            # The flush completed before our configuration arrived.
            self._schedule_swap()
            return
        self._request_quiescence()

    # -- quiescence ----------------------------------------------------------------

    def _hook_membership(self) -> None:
        assert self.data_channel is not None
        membership = self.data_channel.session_named("membership")
        if membership is not None:
            membership.quiescence_listener = self._on_quiescent

    def _request_quiescence(self) -> None:
        channel = self.data_channel
        if channel is not None and channel.state is ChannelState.STARTED:
            channel.insert(TriggerViewChangeEvent(hold=True), Direction.DOWN)
        self._arm_retry()

    def _arm_retry(self) -> None:
        self._cancel_retry()
        self._retry_handle = self.node.kernel.clock.call_later(
            self.trigger_retry_interval, self._retry_trigger)

    def _cancel_retry(self) -> None:
        if self._retry_handle is not None:
            self._retry_handle.cancel()
            self._retry_handle = None

    def _retry_trigger(self) -> None:
        self._retry_handle = None
        if self._busy and self._held_view is None:
            self._request_quiescence()

    def _on_quiescent(self, view: View) -> None:
        """Membership hook: flush complete, stack blocked and replaceable."""
        self._held_view = view
        self._cancel_retry()
        if self._busy:
            self._schedule_swap()

    def _schedule_swap(self) -> None:
        # Swap outside the membership layer's dispatch context.
        self.node.kernel.clock.call_later(0.0, self._swap)

    # -- the swap itself ----------------------------------------------------------------

    def _swap(self) -> None:
        if not self._busy or self._active is None or self._held_view is None:
            return
        config_id, template, done, lineage = self._active
        view = self._held_view
        self._held_view = None
        old = self.data_channel
        if old is not None and old.state is ChannelState.STARTED:
            old.close()
        self._reconcile_bindings(template)
        # Per-generation port isolation, keyed by the *globally agreed*
        # config id: members swap at slightly different instants
        # (configuration delivery skew), and during that window the old and
        # the new stack use different wire framings.  Naming the channel
        # after the config id keeps generations apart at the transport —
        # cross-generation control packets are dropped at an unbound port
        # and recovered by their periodic retransmission — and, because the
        # id (unlike a local view id) is identical at every member, the new
        # generation boots as ONE group with the template's membership even
        # if the old data group had splintered.  Every reconfiguration is
        # thus also a group re-formation from the control plane's globally
        # consistent knowledge; view synchrony still guarantees no data
        # message straddles the boundary within each surviving subgroup.
        generation_name = f"{self.channel_name}#c{config_id}"
        if lineage:
            # Same value at every member (it rides the reconfig message), so
            # the group still boots as ONE generation; the suffix only
            # separates generations minted by different coordinator
            # histories.  Ports are names, not wire bytes — packet overhead
            # is a fixed charge — so byte accounting is unchanged.
            generation_name += "@" + ".".join(str(part) for part in lineage)
        channel = template.instantiate(self.node.kernel,
                                       channel_name=generation_name,
                                       session_bindings=self.bindings)
        self.data_channel = channel
        self.current_template_name = template.name
        self.deploy_count += 1
        self._hook_membership()
        self._busy = False
        self._active = None
        done(config_id)
        if self._pending is not None:
            queued, self._pending = self._pending, None
            self.apply(*queued)

    def _reconcile_bindings(self, template: ChannelTemplate) -> None:
        """Drop preserved sessions whose layer class changed in the new stack.

        Reusing a session under a different layer implementation would mix
        incompatible state; a fresh session is always safe.
        """
        labelled = {spec.session_label: spec.name for spec in template.specs
                    if spec.session_label}
        for label, session in list(self.bindings.items()):
            expected = labelled.get(label)
            if expected is not None and session.layer.name() != expected:
                del self.bindings[label]
