"""Core: control and reconfiguration (paper §3.3) plus the Morpheus facade.

The control component (a layer on the shared control channel) monitors the
distributed context and coordinates reconfiguration; local modules deploy
new XML-described stacks after driving the data channel quiescent through a
view-synchronous flush.
"""

from repro.core.core_layer import CoreLayer, CoreSession
from repro.core.local_module import LocalModule
from repro.core.morpheus import (MorpheusNode, PlainNode,
                                 build_morpheus_group, build_plain_group)
from repro.core.policy import (CompositePolicy, ContextDirectory,
                               HybridMechoPolicy, LossAdaptivePolicy, Policy,
                               ReconfigurationPlan, StaticPolicy,
                               ThresholdBatteryRotationPolicy,
                               best_battery_relay, lowest_id_relay)
from repro.core.rules import (AdaptationGovernor, GovernorConfig,
                              PolicyEngine, PolicyRule, Rule, RuleContext,
                              compose_with_defaults, engine_from_spec,
                              load_policy, register_rule, rule_names)
from repro.core.templates import (APP_LABEL, COCADITEM_LABEL, CORE_LABEL,
                                  TRANSPORT_LABEL, VIEWSYNC_LABEL,
                                  control_template, fec_data_template,
                                  mecho_data_template, patch_for_view,
                                  plain_data_template)

__all__ = [
    "CoreLayer", "CoreSession", "LocalModule",
    "MorpheusNode", "PlainNode", "build_morpheus_group", "build_plain_group",
    "CompositePolicy", "ContextDirectory", "HybridMechoPolicy",
    "LossAdaptivePolicy", "Policy", "ReconfigurationPlan", "StaticPolicy",
    "ThresholdBatteryRotationPolicy", "best_battery_relay",
    "lowest_id_relay",
    "APP_LABEL", "COCADITEM_LABEL", "CORE_LABEL", "TRANSPORT_LABEL",
    "VIEWSYNC_LABEL", "control_template", "fec_data_template",
    "mecho_data_template", "patch_for_view", "plain_data_template",
]
