"""Context model: attributes, snapshots and topic naming.

The paper uses *context* for **system context** — *"information that can be
directly inferred from network interface cards or operating system calls"*
(§2): device class, battery, link quality, bandwidth, memory.  A
:class:`ContextSnapshot` is one node's sampled attribute map at a point in
(virtual) time; Cocaditem disseminates snapshots and republishes them as
per-attribute topics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# Canonical attribute names (extensible: any string is a valid attribute).
DEVICE_TYPE = "device_type"
BATTERY = "battery"
LINK_QUALITY = "link_quality"
BANDWIDTH = "bandwidth"
MEMORY = "memory"
#: Which segment the node's access link is on plus the network's topology
#: epoch — changes whenever the topology mutates (handoff, churn, loss
#: swap, partition), so change-driven publishers re-disseminate.
CONNECTIVITY = "connectivity"

TOPIC_PREFIX = "context"


def topic_for(attribute: str) -> str:
    """Pub-sub topic carrying updates of ``attribute``."""
    return f"{TOPIC_PREFIX}.{attribute}"


@dataclass(frozen=True)
class ContextSample:
    """One attribute observation: who, what, when."""

    node_id: str
    attribute: str
    value: Any
    time: float

    @property
    def topic(self) -> str:
        return topic_for(self.attribute)


@dataclass
class ContextSnapshot:
    """A node's full sampled context at one instant."""

    node_id: str
    time: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def samples(self) -> list[ContextSample]:
        """Explode the snapshot into per-attribute samples."""
        return [ContextSample(self.node_id, attribute, value, self.time)
                for attribute, value in sorted(self.attributes.items())]

    def to_payload(self) -> dict:
        """Wire form (a plain dict, deep-copyable by the transport)."""
        return {"node": self.node_id, "time": self.time,
                "attrs": dict(self.attributes)}

    @staticmethod
    def from_payload(payload: dict) -> "ContextSnapshot":
        return ContextSnapshot(node_id=payload["node"], time=payload["time"],
                               attributes=dict(payload["attrs"]))
