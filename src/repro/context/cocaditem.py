"""Cocaditem: the Context Capture and Dissemination System (paper §3.2).

A distributed component executed in each node.  The local instance samples
its retrievers periodically, publishes the samples on the node-local topic
bus, and multicasts the snapshot on the group-communication **control
channel** so every other instance can republish it locally — exactly the
paper's *"clearly simplified and non-scalable version of the
publish-subscribe system"* that each instance *"multicasts in the control
channel the locally collected context information"*.

Implemented as a protocol layer so that it rides whatever stack the control
channel is composed of (and shares the channel with Core, as the paper
notes, *"for performance reasons"*).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.context.model import ContextSnapshot
from repro.context.pubsub import TopicBus
from repro.context.retrievers import ContextRetriever, default_retrievers
from repro.kernel.channel import ChannelState
from repro.kernel.events import Direction, Event, TimerEvent
from repro.kernel.layer import Layer
from repro.kernel.registry import register_layer
from repro.protocols.base import GroupSession
from repro.protocols.events import GROUP_DEST, ContextMessage, ViewEvent
from repro.simnet.node import SimNode

_PUBLISH_TIMER = "cocaditem-publish"


class CocaditemSession(GroupSession):
    """Per-node Cocaditem instance.

    The hosting facade must call :meth:`attach` before the channel starts,
    wiring in the node, the retriever set and the local topic bus.
    """

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        self.publish_interval: float = float(
            layer.params.get("publish_interval", 10.0))
        self.on_change_only: bool = bool(
            layer.params.get("on_change_only", False))
        self.node: Optional[SimNode] = None
        self.retrievers: list[ContextRetriever] = []
        self.bus: Optional[TopicBus] = None
        self._last_sent: Optional[dict[str, Any]] = None
        self._channel = None
        #: Snapshots multicast on the control channel (diagnostics).
        self.snapshots_sent = 0

    def attach(self, node: SimNode, bus: TopicBus,
               retrievers: Optional[list[ContextRetriever]] = None) -> None:
        """Wire the session to its device, bus and retriever set."""
        self.node = node
        self.bus = bus
        self.retrievers = list(retrievers) if retrievers is not None \
            else default_retrievers()

    # -- protocol ------------------------------------------------------------

    def on_channel_init(self, event: Event) -> None:
        if self.node is None or self.bus is None:
            raise RuntimeError(
                "CocaditemSession not attached; call attach(node, bus) "
                "before starting the control channel")
        self._channel = event.channel
        self.set_periodic_timer(self.publish_interval, tag=_PUBLISH_TIMER,
                                channel=event.channel)
        # Seed the bus (and, once a view exists, the group) immediately.
        self.set_timer(0.0, tag=_PUBLISH_TIMER, channel=event.channel)

    def on_view(self, event) -> None:
        # Membership changed (join, exclusion, merge): disseminate right
        # away so the control plane learns the newcomers' context within a
        # round-trip instead of a full publish interval.
        if self._channel is not None:
            self.set_timer(0.0, tag=_PUBLISH_TIMER, channel=self._channel)

    def publish_now(self) -> None:
        """Sample and disseminate immediately (event-driven adaptation).

        Called by the Morpheus facade when the network topology mutates
        under this node — the paper's periodic dissemination remains the
        baseline, this is the scenario subsystem's fast path.  A shut-down
        control channel (federation cell re-formation) is skipped: the
        trigger may fire one virtual instant after the node's stack was
        replaced.
        """
        if self._channel is not None and \
                self._channel.state is ChannelState.STARTED:
            self._collect_and_publish(self._channel)

    def on_event(self, event: Event) -> None:
        if isinstance(event, TimerEvent):
            if event.tag == _PUBLISH_TIMER:
                self._collect_and_publish(event.channel)
            return
        if isinstance(event, ContextMessage) and \
                event.direction is Direction.UP:
            snapshot = ContextSnapshot.from_payload(self.payload_of(event))
            self._republish(snapshot)
            return
        event.go()

    # -- internals ------------------------------------------------------------

    def _collect_and_publish(self, channel) -> None:
        assert self.node is not None and self.bus is not None
        now = channel.kernel.clock.now()
        attributes = {retriever.attribute: retriever.sample(self.node)
                      for retriever in self.retrievers}
        snapshot = ContextSnapshot(self.node.node_id, now, attributes)
        self._republish(snapshot)
        if self.on_change_only and self._last_sent == attributes:
            return
        self._last_sent = dict(attributes)
        if self.view is None:
            return  # control group not formed yet; local bus still fed
        message = self.control_message(ContextMessage, snapshot.to_payload(),
                                       dest=GROUP_DEST, source=self.local)
        self.snapshots_sent += 1
        self.send_down(message, channel=channel)

    def _republish(self, snapshot: ContextSnapshot) -> None:
        assert self.bus is not None
        for sample in snapshot.samples():
            self.bus.publish(sample.topic, sample)


@register_layer
class CocaditemLayer(Layer):
    """Context capture and dissemination over the control channel.

    Parameters: ``publish_interval`` (seconds between snapshots),
    ``on_change_only`` (suppress unchanged snapshots).
    """

    layer_name = "cocaditem"
    accepted_events = (ContextMessage, TimerEvent, ViewEvent)
    provided_events = (ContextMessage,)
    session_class = CocaditemSession
