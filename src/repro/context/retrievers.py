"""Context retrievers: per-node samplers of system context (paper §3.2).

*"[Cocaditem is] composed of: i) a set of context retrievers, located in
all nodes of the system, and ii) a publish-subscribe component responsible
for disseminating the collected information."*

Each retriever samples one attribute from the simulated device — the
analogue of reading a NIC register or making an OS call on the iPAQ.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol

from repro.context.model import (BANDWIDTH, BATTERY, CONNECTIVITY,
                                 DEVICE_TYPE, LINK_QUALITY, MEMORY)
from repro.simnet.loss import BernoulliLoss, GilbertElliottLoss
from repro.simnet.node import SimNode


class ContextRetriever(Protocol):
    """Samples one context attribute from a node."""

    attribute: str

    def sample(self, node: SimNode) -> Any:  # pragma: no cover - protocol
        ...


class DeviceTypeRetriever:
    """``"fixed"`` or ``"mobile"`` — the primary attribute of the paper's
    adaptive example."""

    attribute = DEVICE_TYPE

    def sample(self, node: SimNode) -> str:
        return node.kind.value


class BatteryRetriever:
    """Remaining battery fraction; fixed hosts report a full reserve."""

    attribute = BATTERY

    def sample(self, node: SimNode) -> float:
        if node.battery is None:
            return 1.0
        return round(node.battery.fraction, 6)


class LinkQualityRetriever:
    """Estimated loss probability of the node's access link.

    Mirrors what a driver would expose as link quality: for mobile nodes
    the wireless loss model's current loss probability, for fixed nodes the
    (usually negligible) wired loss.
    """

    attribute = LINK_QUALITY

    def sample(self, node: SimNode) -> float:
        link = node.network.wireless if node.is_mobile else node.network.wired
        loss = link.loss
        if isinstance(loss, BernoulliLoss):
            return loss.probability
        if isinstance(loss, GilbertElliottLoss):
            return loss.p_bad if loss.in_bad_state else loss.p_good
        return 0.0


class BandwidthRetriever:
    """Access-link bandwidth in bit/s."""

    attribute = BANDWIDTH

    def sample(self, node: SimNode) -> float:
        link = node.network.wireless if node.is_mobile else node.network.wired
        return link.bandwidth_bps


class MemoryRetriever:
    """Available memory in MiB (synthetic: PDAs are memory-constrained)."""

    attribute = MEMORY

    def __init__(self, fixed_mib: int = 512, mobile_mib: int = 64) -> None:
        self.fixed_mib = fixed_mib
        self.mobile_mib = mobile_mib

    def sample(self, node: SimNode) -> int:
        return self.mobile_mib if node.is_mobile else self.fixed_mib


class ConnectivityRetriever:
    """Access-link segment plus the network's topology mutation epoch.

    The epoch makes *any* runtime topology change (a peer's handoff, churn,
    a loss-model swap, a partition) visible as a changed attribute — the
    hook that keeps ``on_change_only`` publishers honest about connectivity
    events that no other attribute reflects.
    """

    attribute = CONNECTIVITY

    def sample(self, node: SimNode) -> dict:
        segment = "wireless" if node.is_mobile else "wired"
        return {"segment": segment, "epoch": node.network.topology_epoch}


class CallableRetriever:
    """Adapter turning any function into a retriever (tests, extensions)."""

    def __init__(self, attribute: str,
                 fn: Callable[[SimNode], Any]) -> None:
        self.attribute = attribute
        self._fn = fn

    def sample(self, node: SimNode) -> Any:
        return self._fn(node)


def default_retrievers() -> list[ContextRetriever]:
    """The retriever set deployed on every Morpheus node by default."""
    return [DeviceTypeRetriever(), BatteryRetriever(), LinkQualityRetriever(),
            BandwidthRetriever(), MemoryRetriever(), ConnectivityRetriever()]
