"""Cocaditem: context capture and dissemination (paper §3.2).

Retrievers sample system context on every node; a topic-based
publish-subscribe bus serves local subscribers (Core above all); snapshots
are multicast on the shared control channel so the *distributed* context —
not just the local one — is available everywhere.
"""

from repro.context.cocaditem import CocaditemLayer, CocaditemSession
from repro.context.model import (BANDWIDTH, BATTERY, CONNECTIVITY,
                                 DEVICE_TYPE, LINK_QUALITY, MEMORY,
                                 TOPIC_PREFIX, ContextSample,
                                 ContextSnapshot, topic_for)
from repro.context.pubsub import Subscription, TopicBus
from repro.context.retrievers import (BandwidthRetriever, BatteryRetriever,
                                      CallableRetriever,
                                      ConnectivityRetriever,
                                      ContextRetriever, DeviceTypeRetriever,
                                      LinkQualityRetriever, MemoryRetriever,
                                      default_retrievers)

__all__ = [
    "CocaditemLayer", "CocaditemSession",
    "BANDWIDTH", "BATTERY", "CONNECTIVITY", "DEVICE_TYPE", "LINK_QUALITY",
    "MEMORY", "TOPIC_PREFIX", "ContextSample", "ContextSnapshot",
    "topic_for",
    "Subscription", "TopicBus",
    "BandwidthRetriever", "BatteryRetriever", "CallableRetriever",
    "ConnectivityRetriever", "ContextRetriever", "DeviceTypeRetriever",
    "LinkQualityRetriever", "MemoryRetriever", "default_retrievers",
]
