"""Topic-based publish-subscribe (the Cocaditem interface, paper §3.2).

*"The current prototype of Cocaditem implements a topic-based
publish-subscribe interface.  The components interested in this information
(namely the control component) subscribe the topics required for their
operation."*

This is the node-local half: a synchronous topic bus.  Distribution happens
in :mod:`repro.context.cocaditem`, which republishes remote snapshots into
the local bus.  Topics are dot-separated names; a subscription may end in
``.*`` to match a whole subtree (``context.*`` receives every attribute).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

Subscriber = Callable[[str, Any], None]


class Subscription:
    """Handle returned by :meth:`TopicBus.subscribe`; detachable."""

    def __init__(self, bus: "TopicBus", pattern: str,
                 callback: Subscriber) -> None:
        self.bus = bus
        self.pattern = pattern
        self.callback = callback
        self.active = True

    def unsubscribe(self) -> None:
        self.bus._remove(self)


class TopicBus:
    """Synchronous topic-based publish-subscribe bus."""

    def __init__(self) -> None:
        self._exact: dict[str, list[Subscription]] = defaultdict(list)
        self._prefixes: dict[str, list[Subscription]] = defaultdict(list)
        #: Total publications, for diagnostics.
        self.published_count = 0

    def subscribe(self, pattern: str, callback: Subscriber) -> Subscription:
        """Register ``callback`` for ``pattern``.

        ``pattern`` is an exact topic name, or a prefix wildcard such as
        ``"context.*"`` matching every topic under ``context.``.
        """
        subscription = Subscription(self, pattern, callback)
        if pattern.endswith(".*"):
            self._prefixes[pattern[:-2]].append(subscription)
        else:
            self._exact[pattern].append(subscription)
        return subscription

    def _remove(self, subscription: Subscription) -> None:
        subscription.active = False
        pattern = subscription.pattern
        pool = self._prefixes[pattern[:-2]] if pattern.endswith(".*") \
            else self._exact[pattern]
        if subscription in pool:
            pool.remove(subscription)

    def publish(self, topic: str, data: Any) -> int:
        """Deliver ``data`` to every matching subscriber.

        Returns the number of subscribers notified.
        """
        self.published_count += 1
        notified = 0
        for subscription in list(self._exact.get(topic, ())):
            if subscription.active:
                subscription.callback(topic, data)
                notified += 1
        parts = topic.split(".")
        for cut in range(1, len(parts) + 1):
            prefix = ".".join(parts[:cut])
            for subscription in list(self._prefixes.get(prefix, ())):
                if subscription.active:
                    subscription.callback(topic, data)
                    notified += 1
        return notified

    def subscriber_count(self, topic: str) -> int:
        """How many active subscriptions would see ``topic``."""
        count = len(self._exact.get(topic, ()))
        parts = topic.split(".")
        for cut in range(1, len(parts) + 1):
            count += len(self._prefixes.get(".".join(parts[:cut]), ()))
        return count
