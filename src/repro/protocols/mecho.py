"""Mecho (Multicast Echo) — the paper's adaptive best-effort multicast (§3.4).

In hybrid scenarios (mobile devices in range of a base station plus hosts on
the fixed infrastructure) Mecho replaces the plain best-effort multicast:

* a **wireless** (mobile) node sends a *single* point-to-point message to a
  selected **fixed relay**, which *"in turn, is responsible for relaying the
  message to the remaining participants"*;
* a **wired** node multicasts directly (sequence of point-to-point, like the
  baseline) and, when it is the relay, forwards mobile traffic on their
  behalf.

The mobile node's transmission count per group send therefore drops from
``n-1`` to ``1`` — the effect measured in Figure 3 — at the expense of an
increase on the fixed node (the paper: *"naturally, at the expense of an
increase in the number of messages of the fixed node"*).

Wire format: every Mecho transmission pushes a ``("mecho", kind, origin)``
header.  ``kind`` is ``direct`` (deliver), ``fwd`` (relay request) or
``relayed`` (already forwarded — deliver, do not re-forward).
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.damping import FlapDamper
from repro.kernel.events import (Direction, Event, SendableEvent,
                                 TimerEvent)
from repro.kernel.layer import Layer
from repro.kernel.registry import register_layer
from repro.protocols.base import GroupSession
from repro.protocols.events import (GroupSendableEvent, PathChangedEvent,
                                    SuspectEvent, UnsuspectEvent, ViewEvent)

_RELAY_PROBE_TIMER = "mecho-relay-probe"

_HEADER_TAG = "mecho"
DIRECT = "direct"
FORWARD_REQUEST = "fwd"
RELAYED = "relayed"

MODE_WIRED = "wired"
MODE_WIRELESS = "wireless"


class MechoSession(GroupSession):
    """Mecho state: operating mode and the selected relay."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer)
        mode = layer.params.get("mode", MODE_WIRED)
        if mode not in (MODE_WIRED, MODE_WIRELESS):
            raise ValueError(f"invalid mecho mode {mode!r}")
        self.mode: str = mode
        self.relay: Optional[str] = layer.params.get("relay") or None
        #: Members the failure detector currently suspects.  When the relay
        #: itself is suspected, wireless nodes fall back to direct fan-out —
        #: otherwise the group (including the view change that would repair
        #: it) would be silenced by the dead relay.
        self.suspected: set[str] = set()
        #: Relay liveness probe.  The generic heartbeat detector above
        #: cannot identify the critical-path node — right up to its death
        #: the relay is the *freshest*-heard member, because everyone's
        #: traffic arrives through it.  The layer that owns the relay
        #: dependency therefore monitors it directly: every frame
        #: transmitted by the relay refreshes this timestamp, and
        #: ``relay_timeout`` of relay silence triggers the fall-back (and
        #: an upward suspicion) before the heartbeat detector starts
        #: suspecting innocent peers whose beacons died with the relay.
        self.relay_timeout: float = float(
            layer.params.get("relay_timeout", 4.0))
        # A relay oscillating between trusted and suspected under bursty
        # loss emits a PathChangedEvent per transition, each one inviting
        # the detector above to restart its observation windows.  Damp the
        # *signal* when the trust state flips too often — the fall-back
        # itself is never suppressed (a dead relay must always be routed
        # around), only the window-reset notification upward.
        self._path_damper = FlapDamper(
            limit=int(layer.params.get("path_flap_limit", 4)),
            window=float(layer.params.get("path_flap_window",
                                          8.0 * self.relay_timeout)),
            cooldown=float(layer.params.get("path_flap_cooldown",
                                            8.0 * self.relay_timeout)))
        self._relay_heard = 0.0
        self._probe_handle = None
        #: Foreign-framed packets dropped (generation skew diagnostics).
        self.foreign_dropped = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def is_relay(self) -> bool:
        return self.local is not None and self.local == self.relay

    def _push_header(self, event: SendableEvent, kind: str,
                     origin: str) -> None:
        event.message.push_header((_HEADER_TAG, kind, origin))

    def _path_changed(self, channel, trusted: bool) -> None:
        """Signal a dissemination-path change upward, flap-damped."""
        if not self._path_damper.observe(trusted,
                                         channel.kernel.clock.now()):
            self.send_up(PathChangedEvent(), channel=channel)

    # -- event handling ----------------------------------------------------------

    def on_channel_init(self, event: Event) -> None:
        if self.mode == MODE_WIRELESS and self.relay and \
                self.relay != self.local:
            self._relay_heard = event.channel.kernel.clock.now()
            self._arm_probe(event.channel)

    def _arm_probe(self, channel, delay: Optional[float] = None) -> None:
        """Schedule the silence check as a one-shot at the deadline.

        The seed revision ticked every ``relay_timeout/4`` for the
        channel's lifetime; scheduling straight at ``_relay_heard +
        relay_timeout`` (and re-arming at the *remaining* silence when
        relayed traffic moved the deadline) costs ~1 timer event per
        timeout window instead of 4, and stops entirely once the relay is
        suspected — the check re-arms when an ``UnsuspectEvent`` clears
        the relay.
        """
        if self._probe_handle is not None:
            self._probe_handle.cancel()
        self._probe_handle = self.set_timer(
            delay if delay is not None else self.relay_timeout,
            tag=_RELAY_PROBE_TIMER, channel=channel)

    def _probe_relay(self, channel) -> None:
        self._probe_handle = None
        if self.relay is None or self.relay in self.suspected or \
                self.mode != MODE_WIRELESS or self.relay == self.local:
            return  # dormant until the relay is (re-)trusted
        now = channel.kernel.clock.now()
        silence = now - self._relay_heard
        if silence > self.relay_timeout:
            self.suspected.add(self.relay)
            self._path_changed(channel, trusted=False)
            self.send_up(SuspectEvent(self.relay), channel=channel)
            return  # fall-back engaged; no further checks needed
        # Relayed traffic moved the deadline: sleep out the remainder.
        self._arm_probe(channel, self.relay_timeout - silence + 1e-9)

    def on_event(self, event: Event) -> None:
        if isinstance(event, TimerEvent):
            if event.tag == _RELAY_PROBE_TIMER:
                self._probe_relay(event.channel)
            return
        if isinstance(event, SuspectEvent):
            newly = event.member not in self.suspected
            self.suspected.add(event.member)
            if newly and self.mode == MODE_WIRELESS and \
                    event.member == self.relay:
                # Falling back to direct fan-out.  Everything — including
                # everyone's heartbeats — was routed through the dead
                # relay, so the detector above must restart its window or
                # it would wrongly suspect every other member next.
                self._path_changed(event.channel, trusted=False)
            return  # travelling down; the stack ends below us
        if isinstance(event, UnsuspectEvent):
            if event.member in self.suspected and \
                    self.mode == MODE_WIRELESS and event.member == self.relay:
                self._relay_heard = event.channel.kernel.clock.now()
                self._path_changed(event.channel, trusted=True)
                self._arm_probe(event.channel)  # relay trusted again
            self.suspected.discard(event.member)
            return
        if not isinstance(event, GroupSendableEvent):
            event.go()
            return
        if event.direction is Direction.DOWN:
            self._outgoing(event)
        else:
            self._incoming(event)

    # -- outgoing -------------------------------------------------------------------

    def _outgoing(self, event: GroupSendableEvent) -> None:
        assert self.local is not None, "mecho used before ChannelInit"
        channel = event.channel
        if not self.is_group_dest(event):
            if event.dest == self.local:
                # Self-addressed point-to-point: short-circuit locally.
                loopback = event.clone()
                loopback.source = self.local
                self.send_up(loopback, channel=channel)
                return
            # Point-to-point traffic (NACKs, retransmissions, flush acks)
            # crosses Mecho unchanged apart from the framing header.
            wire = event.clone()
            wire.source = event.source if event.source is not None else self.local
            self._push_header(wire, DIRECT, wire.source)
            self.send_down(wire, channel=channel)
            return
        if self.mode == MODE_WIRELESS and self.relay and \
                self.relay != self.local and self.relay not in self.suspected:
            # The whole point: ONE transmission, addressed to the relay.
            wire = event.clone()
            wire.source = self.local
            wire.dest = self.relay
            self._push_header(wire, FORWARD_REQUEST, self.local)
            self.send_down(wire, channel=channel)
        else:
            # Wired mode (or a degenerate wireless config with no relay):
            # fan out directly, like the baseline.
            for member in self.others():
                wire = event.clone()
                wire.source = self.local
                wire.dest = member
                self._push_header(wire, DIRECT, self.local)
                self.send_down(wire, channel=channel)
        loopback = event.clone()
        loopback.source = self.local
        loopback.dest = self.local
        self.send_up(loopback, channel=channel)

    # -- incoming --------------------------------------------------------------------

    def _incoming(self, event: GroupSendableEvent) -> None:
        channel = event.channel
        if event.message.header_depth == 0:
            self.foreign_dropped += 1  # headerless frame: not from mecho
            return
        header = event.message.pop_header()
        if not (isinstance(header, tuple) and len(header) == 3 and
                header[0] == _HEADER_TAG):
            # Frame from a differently-composed stack on the same port
            # (generation skew during reconfiguration): drop, the reliable
            # layer's retransmission recovers the content.
            self.foreign_dropped += 1
            return
        _tag, kind, origin = header
        if kind == RELAYED or origin == self.relay:
            # Proof of relay liveness: it transmitted this frame.
            self._relay_heard = channel.kernel.clock.now()
        if kind == FORWARD_REQUEST:
            self._relay_on_behalf_of(event, origin)
        event.source = origin
        event.go()

    def _relay_on_behalf_of(self, event: GroupSendableEvent,
                            origin: str) -> None:
        """Forward a mobile node's message to the remaining participants."""
        assert self.local is not None
        channel = event.channel
        if not self.is_relay:
            # A stale relay selection can address a non-relay node; deliver
            # locally anyway (best-effort) but honour the forward request so
            # the group still converges.
            pass
        for member in self.members:
            if member == origin or member == self.local:
                continue
            wire = event.clone()
            wire.source = origin
            wire.dest = member
            self._push_header(wire, RELAYED, origin)
            self.send_down(wire, channel=channel)


@register_layer
class MechoLayer(Layer):
    """Adaptive best-effort multicast with fixed-relay forwarding.

    Parameters: ``mode`` (``wired`` | ``wireless``), ``relay`` (node id of
    the selected fixed relay), ``members`` (bootstrap CSV), ``group``,
    ``relay_timeout`` (relay silence threshold, seconds),
    ``path_flap_limit`` / ``path_flap_window`` / ``path_flap_cooldown``
    (damping of relay trust-flap PathChanged signals; window and cooldown
    default to ``8 × relay_timeout``).
    """

    layer_name = "mecho"
    accepted_events = (SendableEvent, ViewEvent, SuspectEvent,
                       UnsuspectEvent, TimerEvent)
    provided_events = (GroupSendableEvent, PathChangedEvent, SuspectEvent)
    session_class = MechoSession
